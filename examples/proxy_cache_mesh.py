"""A cooperative proxy-cache mesh with filter summaries (paper §1.1.1).

Run:  python examples/proxy_cache_mesh.py

Recreates the Summary Cache scenario [FCAB98] the paper opens with: a mesh
of web proxies, each holding part of a shared working set, exchanging
compact filter summaries so that a miss at one proxy can be served from a
peer instead of the origin server.  The example then swaps the plain Bloom
summaries for Spectral ones and shows the upgrade the SBF enables:
popularity-aware routing to the replica with the most references.
"""

import random

from repro.apps.summary_cache import build_mesh
from repro.data.zipf import ZipfDistribution
from repro.db.site import Network
from repro.serve.metrics import ChannelStats, MetricsRegistry


def main() -> None:
    rng = random.Random(13)
    n_objects = 3000
    objects = [f"/object/{i}" for i in range(n_objects)]

    # Three proxies, each caching a random third of the working set.
    network = Network()
    proxies = build_mesh(["edge-us", "edge-eu", "edge-ap"], m=30_000, k=4,
                         seed=13, network=network)
    for obj in objects:
        rng.choice(proxies).store(obj)
    for proxy in proxies:
        proxy.publish()
    summary_bits = network.breakdown()["summary"]
    print(f"{len(proxies)} proxies, {n_objects} cached objects")
    print(f"summary exchange: {summary_bits / 8 / 1024:.1f} KiB total "
          f"(vs ~{n_objects * 40 / 1024:.0f} KiB for naive URL lists)\n")

    # Replay a Zipfian request stream at one edge.
    dist = ZipfDistribution(n_objects, 0.9)
    requests = [objects[i] for i in dist.sample(4000, seed=13)]
    edge = proxies[0]
    local = remote = origin = 0
    for obj in requests:
        if edge.has_local(obj):
            local += 1
        elif edge.lookup(obj) is not None:
            remote += 1
        else:
            origin += 1
    print(f"requests at {edge.name}: {len(requests)}")
    print(f"  local hits:   {local:5}")
    print(f"  remote hits:  {remote:5}  (served by peers via summaries)")
    print(f"  origin fetch: {origin:5}")
    print(f"  wasted probes from summary false positives: "
          f"{edge.wasted_forwards}\n")

    # The spectral upgrade: route to the *hottest* replica.
    network2 = Network()
    spectral = build_mesh(["s1", "s2", "s3"], m=30_000, k=4, seed=14,
                          spectral=True, network=network2)
    s1, s2, s3 = spectral
    popular = "/object/7"
    s2.store(popular)                       # cold replica: 1 reference
    for _ in range(25):
        s3.store(popular)                   # hot replica: 25 references
    for proxy in spectral:
        proxy.publish()
    source, _ = s1.lookup(popular)
    print("spectral summaries carry reference counts:")
    print(f"  {popular} is cached at s2 (1 ref) and s3 (25 refs)")
    print(f"  s1 routes the request to: {source}  "
          f"(plain Bloom summaries cannot make this distinction)\n")

    # Transport health, scraped without touching private attributes: every
    # proxy channel's ChannelStats attaches to one metrics registry, and
    # the fleet total is a plain merge of as_dict()-able stats objects.
    registry = MetricsRegistry()
    fleet = ChannelStats()
    for proxy in list(proxies) + list(spectral):
        for peer, stats in proxy.channel_stats().items():
            registry.attach_channel(f"{proxy.name}->{peer}", stats)
            fleet.merge(stats)
    channels = registry.snapshot()["channels"]
    print(f"mesh transport health ({len(channels)} channels):")
    totals = fleet.as_dict()
    print(f"  frames attempted: {totals['attempts']}, "
          f"delivered: {totals['delivered']}, "
          f"retries: {totals['retries']}, gave up: {totals['gave_up']}")


if __name__ == "__main__":
    main()
