"""Gray-failure defense: deadlines, breakers, hedged reads (DESIGN.md §10).

Run:  python examples/gray_failure.py

A *gray* failure is a replica that still answers — just a hundred times
more slowly.  Consecutive-failure ejection never catches it (every
operation eventually succeeds), so without a latency-aware defense one
sick replica prices every write fan-out and a third of all quorum
reads.  This walkthrough builds an RF=3 fleet on a simulated clock,
stalls one replica of every set, and shows the defense engage:

1. end-to-end deadlines bound every request through queue, shards,
   replicas, and transport retries;
2. the latency-EWMA circuit breaker opens on the slow replica — it is
   shed from the fan-out (its writes become hints) while staying "up";
3. quorum reads hedge: an attempt that outlives the p95-based bound is
   abandoned and re-fired against a spare replica;
4. when the stall clears, a half-open probe re-runs the convergence
   proof, drains the hints, and closes the breaker.

Every answer is checked against an unsharded oracle: slow replicas cost
latency, never correctness.
"""

import random

from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    Deadline,
    DeadlineExceeded,
    MetricsRegistry,
    RemoteShard,
    ShardServer,
    Unavailable,
    deadline_scope,
    replicated_fleet,
)

N_SHARDS, RF, M, K, SEED = 2, 3, 1 << 14, 4, 37
WIRE, STALL = 0.0005, 0.025       # per-frame transit / gray stall (sim s)


class Clock:
    """Simulated time: the network and breakers share one clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def main() -> None:
    rng = random.Random(SEED)
    clock = Clock()
    metrics = MetricsRegistry(clock=clock)
    network = FaultyNetwork(default_policy=FaultPolicy(latency=WIRE),
                            advance=clock.advance)

    def replica(shard: int, r: int) -> RemoteShard:
        handle = ConcurrentSBF(SpectralBloomFilter(
            M, K, seed=SEED, method="ms", backend="array",
            hash_family="blocked"))
        return RemoteShard(ShardServer(handle), network, "coord",
                           f"s{shard}r{r}",
                           channel_options={"sleep": clock.advance},
                           metrics=metrics)

    # The defended fleet: latency-threshold breakers + p95 hedging.
    fleet = replicated_fleet(
        N_SHARDS, M, K, rf=RF, seed=SEED, eject_after=100,
        probe_every=1 << 30, replica_factory=replica, metrics=metrics,
        breaker={"window": 8, "min_samples": 4, "latency_threshold": 0.02,
                 "latency_alpha": 0.5, "latency_min_samples": 2,
                 "reset_timeout": 5.0},
        hedge="p95")
    oracle = SpectralBloomFilter(M, K, seed=SEED, method="ms",
                                 backend="array", hash_family="blocked")

    def drive(n_ops: int) -> tuple[int, int, float]:
        """Mixed traffic under a 0.5s end-to-end deadline per op;
        returns (served, wrong, p99 latency in simulated ms)."""
        latencies, served, wrong = [], 0, 0
        for i in range(n_ops):
            t0 = clock.now
            try:
                with deadline_scope(Deadline(0.5, clock=clock)):
                    if i % 3 == 2:
                        key = f"k:{rng.randrange(1 << 20)}"
                        fleet.insert(key, 2)
                        oracle.insert(key, 2)
                        keys.append(key)
                    else:
                        key = rng.choice(keys)
                        if fleet.query(key) != oracle.query(key):
                            wrong += 1
            except (Unavailable, DeliveryFailed, DeadlineExceeded):
                continue
            served += 1
            latencies.append(clock.now - t0)
        ordered = sorted(latencies)
        return served, wrong, ordered[int(0.99 * (len(ordered) - 1))] * 1e3

    # ------------------------------------------------------------------
    # 1. Healthy baseline.
    # ------------------------------------------------------------------
    keys: list = [f"seed:{i}" for i in range(8)]
    for key in keys:
        fleet.insert(key, 2)
        oracle.insert(key, 2)
    served, wrong, p99_healthy = drive(300)
    print("== healthy baseline ==")
    print(f"  {served} ops served, {wrong} wrong answers, "
          f"p99 {p99_healthy:.1f}ms (simulated wire time)")

    # ------------------------------------------------------------------
    # 2. Replica r0 of every set turns gray: alive, but ~50x slower.
    # ------------------------------------------------------------------
    for s in range(N_SHARDS):
        policy = FaultPolicy(latency=WIRE, slow=1.0, slow_seconds=STALL,
                             seed=s)
        network.set_policy("coord", f"s{s}r0", policy)
        network.set_policy(f"s{s}r0", "coord", policy)
    served, wrong, _p99 = drive(60)           # the detection window
    served2, wrong2, p99_gray = drive(300)    # steady state, defended
    snap = metrics.snapshot()["counters"]
    opens = sum(v for n, v in snap.items() if n.endswith("breaker_opens"))
    hedged = sum(v for n, v in snap.items()
                 if n.endswith(".hedges") or n.endswith("write_abandons"))
    hinted = sum(v for n, v in snap.items() if n.endswith(".hinted"))
    print("\n== gray failure: one slow replica per set ==")
    print(f"  detection window: breaker opened {opens}x, "
          f"{hedged} hedged/bounded attempts abandoned the straggler")
    print(f"  steady state: {served2} served, {wrong2} wrong answers, "
          f"p99 {p99_gray:.1f}ms vs healthy {p99_healthy:.1f}ms")
    print(f"  {hinted} writes hinted to the shed replica "
          f"(up the whole time — never ejected)")

    # ------------------------------------------------------------------
    # 3. The stall clears: half-open probe, handoff, breaker closes.
    # ------------------------------------------------------------------
    for s in range(N_SHARDS):
        network.set_policy("coord", f"s{s}r0", None)
        network.set_policy(f"s{s}r0", "coord", None)
    clock.advance(6.0)                        # past the reset timeout
    for rset in fleet.shards:
        rset.tick()                           # probe -> drain -> close
        assert rset.repair().converged
    snap = metrics.snapshot()
    closes = sum(v for n, v in snap["counters"].items()
                 if n.endswith("breaker_closes"))
    half = sum(v for n, v in snap["counters"].items()
               if n.endswith("breaker_half_opens"))
    breaker_states = [v for n, v in snap["gauges"].items()
                      if n.endswith("breaker_state")]
    depth = sum(v for n, v in snap["gauges"].items()
                if n.endswith("hint_depth"))
    mismatches = sum(fleet.query(key) != oracle.query(key) for key in keys)
    print("\n== recovery ==")
    print(f"  half-open probes: {half}, breaker closes: {closes}, "
          f"all breaker gauges closed: {all(v == 0.0 for v in breaker_states)}")
    print(f"  hint queues drained to {depth:.0f}; "
          f"{mismatches} answers differ from the oracle")
    print("\ngray failure defended: slow replicas cost latency, "
          "never correctness")


if __name__ == "__main__":
    main()
