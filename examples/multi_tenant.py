"""Multi-tenant fleet index: the spectral Bloofi tree (DESIGN.md §11).

Run:  python examples/multi_tenant.py

Mounts a few hundred per-tenant spectral filters — mixed methods, one
durable — into one :class:`~repro.tenancy.SpectralBloofiTree`, then
walks the subsystem end to end: multi-set frequency queries ("which
tenants hold this key, how many times?") that descend only branches
whose inner counter unions are nonzero, an exactness check against the
scan-every-leaf oracle, live tenant lifecycle (unmount / remount a
pre-populated filter without pausing traffic), a snapshot/restore round
trip through the multi-section wire format, and the
:class:`~repro.tenancy.TenantDirectory` front routing single-tenant
composite keys through the unchanged
:class:`~repro.serve.ServingEngine`.
"""

import random

from repro.core.sbf import SpectralBloomFilter
from repro.serve import ServingEngine
from repro.tenancy import SpectralBloofiTree, TenantDirectory, load_tree

M, K, SEED, FANOUT = 8192, 3, 17, 8
N_TENANTS, CATALOG, PER_TENANT = 240, 600, 20
METHODS = ["ms", "mi", "rm"]


def main() -> None:
    rng = random.Random(SEED)

    # ------------------------------------------------------------------
    # 1. Mount a fleet: one filter per tenant, methods mixed freely.
    # ------------------------------------------------------------------
    tree = SpectralBloofiTree(M, K, seed=SEED, fanout=FANOUT)
    for tenant in range(N_TENANTS):
        tree.mount(f"tenant-{tenant}", method=METHODS[tenant % 3])
        keys = rng.sample(range(CATALOG), PER_TENANT)
        tree.insert_many(f"tenant-{tenant}",
                         keys, [rng.randint(1, 3) for _ in keys])
    print("== fleet ==")
    print(f"  {tree.n_tenants} tenants, {tree.n_nodes} tree nodes, "
          f"height {tree.height}, fanout {FANOUT}")

    # ------------------------------------------------------------------
    # 2. Multi-set frequency queries: who holds key x, and how often?
    # ------------------------------------------------------------------
    visited = tree.metrics.counter("tenancy.nodes_visited")
    hot, rare, absent = 7, "sku:limited-run", "sku:never-made"
    tree.insert("tenant-3", rare, 2)
    tree.insert("tenant-11", rare, 1)

    print("== multi-set frequency queries ==")
    for key in (hot, rare, absent):
        before = visited.value
        answers = tree.query(key)
        cost = visited.value - before
        print(f"  {key!r}: {len(answers)} tenants hold it "
              f"(visited {cost}/{tree.n_nodes} nodes)")
    print(f"  rare key owners: {dict(sorted(tree.query(rare).items()))}")

    # ------------------------------------------------------------------
    # 3. Exactness: the pruned descent is bit-identical to scanning
    #    every leaf and keeping the positive answers.
    # ------------------------------------------------------------------
    probes = [rng.randrange(CATALOG) for _ in range(50)] + [rare, absent]
    mismatches = 0
    for key in probes:
        oracle = {}
        for tenant in tree.tenants:
            estimate = tree.handle_of(tenant).query(key)
            if estimate > 0:
                oracle[tenant] = estimate
        if tree.query(key) != oracle:
            mismatches += 1
    print("== exactness vs scan oracle ==")
    print(f"  {len(probes)} probes, {mismatches} mismatches")

    # ------------------------------------------------------------------
    # 4. Live lifecycle: tenants come and go without pausing traffic.
    # ------------------------------------------------------------------
    handle = tree.unmount("tenant-3")
    assert "tenant-3" not in tree.query(rare)
    moved = SpectralBloomFilter(M, K, seed=SEED, method="ms")
    moved.insert(rare, 5)
    tree.mount("tenant-moved", moved)  # pre-populated filters fold in
    print("== lifecycle ==")
    print(f"  unmounted tenant-3 (its filter lives on: "
          f"estimate {handle.query(rare)}), mounted a pre-populated "
          f"tenant; owners now {dict(sorted(tree.query(rare).items()))}")

    # ------------------------------------------------------------------
    # 5. Snapshot / restore through the multi-section wire format.
    # ------------------------------------------------------------------
    blob = tree.dump_tree()
    restored = load_tree(blob)
    same = all(restored.query(key) == tree.query(key) for key in probes)
    print("== snapshot/restore ==")
    print(f"  {len(blob):,} bytes, {restored.n_tenants} tenants restored, "
          f"answers identical: {same}, invariants: "
          f"{restored.verify() or 'all hold'}")

    # ------------------------------------------------------------------
    # 6. The directory front: single-tenant traffic through the
    #    unchanged serving engine, keyed (tenant, key).
    # ------------------------------------------------------------------
    directory = TenantDirectory(tree)
    engine = ServingEngine(directory, max_queue=256)
    futures = [engine.submit("insert", ("tenant-7", "login")),
               engine.submit("insert", ("tenant-7", "login")),
               engine.submit("query", ("tenant-7", "login")),
               engine.submit("query", ("no-such-tenant", "login"))]
    engine.drain()
    print("== directory + serving engine ==")
    print(f"  tenant-7 'login' count: {futures[2].result()}")
    print(f"  unknown tenant fails typed: "
          f"{type(futures[3].exception()).__name__}")
    engine.close()


if __name__ == "__main__":
    main()
