"""A sharded serving engine over spectral filters (DESIGN.md §7).

Run:  python examples/serving_engine.py

Builds the full serving stack: a hash-partitioned fleet of filter shards
(blocked hashing makes the sharding invisible — routed answers are
bit-identical to one big filter), a batching executor that pays locking
once per shard per batch, and an admission-controlled engine in front
that refuses work past its queue bound instead of queueing unbounded
latency.  Along the way it scrapes the one metrics surface, sheds load,
coalesces the fleet with a union-based reshard, and ships it as a
checksummed manifest.
"""

import random
import time

from repro.core.sbf import SpectralBloomFilter
from repro.serve import (
    Overloaded,
    ServingEngine,
    ShardBatcher,
    ShardedSBF,
    run_requests,
)


def main() -> None:
    rng = random.Random(29)

    # ------------------------------------------------------------------
    # 1. A sharded fleet that answers exactly like one big filter.
    # ------------------------------------------------------------------
    fleet = ShardedSBF.create(n_shards=8, m=1 << 16, k=4, seed=29)
    one_big = SpectralBloomFilter(1 << 16, 4, seed=29, method="ms",
                                  backend="array", hash_family="blocked")
    stream = [rng.randrange(50_000) for _ in range(30_000)]
    for key in stream:
        fleet.insert(key)
        one_big.insert(key)
    probes = rng.sample(range(60_000), 2_000)
    agree = sum(fleet.query(key) == one_big.query(key) for key in probes)
    print("== sharded serving is transparent ==")
    print(f"  8 shards vs 1 unsharded filter, {len(probes)} probes: "
          f"{agree}/{len(probes)} identical answers")

    # ------------------------------------------------------------------
    # 2. Batching amortises locks and hashing.
    # ------------------------------------------------------------------
    batcher = ShardBatcher(fleet)
    t0 = time.perf_counter()
    for key in probes:
        fleet.query(key)
    naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    batcher.query_many(probes)
    batched = time.perf_counter() - t0
    print("\n== batched execution ==")
    print(f"  {len(probes)} queries: {naive * 1000:.1f} ms one-at-a-time, "
          f"{batched * 1000:.1f} ms batched ({naive / batched:.1f}x)")

    # ------------------------------------------------------------------
    # 3. Admission control: the engine protects its latency bound.
    # ------------------------------------------------------------------
    engine = ServingEngine(fleet, max_queue=64, batch_size=32)
    ops = [("query", rng.randrange(50_000)) for _ in range(500)]
    results = run_requests(engine, ops)
    served = sum(1 for r in results if not isinstance(r, Exception))
    refused = sum(1 for r in results if isinstance(r, Overloaded))
    print("\n== admission control ==")
    print(f"  {len(ops)} requests against a 64-deep queue: "
          f"{served} served, {refused} refused with typed Overloaded")

    # ------------------------------------------------------------------
    # 4. One metrics surface for the whole stack.
    # ------------------------------------------------------------------
    snapshot = fleet.metrics.snapshot()
    latency = snapshot["histograms"]["engine.latency_seconds"]
    print("\n== metrics snapshot ==")
    print(f"  engine.served={snapshot['counters']['engine.served']}  "
          f"batch.shard_batches="
          f"{snapshot['counters']['batch.shard_batches']}")
    print(f"  latency observations: {latency['count']}, "
          f"mean {latency['sum'] / latency['count'] * 1e6:.0f} us")
    hottest = max(fleet.shard_report(), key=lambda e: e["ops"])
    print(f"  hottest shard: #{hottest['shard']} "
          f"({hottest['ops']} ops, fill {hottest['fill_ratio']:.2f}, "
          f"expected error {hottest['expected_error']:.4f})")

    # ------------------------------------------------------------------
    # 5. Reshard by union (pre-split discipline) and ship a manifest.
    # ------------------------------------------------------------------
    before = [fleet.query(key) for key in probes[:200]]
    fleet.reshard(2)
    assert [fleet.query(key) for key in probes[:200]] == before
    manifest = fleet.dump_manifest()
    clone = ShardedSBF.load_manifest(manifest)
    assert [clone.query(key) for key in probes[:200]] == before
    print("\n== reshard + manifest ==")
    print(f"  8 -> 2 shards by counter union: answers unchanged")
    print(f"  manifest: {len(manifest)} bytes, round-trips to an "
          f"identical {clone.n_shards}-shard fleet")


if __name__ == "__main__":
    main()
