"""Replica failover, hinted handoff, and anti-entropy repair (DESIGN.md §9).

Run:  python examples/ha_failover.py

Builds an HA serving fleet — every logical shard a 3-way replica set
whose replicas all live behind a seeded faulty network — then walks the
full failover cycle: partition one replica of every set, keep serving
(quorum reads answer everything, writes queue hints for the dead
replica), heal the partition, drain the hints through a maintenance
tick, and run an anti-entropy repair pass that leaves every replica
bit-identical, checksum for checksum.  Throughout, every answer is
checked against one unsharded oracle filter: the HA layer's invariant
is *no wrong answers, ever* — at worst a typed refusal.
"""

import random

from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    RemoteShard,
    ShardServer,
    Unavailable,
    block_checksums,
    replicated_fleet,
)

N_SHARDS, RF, M, K, SEED = 2, 3, 1 << 14, 4, 29


def main() -> None:
    rng = random.Random(SEED)

    # ------------------------------------------------------------------
    # 1. An RF=3 fleet, every replica behind the (faulty) wire.
    # ------------------------------------------------------------------
    network = FaultyNetwork()

    def replica(shard: int, r: int) -> RemoteShard:
        handle = ConcurrentSBF(SpectralBloomFilter(
            M, K, seed=SEED, method="ms", backend="array",
            hash_family="blocked"))
        return RemoteShard(ShardServer(handle), network, "coord",
                           f"s{shard}r{r}",
                           channel_options={"max_retries": 2})

    fleet = replicated_fleet(N_SHARDS, M, K, rf=RF, seed=SEED,
                             eject_after=3, probe_every=1 << 30,
                             replica_factory=replica)
    oracle = SpectralBloomFilter(M, K, seed=SEED, method="ms",
                                 backend="array", hash_family="blocked")
    keys = [f"user:{rng.randrange(20_000)}" for _ in range(4_000)]
    for key in keys:
        fleet.insert(key)
        oracle.insert(key)
    print("== replicated fleet ==")
    print(f"  {N_SHARDS} shards x RF={RF} remote replicas, "
          f"{len(keys)} inserts, quorum reads")

    # ------------------------------------------------------------------
    # 2. Kill replica r1 of every set; the fleet keeps serving.
    # ------------------------------------------------------------------
    for s in range(N_SHARDS):
        network.set_policy("coord", f"s{s}r1", FaultPolicy(drop=1.0, seed=s))
        network.set_policy(f"s{s}r1", "coord",
                           FaultPolicy(drop=1.0, seed=s + 9))
    served = wrong = 0
    for i in range(1_000):
        key = f"mid:{i}" if i % 3 == 0 else rng.choice(keys)
        try:
            if i % 3 == 0:
                fleet.insert(key, 2)
                oracle.insert(key, 2)
            elif fleet.query(key) != oracle.query(key):
                wrong += 1
        except (Unavailable, DeliveryFailed):
            continue
        served += 1
    hints = sum(h["hint_depth"] for rset in fleet.shards
                for h in rset.health())
    print("\n== single-replica outage ==")
    print(f"  1000 ops with r1 of every set partitioned: {served} served, "
          f"{wrong} wrong answers")
    print(f"  {hints} hinted writes queued for the dead replicas")

    # ------------------------------------------------------------------
    # 3. Heal, hand off, repair: replicas converge bit-identically.
    # ------------------------------------------------------------------
    for s in range(N_SHARDS):
        network.set_policy("coord", f"s{s}r1", None)
        network.set_policy(f"s{s}r1", "coord", None)
    for rset in fleet.shards:
        rset.tick()                  # probe -> drain hints -> re-admit
        report = rset.repair()       # anti-entropy, checksum-verified
        assert report.converged
    identical = all(
        len({tuple(block_checksums(r)) for r in rset.replicas}) == 1
        for rset in fleet.shards)
    mismatches = sum(fleet.query(key) != oracle.query(key)
                     for key in keys + [f"mid:{i}" for i in range(0, 999, 3)])
    print("\n== handoff + anti-entropy repair ==")
    print(f"  replicas bit-identical after repair: {identical}")
    print(f"  {mismatches} answers differ from the unsharded oracle")
    up = sum(h["up"] for rset in fleet.shards for h in rset.health())
    print(f"  healthy replicas: {up}/{N_SHARDS * RF} "
          f"(ha.* gauges track this live)")


if __name__ == "__main__":
    main()
