"""Sliding-window tracking in a data warehouse (paper §2.2 / §6.2).

Run:  python examples/warehouse_sliding_window.py

"When tracking streaming data, often we would be interested in the data
that arrived in the last hour or day" — the warehouse keeps a window of
the most recent events and the SBF must *forget* expiring ones via
deletions.  This example replays a day of page-view events through a
window and shows why method choice matters: Minimal Increase, the accuracy
champion for insert-only streams, collapses under the window's deletions
(false negatives), while Recurring Minimum stays correct.
"""

import collections

from repro.apps.sliding_window import SlidingWindowSBF
from repro.data.streams import insertion_stream


def main() -> None:
    n_pages = 500
    n_events = 20_000
    window = n_events // 5
    stream = [f"/page/{x}" for x in
              insertion_stream(n_pages, n_events, z=1.0, seed=11)]

    print(f"replaying {n_events} page views, window = last {window} events")

    windows = {
        method: SlidingWindowSBF(window=window, m=6000, k=5,
                                 method=method, seed=11)
        for method in ("ms", "rm", "mi")
    }
    for event in stream:
        for tracker in windows.values():
            tracker.push(event)

    truth = collections.Counter(stream[-window:])
    print(f"{len(truth)} distinct pages in the current window\n")

    header = f"{'method':8} {'errors':>8} {'false-neg':>10} {'top page est':>14}"
    print(header)
    print("-" * len(header))
    top_page, top_count = truth.most_common(1)[0]
    for method, tracker in windows.items():
        errors = sum(1 for page, c in truth.items()
                     if tracker.query(page) != c)
        negatives = sum(1 for page, c in truth.items()
                        if tracker.query(page) < c)
        print(f"{method:8} {errors:>8} {negatives:>10} "
              f"{tracker.query(top_page):>8} (true {top_count})")

    print("\nMI's false negatives are exactly the Figure 9 failure mode:")
    print("deletions knock shared counters below the frequencies of")
    print("surviving pages. Use RM (or MS) when the window deletes.")

    # Ad-hoc trending query over the *current* window.
    threshold = window // 100
    trending = [page for page in truth
                if windows["rm"].contains(page, threshold)]
    print(f"\npages with >= {threshold} views in the window (RM): "
          f"{len(trending)} found, e.g. {sorted(trending)[:4]}")


if __name__ == "__main__":
    main()
