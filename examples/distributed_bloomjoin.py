"""Classic Bloomjoin vs Spectral Bloomjoin between two sites (paper §5.3).

Run:  python examples/distributed_bloomjoin.py

Two database servers hold the two sides of a one-to-many join:

    orders(customer_id, order_id)    at the warehouse site
    customers(customer_id, region)   at the head-office site

The query is the grouped join
    SELECT c.customer_id, count(*) FROM customers c, orders o
    WHERE c.customer_id = o.customer_id GROUP BY c.customer_id

A classic Bloomjoin needs two rounds (filter out, tuples back); the
Spectral Bloomjoin multiplies SBFs and answers after a *single* synopsis
transmission.  The example prints the traffic ledger for naive shipping,
Bloomjoin, and Spectral Bloomjoin.
"""

import random

from repro.apps.bloomjoin import (
    bloomjoin,
    exact_grouped_join_count,
    spectral_bloomjoin_count,
)
from repro.db.relation import Relation
from repro.db.site import tuple_bits, two_sites


def build_data(seed: int = 3):
    rng = random.Random(seed)
    n_customers = 800
    customers = Relation(
        "customers", ("customer_id", "region"),
        [(cid, rng.choice(["EMEA", "APAC", "AMER"]))
         for cid in range(n_customers)])
    # Zipf-ish order volume: a few whales, many one-off buyers.
    orders = Relation("orders", ("customer_id", "order_id"), [])
    order_id = 0
    for cid in range(n_customers):
        volume = max(1, int(60 / (1 + cid % 97)))
        for _ in range(volume):
            orders.append((cid, order_id))
            order_id += 1
    return customers, orders


def main() -> None:
    customers, orders = build_data()
    head_office, warehouse, net = two_sites(names=("head-office",
                                                   "warehouse"))
    head_office.store(customers)
    warehouse.store(orders)
    truth = exact_grouped_join_count(customers, orders, "customer_id")

    print(f"customers: {len(customers)} rows at {head_office.name}")
    print(f"orders:    {len(orders)} rows at {warehouse.name}\n")

    # Strategy 0: ship every order tuple to head office.
    naive_bits = tuple_bits(orders.rows)
    print(f"naive shipping:      {naive_bits / 8 / 1024:8.1f} KiB, 1 round")

    # Strategy 1: classic Bloomjoin [ML86].
    net.reset()
    joined = bloomjoin(head_office, "customers", warehouse, "orders",
                       "customer_id", m=8192, seed=3)
    print(f"classic Bloomjoin:   {net.total_bits / 8 / 1024:8.1f} KiB, "
          f"{net.rounds} rounds  ({len(joined)} joined tuples, "
          f"breakdown {net.breakdown()})")

    # Strategy 2: Spectral Bloomjoin - one synopsis, zero tuples.
    net.reset()
    counts = spectral_bloomjoin_count(head_office, "customers", warehouse,
                                      "orders", "customer_id",
                                      m=8192, seed=3)
    errors = sum(1 for cid, c in truth.items() if counts.get(cid) != c)
    print(f"Spectral Bloomjoin:  {net.total_bits / 8 / 1024:8.1f} KiB, "
          f"{net.rounds} round   ({len(counts)} groups, "
          f"{errors} erroneous counts of {len(truth)})")

    whale = max(truth, key=truth.get)
    print(f"\nheaviest customer {whale}: true join count {truth[whale]}, "
          f"spectral estimate {counts.get(whale)}")
    print("errors are one-sided: a verification pass over the few reported"
          "\ngroups removes them without re-running the join.")


if __name__ == "__main__":
    main()
