"""Ad-hoc iceberg queries over streaming network flows (paper §5.2).

Run:  python examples/network_heavy_hitters.py

The scenario from the paper's introduction: "tracking large flows in
network traffic" [EV02] must identify heavy flows while the packets rush
past, with no chance of a second look.  Prior art needs the heavy-hitter
threshold *before* the stream starts; the SBF keeps per-flow information
for the whole stream, so an operator can ask "which flows exceeded 0.1%?"
and then — without touching the stream again — "fine, which exceeded
0.01%?".
"""

import collections

from repro.apps.iceberg import IcebergIndex
from repro.data.zipf import ZipfDistribution


def synthesize_flows(n_flows: int, n_packets: int, seed: int) -> list[tuple]:
    """Packet stream over (src, dst, port) flows with Zipfian popularity."""
    dist = ZipfDistribution(n_flows, 1.1)
    flow_ids = dist.sample(n_packets, seed=seed)
    return [(f"10.0.{fid % 256}.{(fid * 7) % 256}",   # src
             f"192.168.{(fid * 13) % 256}.1",          # dst
             443 if fid % 3 else 8080)                 # port
            for fid in flow_ids]


def main() -> None:
    n_packets = 50_000
    packets = synthesize_flows(n_flows=2000, n_packets=n_packets, seed=7)

    # One pass over the "wire": the index never sees a packet twice.
    index = IcebergIndex(m=20_000, k=5, method="mi", seed=7)
    index.consume(packets)

    truth = collections.Counter(packets)
    print(f"streamed {n_packets} packets over {len(truth)} distinct flows")
    print(f"sketch size: {index.storage_bits() / 8 / 1024:.1f} KiB (model)\n")

    # The operator now explores thresholds ad hoc - no rescans needed.
    for share in (0.005, 0.002, 0.0005):
        threshold = max(1, int(share * n_packets))
        reported = index.query(threshold)
        exact = {f for f, c in truth.items() if c >= threshold}
        false_pos = len(set(reported) - exact)
        missed = len(exact - set(reported))
        print(f"flows with >= {share:.2%} of traffic "
              f"(threshold {threshold}):")
        print(f"  reported {len(reported)} | truly heavy {len(exact)} "
              f"| false positives {false_pos} | missed {missed}")
        top = sorted(reported.items(), key=lambda kv: -kv[1])[:3]
        for flow, estimate in top:
            print(f"    {flow[0]} -> {flow[1]}:{flow[2]}  "
                  f"~{estimate} packets (true {truth[flow]})")
        print()

    # With base data available, one verification scan gives exact answers.
    threshold = 100
    verified = index.verified_query(threshold, dict(truth))
    exact = {f for f, c in truth.items() if c >= threshold}
    print(f"verified iceberg at threshold {threshold}: "
          f"{len(verified)} flows, exact match: {set(verified) == exact}")


if __name__ == "__main__":
    main()
