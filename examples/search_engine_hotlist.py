"""Popular-query tracking and differential-file reads (paper §1.1.2).

Run:  python examples/search_engine_hotlist.py

Two more of the classic scenarios the paper cites, on one synthetic
search-engine workload:

1. **Hot list** [Bro02, GM98]: identify the most popular search queries
   from the live stream with a compact SBF sketch feeding a small exact
   top-k list — AltaVista-style, no second pass over the log.
2. **Differential file** [Gre82]: the click-count table takes writes into
   a differential file; reads consult a filter to skip the file for
   untouched queries, and the spectral variant flushes single hot keys.
"""

import collections

from repro.apps.differential import DifferentialStore
from repro.apps.hotlist import HotList
from repro.data.zipf import ZipfDistribution

QUERIES = ["weather", "news", "maps", "translate", "stocks", "recipes",
           "flights", "hotels", "python", "bloom filter"]


def synth_query_stream(n_queries: int, length: int, seed: int) -> list[str]:
    dist = ZipfDistribution(n_queries, 1.1)
    ranks = dist.sample(length, seed=seed)
    return [QUERIES[r] if r < len(QUERIES) else f"longtail-{r}"
            for r in ranks]


def main() -> None:
    stream = synth_query_stream(n_queries=5000, length=60_000, seed=17)
    truth = collections.Counter(stream)

    # ------------------------------------------------------------------
    # 1. Hot list over the live stream.
    # ------------------------------------------------------------------
    hot = HotList(capacity=15, m=40_000, k=5, seed=17)
    hot.consume(stream)
    print(f"stream: {len(stream)} queries, {len(truth)} distinct")
    print(f"hot-list sketch: {hot.storage_bits() / 8 / 1024:.1f} KiB "
          f"(vs {len(truth) * 16 / 1024:.0f} KiB for exact counts)\n")
    print(f"{'rank':>4}  {'query':18} {'estimate':>9} {'true':>7}")
    for rank, (query, estimate) in enumerate(hot.top(8), start=1):
        print(f"{rank:>4}  {query:18} {estimate:>9} {truth[query]:>7}")
    true_top5 = {q for q, _c in truth.most_common(5)}
    reported = {q for q, _e in hot.top()}
    print(f"\nall true top-5 queries captured: {true_top5 <= reported}\n")

    # ------------------------------------------------------------------
    # 2. Differential file over the click-count table.
    # ------------------------------------------------------------------
    base = {query: count for query, count in truth.items()}
    store = DifferentialStore(base, m=40_000, seed=18, spectral=True)
    # A burst of updates touches only the hot queries.
    for query, _estimate in hot.top(5):
        store.update(query, base[query] + 1000)
    # Readers scan the whole table; the filter keeps them out of the
    # differential file for the untouched long tail.
    for query in list(base)[:2000]:
        store.read(query)
    print("differential file after a hot-query update burst:")
    print(f"  table reads: 2000, differential-file probes: "
          f"{store.file_probes} (wasted: {store.wasted_probes})")
    hottest = hot.top(1)[0][0]
    print(f"  pending updates on {hottest!r}: "
          f"~{store.pending_updates(hottest)}")
    store.flush_key(hottest)
    print(f"  after flush_key: base[{hottest!r}] = {store.base[hottest]}, "
          f"pending ~{store.pending_updates(hottest)} "
          f"(per-key flush needs the SBF's deletions)")


if __name__ == "__main__":
    main()
