"""Range queries over a forest-elevation attribute (paper §5.5 + Figure 7).

Run:  python examples/elevation_range_index.py

Combines two parts of the paper: the Figure 7 data set (the Forest Cover
Type elevation attribute — here its synthetic stand-in) and §5.5's
Range-Tree Hashing, which lets the SBF answer

    SELECT count(*) FROM forest WHERE elevation > L AND elevation < U

with O(log |range|) probes and one-sided error, plus exact-style point
counts — one structure serving both query shapes, which histograms cannot.
"""

from repro.apps.range_query import RangeTreeSBF
from repro.data.forest import forest_cover_elevations


def main() -> None:
    counts = forest_cover_elevations(n_records=40_000, n_distinct=800,
                                     seed=21)
    low, high = min(counts), max(counts)
    total = sum(counts.values())
    print(f"forest data: {total} records, {len(counts)} distinct "
          f"elevations in [{low}, {high}] m")

    tree = RangeTreeSBF(low, high, m=600_000, k=4, seed=21)
    for elevation, frequency in counts.items():
        tree.insert(elevation, frequency)
    print(f"range-tree SBF built: {tree.tree_keys_per_item()} SBF updates "
          f"per inserted value, ~{tree.storage_bits() / 8 / 1024:.0f} KiB\n")

    def true_range(lo: int, hi: int) -> int:
        return sum(f for v, f in counts.items() if lo <= v <= hi)

    span = high - low
    queries = [
        ("montane band", low + span // 4, low + span // 2),
        ("subalpine band", low + span // 2, low + 3 * span // 4),
        ("extreme highlands", low + 9 * span // 10, high),
        ("narrow slice", low + span // 2, low + span // 2 + 20),
    ]
    print(f"{'query':20} {'range':>14} {'estimate':>10} {'true':>10} "
          f"{'probes':>7}")
    print("-" * 66)
    for label, lo, hi in queries:
        estimate = tree.range_count(lo, hi)
        print(f"{label:20} {f'[{lo},{hi}]':>14} {estimate:>10} "
              f"{true_range(lo, hi):>10} {tree.last_query_probes:>7}")

    # Point queries through the very same structure.
    some_value = max(counts, key=counts.get)
    print(f"\npoint query: elevation {some_value} m -> "
          f"~{tree.count(some_value)} records "
          f"(true {counts[some_value]})")

    # Sliding the window after a deletion (e.g. records aging out).
    tree.delete(some_value, counts[some_value] // 2)
    print(f"after deleting half of them -> ~{tree.count(some_value)}")


if __name__ == "__main__":
    main()
