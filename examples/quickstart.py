"""Quickstart: the Spectral Bloom Filter in five minutes.

Run:  python examples/quickstart.py

Walks through the core API: building a filter, frequency queries,
threshold (spectral) membership, deletions, the three maintenance methods,
multiset algebra, and the compact §4 storage backend.
"""

from repro import SpectralBloomFilter


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a filter and stream a multiset into it.
    # ------------------------------------------------------------------
    words = (["the"] * 50 + ["quick"] * 7 + ["brown"] * 7 + ["fox"] * 3
             + ["jumps"] * 2 + ["over"] * 2 + ["lazy"] + ["dog"])
    sbf = SpectralBloomFilter.for_items(n=1000, error_rate=0.01, seed=42)
    for word in words:
        sbf.insert(word)

    print("== frequency queries (one-sided: estimate >= truth) ==")
    for word in ("the", "fox", "dog", "unicorn"):
        print(f"  f({word!r:10}) ~= {sbf.query(word)}")

    # ------------------------------------------------------------------
    # 2. Spectral membership: thresholds chosen at query time.
    # ------------------------------------------------------------------
    print("\n== ad-hoc threshold filtering ==")
    for threshold in (1, 5, 10):
        passing = [w for w in set(words) if sbf.contains(w, threshold)]
        print(f"  f >= {threshold:2}: {sorted(passing)}")

    # ------------------------------------------------------------------
    # 3. Deletions (sliding windows, data warehouses).
    # ------------------------------------------------------------------
    print("\n== deletions ==")
    sbf.delete("the", 40)
    print(f"  after deleting 40 occurrences: f('the') ~= {sbf.query('the')}")

    # ------------------------------------------------------------------
    # 4. The three maintenance methods.
    # ------------------------------------------------------------------
    print("\n== maintenance methods ==")
    for method, note in [("ms", "Minimum Selection - the baseline"),
                         ("mi", "Minimal Increase  - best for insert-only"),
                         ("rm", "Recurring Minimum - best with deletions")]:
        filt = SpectralBloomFilter(m=8000, k=5, method=method, seed=7)
        for word in words:
            filt.insert(word)
        print(f"  {method}: f('quick') ~= {filt.query('quick'):2}   ({note})")

    # ------------------------------------------------------------------
    # 5. Multiset algebra: union (distributed sites) and join products.
    # ------------------------------------------------------------------
    print("\n== union and join multiplication ==")
    east = SpectralBloomFilter(m=4000, k=5, seed=99)
    west = SpectralBloomFilter(m=4000, k=5, seed=99)  # same seed = same hashes
    east.update({"apple": 3, "pear": 1})
    west.update({"apple": 2, "plum": 4})
    merged = east + west
    print(f"  union:    f('apple') ~= {merged.query('apple')} (3 + 2)")
    product = east * west
    print(f"  join:     f('apple') ~= {product.query('apple')} (3 x 2)"
          f", f('plum') ~= {product.query('plum')} (no partner)")

    # ------------------------------------------------------------------
    # 6. The compact storage backend (paper section 4).
    # ------------------------------------------------------------------
    print("\n== compact (String-Array Index) backend ==")
    compact = SpectralBloomFilter(m=2048, k=5, backend="compact", seed=1)
    for word in words:
        compact.insert(word)
    print(f"  f('the') ~= {compact.query('the')}, "
          f"storage ~= {compact.storage_bits()} bits "
          f"({compact.storage_bits() / 2048:.1f} bits/counter)")


if __name__ == "__main__":
    main()
