"""Chaos-scenario replay: one declarative spec, end to end (DESIGN.md §13).

Run:  PYTHONPATH=src python examples/scenario_replay.py

Loads the ``bloomjoin_packet_loss`` seed scenario — bloomjoin probe
traffic over a replicated fleet while one shard's links drop over half
their frames and duplicate a sixth — and replays it through the real
serving stack on a simulated clock.  The fault schedule degrades the
links at the ``lossy`` phase boundary and heals them at ``healed``; the
bounding-pair oracle referees every answer along the way: acknowledged
writes must be answered bit-exactly, ambiguous writes (a quorum write
that typed out as :class:`~repro.serve.Unavailable`) may only widen the
[lower, upper] envelope, and per-phase availability must clear the
spec's floors.  The run ends with a settle audit re-querying a key
sample after replicas converge, then prints the per-phase report.
"""

from repro.scenario import load_seed, run_scenario

SEED_NAME = "bloomjoin_packet_loss"


def main() -> None:
    spec = load_seed(SEED_NAME, quick=True)
    print(f"== scenario: {spec['name']} ==")
    print(f"  {spec['description']}")
    topo = spec["topology"]
    print(f"  topology: {topo['kind']}, {topo['shards']} shards, "
          f"rf={topo['rf']}, write_consistency={topo['write_consistency']}")

    report = run_scenario(spec)  # strict: raises on any oracle violation

    print("\n== phases ==")
    for record in report["phases"]:
        faults = record.get("injected_faults", {})
        retries = sum(stats.get("retries", 0)
                      for stats in record.get("channels", {}).values())
        print(f"  {record['phase']:>8}: {record['ops']['submitted']} ops, "
              f"availability {record['availability']:.3f}, "
              f"dropped frames {faults.get('drops', 0)}, "
              f"duplicated {faults.get('duplicates', 0)}, "
              f"retransmits {retries}")

    oracle = report["oracle"]
    print("\n== oracle ==")
    print(f"  {oracle['compared']} answers refereed, "
          f"{oracle['exact_compared']} bit-exact, "
          f"{oracle['ambiguous_writes']} ambiguous writes "
          f"(envelope widened, never wrong)")
    print(f"  settle audit re-checked {report['audit_checked']} keys; "
          f"conservation: {report['conservation']}")
    assert report["pass"] and oracle["wrong_answers"] == 0
    print(f"\n{SEED_NAME}: PASS with zero wrong answers under "
          f"packet loss and duplication")


if __name__ == "__main__":
    main()
