"""Tests for the baseline filters: Bloom, counting Bloom, Count-Min,
chained hash table."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BloomFilter,
    ChainedHashTable,
    CountingBloomFilter,
    CountMinSketch,
    SpectralBloomFilter,
)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(2000, 5, seed=1)
        keys = [f"key{i}" for i in range(200)]
        bf.update(keys)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_near_prediction(self):
        n, m, k = 1000, 8000, 5
        bf = BloomFilter(m, k, seed=2)
        bf.update(range(n))
        fp = sum(1 for x in range(10**6, 10**6 + 5000) if x in bf) / 5000
        assert fp == pytest.approx(bf.false_positive_rate(n), abs=0.015)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(10, 0)

    def test_for_items(self):
        bf = BloomFilter.for_items(500, 0.01, seed=1)
        bf.update(range(500))
        fp = sum(1 for x in range(10**6, 10**6 + 2000) if x in bf) / 2000
        assert fp < 0.03

    def test_union(self):
        a = BloomFilter(500, 3, seed=3)
        b = BloomFilter(500, 3, seed=3)
        a.add("x")
        b.add("y")
        u = a | b
        assert "x" in u and "y" in u

    def test_union_incompatible(self):
        a = BloomFilter(500, 3, seed=3)
        b = BloomFilter(500, 3, seed=4)
        with pytest.raises(ValueError):
            a.union(b)

    def test_fill_ratio_and_compression(self):
        """[Mit01]: a lightly-loaded filter is compressible; at p=0.5 the
        entropy bound approaches m."""
        bf = BloomFilter(10_000, 4, seed=5)
        bf.update(range(100))
        assert bf.fill_ratio() < 0.1
        assert bf.compressed_bits() < bf.storage_bits() * 0.5
        empty = BloomFilter(100, 2)
        assert empty.compressed_bits() == 0.0

    def test_storage_bits(self):
        assert BloomFilter(1234, 3).storage_bits() == 1234


class TestCountingBloomFilter:
    def test_membership_with_deletions(self):
        cbf = CountingBloomFilter(2000, 4, seed=1)
        cbf.update(["a", "b", "c"])
        cbf.remove("b")
        assert "a" in cbf and "c" in cbf
        assert "b" not in cbf

    def test_saturation_caps_estimates(self):
        """§1.1.3: 4-bit counters cannot represent multiset frequencies."""
        cbf = CountingBloomFilter(100, 3, bits_per_counter=4, seed=2)
        for _ in range(100):
            cbf.add("popular")
        assert cbf.estimate("popular") == 15
        assert cbf.is_saturated("popular")
        assert cbf.overflows > 0

    def test_sbf_fixes_the_saturation_gap(self):
        """The motivating comparison: the SBF counts past 15."""
        sbf = SpectralBloomFilter(100, 3, seed=2)
        for _ in range(100):
            sbf.insert("popular")
        assert sbf.query("popular") == 100

    def test_saturated_counters_not_decremented(self):
        cbf = CountingBloomFilter(10, 1, bits_per_counter=2, seed=3)
        for _ in range(10):
            cbf.add("x")
        cbf.remove("x")
        assert cbf.estimate("x") == 3  # stuck at saturation

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 3)
        with pytest.raises(ValueError):
            CountingBloomFilter(10, 3, bits_per_counter=0)

    def test_storage_bits(self):
        cbf = CountingBloomFilter(100, 3, bits_per_counter=4)
        assert cbf.storage_bits() == 400


class TestCountMinSketch:
    def test_one_sided_error(self):
        rng = random.Random(4)
        cms = CountMinSketch(width=1000, depth=4, seed=4)
        truth: dict[int, int] = {}
        for _ in range(5000):
            x = rng.randrange(300)
            truth[x] = truth.get(x, 0) + 1
            cms.insert(x)
        for x, f in truth.items():
            assert cms.query(x) >= f

    def test_conservative_update_not_worse(self):
        """[EV02]: conservative update dominates plain update."""
        rng = random.Random(5)
        plain = CountMinSketch(400, 4, seed=5)
        cons = CountMinSketch(400, 4, conservative=True, seed=5)
        truth: dict[int, int] = {}
        for _ in range(6000):
            x = rng.randrange(500)
            truth[x] = truth.get(x, 0) + 1
            plain.insert(x)
            cons.insert(x)
        for x, f in truth.items():
            assert f <= cons.query(x) <= plain.query(x)

    def test_conservative_matches_mi_spirit(self):
        """CM+conservative and SBF+MI implement the same estimator family;
        their total error should be in the same ballpark for equal space."""
        rng = random.Random(6)
        stream = [rng.randrange(400) for _ in range(8000)]
        truth: dict[int, int] = {}
        cms = CountMinSketch(width=800, depth=5, conservative=True, seed=6)
        sbf = SpectralBloomFilter(m=4000, k=5, method="mi", seed=6)
        for x in stream:
            truth[x] = truth.get(x, 0) + 1
            cms.insert(x)
            sbf.insert(x)
        cms_err = sum(cms.query(x) - f for x, f in truth.items())
        sbf_err = sum(sbf.query(x) - f for x, f in truth.items())
        assert cms_err >= 0 and sbf_err >= 0
        if cms_err + sbf_err > 0:
            ratio = (sbf_err + 1) / (cms_err + 1)
            assert 0.1 < ratio < 10

    def test_bulk_and_mapping_update(self):
        cms = CountMinSketch(100, 3, seed=1)
        cms.update({"a": 3})
        cms.update(["a", "b"])
        assert cms.query("a") >= 4
        assert cms.total_count == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 3)
        with pytest.raises(ValueError):
            CountMinSketch(10, 3).insert("x", -1)

    def test_storage_bits_positive(self):
        cms = CountMinSketch(10, 2)
        cms.insert("x", 100)
        assert cms.storage_bits() > 0


class TestChainedHashTable:
    def test_exact_counting(self):
        table = ChainedHashTable(64, seed=1)
        rng = random.Random(7)
        truth: dict[int, int] = {}
        for _ in range(2000):
            x = rng.randrange(150)
            truth[x] = truth.get(x, 0) + 1
            table.insert(x)
        for x, f in truth.items():
            assert table.query(x) == f
        assert table.query("missing") == 0
        assert len(table) == len(truth)

    def test_delete_semantics(self):
        table = ChainedHashTable(16, seed=1)
        table.insert("x", 5)
        table.delete("x", 2)
        assert table.query("x") == 3
        table.delete("x", 3)
        assert "x" not in table
        with pytest.raises(KeyError):
            table.delete("x")
        table.insert("y", 1)
        with pytest.raises(ValueError):
            table.delete("y", 5)

    def test_update_and_items(self):
        table = ChainedHashTable(8, seed=1)
        table.update({"a": 2, "b": 1})
        table.update(["a"])
        assert dict(table.items()) == {"a": 3, "b": 1}

    def test_storage_accounting(self):
        table = ChainedHashTable(64, seed=2)
        for x in range(100):
            table.insert(x, x + 1)
        assert table.key_storage_bits_tight() < table.key_storage_bits_loose()
        assert table.storage_bits() > table.counter_storage_bits()

    def test_probe_counting(self):
        table = ChainedHashTable(2, seed=3)  # force chains
        for x in range(20):
            table.insert(x)
        before = table.probes
        table.query(0)
        assert table.probes > before
        assert table.max_chain_length() >= 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            ChainedHashTable(0)
        with pytest.raises(ValueError):
            ChainedHashTable(4).insert("x", -2)


class TestBackendsModule:
    def test_make_backend_passthrough_and_errors(self):
        from repro.storage.backends import ArrayBackend, make_backend
        backend = ArrayBackend(10)
        assert make_backend(backend, 10) is backend
        with pytest.raises(ValueError):
            make_backend(backend, 11)
        with pytest.raises(ValueError):
            make_backend("punchcards", 10)
        assert isinstance(make_backend(ArrayBackend, 10), ArrayBackend)

    @pytest.mark.parametrize("name", ["array", "compact", "stream"])
    def test_backend_contract(self, name):
        from repro.storage.backends import make_backend
        backend = make_backend(name, 8)
        assert len(backend) == 8
        assert backend.to_list() == [0] * 8
        assert backend.add(3, 5) == 5
        backend.set(3, 2)
        assert backend.get(3) == 2
        with pytest.raises(ValueError):
            backend.add(3, -10)
        assert backend.add_clamped(3, -10) == 0
        assert backend.storage_bits() > 0

    @pytest.mark.parametrize("name", ["array", "compact", "stream"])
    def test_backend_invalid_size(self, name):
        from repro.storage.backends import make_backend
        with pytest.raises(ValueError):
            make_backend(name, 0)

    @settings(max_examples=15)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 200)),
                    min_size=1, max_size=60))
    def test_backends_stay_in_lockstep(self, ops):
        from repro.storage.backends import make_backend
        backends = [make_backend(n, 16) for n in ("array", "compact",
                                                  "stream")]
        for i, value in ops:
            for backend in backends:
                backend.set(i, value)
        reference = backends[0].to_list()
        for backend in backends[1:]:
            assert backend.to_list() == reference
