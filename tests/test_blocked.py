"""Tests for the [MW94] blocked / external-memory hash family."""

import pytest

from repro import SpectralBloomFilter
from repro.hashing import BlockedHashFamily, make_family


class TestBlockedFamily:
    def test_all_probes_inside_one_block(self):
        fam = BlockedHashFamily(m=1024, k=5, seed=1, block_size=64)
        for key in range(500):
            idx = fam.indices(key)
            blocks = {i // 64 for i in idx}
            assert len(blocks) == 1
            assert fam.blocks_touched(key) == 1

    def test_indices_in_range_with_ragged_last_block(self):
        fam = BlockedHashFamily(m=100, k=4, seed=2, block_size=33)
        for key in range(300):
            assert all(0 <= i < 100 for i in fam.indices(key))

    def test_default_block_size(self):
        fam = BlockedHashFamily(m=6400, k=3, seed=3)
        assert fam.block_size == 100
        assert fam.n_blocks == 64

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockedHashFamily(m=100, k=3, block_size=0)
        with pytest.raises(ValueError):
            BlockedHashFamily(m=100, k=3, block_size=101)

    def test_compatibility_requires_same_block_size(self):
        a = BlockedHashFamily(100, 3, seed=1, block_size=10)
        b = BlockedHashFamily(100, 3, seed=1, block_size=10)
        c = BlockedHashFamily(100, 3, seed=1, block_size=20)
        assert a.is_compatible(b)
        assert not a.is_compatible(c)

    def test_spawn_keeps_block_size(self):
        fam = BlockedHashFamily(100, 3, seed=1, block_size=10)
        child = fam.spawn(m=50)
        assert child.block_size == 10
        assert child.m == 50

    def test_make_family_by_name(self):
        fam = make_family("blocked", 100, 3, seed=1)
        assert isinstance(fam, BlockedHashFamily)


class TestBlockedSbf:
    def test_sbf_with_blocked_hashing_works(self):
        """§2.2: 'The same analysis applies in the SBF case' — the SBF runs
        unchanged on blocked functions."""
        sbf = SpectralBloomFilter(4096, 5, seed=4, hash_family="blocked")
        truth = {x: 1 + x % 6 for x in range(400)}
        for x, f in truth.items():
            sbf.insert(x, f)
        for x, f in truth.items():
            assert sbf.query(x) >= f

    def test_accuracy_close_to_unblocked_for_large_blocks(self):
        """[MW94]: 'for large enough segments, the difference is
        negligible'."""
        import random
        rng = random.Random(5)
        stream = [rng.randrange(800) for _ in range(8000)]
        truth: dict[int, int] = {}
        m, k = 6000, 5
        plain = SpectralBloomFilter(m, k, seed=5)
        blocked = SpectralBloomFilter(
            m, k, seed=5,
            hash_family=BlockedHashFamily(m, k, seed=5, block_size=m // 8))
        for x in stream:
            truth[x] = truth.get(x, 0) + 1
            plain.insert(x)
            blocked.insert(x)
        plain_err = sum(1 for x, f in truth.items() if plain.query(x) != f)
        blocked_err = sum(1 for x, f in truth.items()
                          if blocked.query(x) != f)
        assert blocked_err <= 3 * plain_err + 5

    def test_tiny_blocks_degrade_accuracy(self):
        """The other side of the [MW94] analysis: heavy segmentation
        hurts — with block_size ~ k every key piles onto one tiny block."""
        import random
        rng = random.Random(6)
        stream = [rng.randrange(500) for _ in range(5000)]
        truth: dict[int, int] = {}
        m, k = 4000, 5
        plain = SpectralBloomFilter(m, k, seed=6)
        tiny = SpectralBloomFilter(
            m, k, seed=6,
            hash_family=BlockedHashFamily(m, k, seed=6, block_size=8))
        for x in stream:
            truth[x] = truth.get(x, 0) + 1
            plain.insert(x)
            tiny.insert(x)
        plain_err = sum(1 for x, f in truth.items() if plain.query(x) != f)
        tiny_err = sum(1 for x, f in truth.items() if tiny.query(x) != f)
        assert tiny_err > plain_err
