"""One test per numbered claim / lemma / theorem in the paper.

The rest of the suite exercises these properties in passing; this module
is the explicit claims index — each test names the statement it checks
and is written as close to the paper's wording as the substrate allows.
"""

import math
import random

import pytest

from repro import SpectralBloomFilter
from repro.analysis.zipf_errors import (
    expected_relative_error,
    relative_error_tail_probability,
)
from repro.apps.range_query import RangeTreeSBF
from repro.core.params import bloom_error
from repro.core.unbiased import UnbiasedEstimator
from repro.data.streams import insertion_stream
from repro.succinct.string_array import StringArrayIndex


class TestClaim1:
    """Claim 1: for all x, f_x <= m_x, and f_x != m_x with probability
    E_SBF = E_b (the Bloom error)."""

    def test_minimum_upper_bounds_frequency(self):
        rng = random.Random(1)
        sbf = SpectralBloomFilter(3000, 5, method="ms", seed=1)
        truth: dict[int, int] = {}
        for _ in range(4000):
            x = rng.randrange(700)
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        for x, f in truth.items():
            assert sbf.min_counter(x) >= f

    def test_error_probability_tracks_bloom_error(self):
        n, k, m = 800, 5, 5600
        sbf = SpectralBloomFilter(m, k, method="ms", seed=2)
        for x in range(n):
            sbf.insert(x, 1 + x % 3)
        errors = sum(1 for x in range(n)
                     if sbf.query(x) != 1 + x % 3)
        predicted = bloom_error(n, k, m)
        assert errors / n == pytest.approx(predicted, abs=0.03)


class TestLemma2:
    """Lemma 2: P(RE_i^z > T) <= k (i / ((n-k) T^(1/z)))^k."""

    def test_bound_formula_and_shape(self):
        n, k, z = 1000, 5, 1.0
        # The bound decreases with T and increases with rank i.
        assert (relative_error_tail_probability(100, n, k, z, 1.0)
                < relative_error_tail_probability(100, n, k, z, 0.2))
        assert (relative_error_tail_probability(50, n, k, z, 0.5)
                < relative_error_tail_probability(500, n, k, z, 0.5))

    def test_bound_dominates_simulation(self):
        """Empirically: conditioned on an error, the relative error of a
        frequent item rarely exceeds T when the bound says it shouldn't."""
        n, k, z, T = 400, 5, 1.0, 2.0
        exceed = 0
        errors = 0
        for seed in range(6):
            sbf = SpectralBloomFilter(n * k, k, method="ms", seed=seed)
            truth: dict[int, int] = {}
            for x in insertion_stream(n, 8000, z, seed=seed):
                truth[x] = truth.get(x, 0) + 1
                sbf.insert(x)
            ranked = sorted(truth, key=truth.get, reverse=True)
            for rank, x in enumerate(ranked[:50], start=1):
                estimate = sbf.query(x)
                if estimate != truth[x]:
                    errors += 1
                    if (estimate - truth[x]) / truth[x] > T:
                        exceed += 1
        bound = relative_error_tail_probability(50, n, k, z, T)
        if errors:
            assert exceed / errors <= min(1.0, bound) + 0.25


class TestLemma3:
    """Lemma 3: f̄_x = (v̄_x - kN/m) / (1 - k/m) is unbiased."""

    def test_empirical_unbiasedness(self):
        biases = []
        for seed in range(5):
            rng = random.Random(seed)
            sbf = SpectralBloomFilter(2500, 5, seed=seed)
            truth: dict[int, int] = {}
            for _ in range(3000):
                x = rng.randrange(500)
                truth[x] = truth.get(x, 0) + 1
                sbf.insert(x)
            est = UnbiasedEstimator(sbf)
            biases.append(sum(est.estimate(x) - f
                              for x, f in truth.items()) / len(truth))
        avg_f = 3000 / 500
        assert abs(sum(biases) / len(biases)) < 0.15 * avg_f


class TestClaim4:
    """Claim 4: MI's error probability is at most E_b and its error size
    at most MS's, for every item."""

    def test_pointwise_dominance(self):
        for seed in (3, 4):
            ms = SpectralBloomFilter(2800, 5, method="ms", seed=seed)
            mi = SpectralBloomFilter(2800, 5, method="mi", seed=seed)
            truth: dict[int, int] = {}
            for x in insertion_stream(600, 9000, 0.8, seed=seed):
                truth[x] = truth.get(x, 0) + 1
                ms.insert(x)
                mi.insert(x)
            for x, f in truth.items():
                assert f <= mi.query(x) <= ms.query(x)


class TestClaim5:
    """Claim 5: for uniform data, MI reduces the error roughly k-fold.

    The claim's idealised model predicts an expected MI error of F/k when
    MS errs by F; we assert the substantial (>= k/2-fold) reduction on
    real uniform streams, aggregated over the erroneous items.
    """

    def test_uniform_error_reduction(self):
        k = 5
        total_ms = total_mi = 0
        for seed in range(5):
            ms = SpectralBloomFilter(2000, k, method="ms", seed=seed)
            mi = SpectralBloomFilter(2000, k, method="mi", seed=seed)
            truth: dict[int, int] = {}
            for x in insertion_stream(500, 10_000, 0.0, seed=seed):
                truth[x] = truth.get(x, 0) + 1
                ms.insert(x)
                mi.insert(x)
            total_ms += sum(ms.query(x) - f for x, f in truth.items())
            total_mi += sum(mi.query(x) - f for x, f in truth.items())
        assert total_ms > 0
        assert total_mi <= total_ms / (k / 2)


class TestTheorem6:
    """Theorem 6: an SBF of N + o(N) + O(m) bits, O(1) lookups, O(1)
    expected amortised updates."""

    def test_storage_bound_constants(self):
        rng = random.Random(6)
        values = [rng.randrange(0, 300) for _ in range(20_000)]
        sai = StringArrayIndex(values)
        n_bits = sai.raw_bits()
        m = len(sai)
        # Generous concrete constants for the asymptotic statement:
        # total <= 3N + 12m covers base+slack+index at this scale.
        assert sai.total_bits() <= 3 * n_bits + 12 * m

    def test_amortised_updates(self):
        """Per-op update time stays flat across a 16x size range."""
        import time
        per_op = []
        for n in (1000, 16_000):
            rng = random.Random(7)
            sai = StringArrayIndex([0] * n)
            t0 = time.perf_counter()
            for _ in range(5 * n):
                sai.increment(rng.randrange(n))
            per_op.append((time.perf_counter() - t0) / (5 * n))
        assert per_op[1] < 8 * per_op[0]


class TestLemma7:
    """Lemma 7: the string-array index supports access to any item in
    O(1) time within o(N) + O(m) bits."""

    def test_lookup_touches_bounded_structures(self):
        """position() resolves through at most the three fixed levels —
        demonstrated by its cost being independent of m."""
        import time
        costs = []
        for n in (2000, 32_000):
            sai = StringArrayIndex(list(range(1, n + 1)))
            for i in range(0, n, 97):
                sai.get(i)  # warm the lookup table
            t0 = time.perf_counter()
            for i in range(0, n, max(1, n // 1000)):
                sai.position(i)
            costs.append((time.perf_counter() - t0) / 1000)
        assert costs[1] < 8 * costs[0]


class TestLemma8:
    """Lemma 8: the expected number of items between an expanding counter
    and the first available slack is O(1/eps) — i.e., pushes stay short."""

    def test_pushes_move_bounded_tails(self):
        rng = random.Random(8)
        n = 4000
        sai = StringArrayIndex([0] * n)
        for _ in range(10 * n):
            sai.increment(rng.randrange(n))
        # Every push shifted at most a chunk's tail (a handful of items);
        # with ~10n width-growing increments the total push count stays
        # within a small multiple of the updates, and rebuilds are rare.
        assert sai.pushes <= 10 * n
        assert sai.rebuilds <= 8


class TestTheorem9:
    """Theorem 9: the §4.6 reduction exponent shrinks the index by a
    (log log N)^c-flavoured factor while keeping O(1) operations."""

    def test_reduction_shrinks_realised_index(self):
        rng = random.Random(9)
        values = [rng.randrange(1, 200) for _ in range(6000)]
        sizes = {}
        for c in (0.0, 0.5):
            sai = StringArrayIndex(list(values), reduction_c=c)
            for i in range(0, len(values), 5):
                sai.get(i)
            sizes[c] = sai.index_bits()
        assert sizes[0.5] < sizes[0.0]


class TestClaim10:
    """Claim 10: T / log T > beta is satisfied for T > 3 beta log beta,
    beta > 3 (the paper's helper inequality)."""

    @pytest.mark.parametrize("beta", [4, 10, 100, 5000])
    def test_inequality(self, beta):
        t = 3 * beta * math.log2(beta)
        t_probe = t * 1.0001  # strictly above the bound
        assert t_probe / math.log2(t_probe) > beta


class TestTheorem11:
    """Theorem 11: range queries with log r updates per insert and
    O(log |Q|) probes per range lookup."""

    def test_update_and_probe_complexity(self):
        r = 1024
        tree = RangeTreeSBF(0, r - 1, m=50_000, k=4, seed=11)
        assert tree.tree_keys_per_item() <= math.log2(r) + 2
        for v in range(0, r, 3):
            tree.insert(v)
        tree.range_count(100, 611)
        q = 611 - 100 + 1
        assert tree.last_query_probes <= 2 * (math.log2(q) + 2)


class TestClaim12:
    """Claim 12: the range tree inserts at most n log r synthetic keys."""

    def test_tree_key_volume(self):
        r = 256
        tree = RangeTreeSBF(0, r - 1, m=40_000, k=4, seed=12)
        distinct = set()
        rng = random.Random(12)
        synthetic_inserts = 0
        for _ in range(500):
            v = rng.randrange(r)
            distinct.add(v)
            synthetic_inserts += len(tree._ancestors(v))
            tree.insert(v)
        # Per insert: < log2(r) synthetic keys; over distinct items the
        # *distinct* synthetic keys are <= n log r.
        distinct_tree_keys = {key
                              for v in distinct
                              for key in tree._ancestors(v)}
        assert len(distinct_tree_keys) <= len(distinct) * math.log2(r)
