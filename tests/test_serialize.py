"""Tests for the wire formats (§4.7.1 contiguous-memory transmission)."""

import random

import pytest

from repro import BloomFilter, SpectralBloomFilter
from repro.core.serialize import dump_bloom, dump_sbf, load_bloom, load_sbf
from repro.succinct.serialize import dump_string_array, load_string_array
from repro.succinct.string_array import StringArrayIndex


class TestStringArraySerialization:
    def test_roundtrip_values(self):
        values = [0, 1, 5, 1000, 3, 2**40, 0, 77]
        blob = dump_string_array(StringArrayIndex(values))
        assert load_string_array(blob).to_list() == values

    def test_roundtrip_after_updates(self):
        sai = StringArrayIndex([0] * 50)
        rng = random.Random(1)
        for _ in range(500):
            sai.increment(rng.randrange(50), rng.randrange(1, 20))
        restored = load_string_array(dump_string_array(sai))
        assert restored.to_list() == sai.to_list()

    def test_blob_is_compact(self):
        """The wire format ships ~N bits + widths, not the full index."""
        sai = StringArrayIndex([1] * 1000)
        blob = dump_string_array(sai)
        assert len(blob) * 8 < sai.total_bits() * 1.5

    def test_restored_structure_is_updatable(self):
        sai = load_string_array(dump_string_array(StringArrayIndex([5, 6])))
        sai.increment(0, 100)
        assert sai.get(0) == 105

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            load_string_array(b"XXXX" + b"\0" * 32)

    def test_truncated_rejected(self):
        blob = dump_string_array(StringArrayIndex([2**30] * 8))
        with pytest.raises(ValueError):
            load_string_array(blob[:-4])


class TestBloomSerialization:
    def test_roundtrip_membership(self):
        bf = BloomFilter(512, 4, seed=3)
        bf.update(f"key{i}" for i in range(100))
        restored = load_bloom(dump_bloom(bf))
        assert all(f"key{i}" in restored for i in range(100))
        assert restored.n_added == 100
        assert restored.family.is_compatible(bf.family)

    def test_roundtrip_preserves_bits_exactly(self):
        bf = BloomFilter(300, 3, seed=4, hash_family="tabulation")
        bf.update(range(50))
        restored = load_bloom(dump_bloom(bf))
        for i in range(300):
            assert restored.bits.get_bit(i) == bf.bits.get_bit(i)

    def test_bad_blob(self):
        with pytest.raises(ValueError):
            load_bloom(b"nope")
        blob = dump_bloom(BloomFilter(128, 2))
        with pytest.raises(ValueError):
            load_bloom(blob[:-8])


class TestSbfSerialization:
    @pytest.mark.parametrize("method", ["ms", "mi", "rm"])
    def test_roundtrip_estimates(self, method):
        sbf = SpectralBloomFilter(800, 4, method=method, seed=5)
        rng = random.Random(5)
        keys = [rng.randrange(200) for _ in range(2000)]
        for x in keys:
            sbf.insert(x)
        restored = load_sbf(dump_sbf(sbf))
        for x in range(200):
            assert restored.query(x) == sbf.query(x)
        assert restored.total_count == sbf.total_count

    def test_restored_filter_is_usable(self):
        sbf = SpectralBloomFilter(400, 3, seed=6)
        sbf.insert("x", 5)
        restored = load_sbf(dump_sbf(sbf))
        restored.insert("x", 2)
        restored.delete("x", 1)
        assert restored.query("x") == 6

    def test_restored_filter_is_compatible_for_algebra(self):
        """The Bloomjoin use-case: ship, multiply on arrival."""
        a = SpectralBloomFilter(600, 4, seed=7)
        b = SpectralBloomFilter(600, 4, seed=7)
        a.update({"j1": 2, "j2": 3})
        b.update({"j1": 4, "zz": 1})
        shipped = load_sbf(dump_sbf(b))
        product = a * shipped
        assert product.query("j1") >= 8
        assert product.query("zz") == 0

    def test_rm_ships_secondary_and_marker(self):
        sbf = SpectralBloomFilter(500, 4, method="rm", seed=8)
        for x in range(300):
            sbf.insert(x)
        restored = load_sbf(dump_sbf(sbf))
        assert restored.method.secondary.total_count == \
            sbf.method.secondary.total_count
        for x in range(300):
            assert restored.query(x) == sbf.query(x)

    def test_trm_degrades_to_rm(self):
        sbf = SpectralBloomFilter(500, 4, method="trm", seed=9)
        for x in range(200):
            sbf.insert(x, 2)
        restored = load_sbf(dump_sbf(sbf))
        assert restored.method.name == "rm"
        # Estimates survive the TRM -> RM degradation exactly (traps are
        # transient state, not represented multiset content).
        for x in range(200):
            assert restored.query(x) == sbf.query(x)

    def test_compact_backend_roundtrips_to_array(self):
        """The wire format is backend-independent."""
        sbf = SpectralBloomFilter(256, 3, seed=10, backend="compact")
        sbf.update({"a": 9, "b": 1})
        restored = load_sbf(dump_sbf(sbf))
        assert restored.query("a") == sbf.query("a")

    def test_wire_size_tracks_content(self):
        small = SpectralBloomFilter(1000, 4, seed=11)
        big = SpectralBloomFilter(1000, 4, seed=11)
        big.update({i: 50 for i in range(200)})
        assert len(dump_sbf(big)) > len(dump_sbf(small))

    def test_bad_blob(self):
        with pytest.raises(ValueError):
            load_sbf(b"garbage")
