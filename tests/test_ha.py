"""ReplicaSet / hinted handoff / anti-entropy: the HA layer.

The invariant under test everywhere: **no wrong answers, ever**.  A
replica set may refuse an operation (typed :class:`Unavailable`) while
too few replicas are healthy, but every answer it does give is the one
the unsharded oracle filter would give — and after handoff/repair the
replicas are bit-identical, counter for counter.

Chaos tests are seeded (fault policies and channels share fixed seeds),
so every ejection, hint, probe, and repair replays identically.
"""

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import ChannelStats, DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    ALL,
    QUORUM,
    HintLog,
    MetricsRegistry,
    RemoteShard,
    ReplicaSet,
    ServingEngine,
    ShardBatcher,
    ShardServer,
    Unavailable,
    replicated_fleet,
    required_replicas,
)

M, K, SEED = 2048, 4, 11


def make_filter() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def make_handle() -> ConcurrentSBF:
    return ConcurrentSBF(make_filter())


def workload(n: int = 300) -> list:
    return [f"key:{i % 83}" for i in range(n)] + list(range(n // 3))


class FlakyReplica:
    """Local handle with a partition switch (raises DeliveryFailed while
    ``down`` — the same transient the transport reports)."""

    _GUARDED = frozenset({"insert", "delete", "set", "query", "contains",
                          "query_many", "insert_many", "delete_many",
                          "checkpoint"})

    def __init__(self, handle):
        self._handle = handle
        self.down = False

    def _guard(self) -> None:
        if self.down:
            raise DeliveryFailed("replica is partitioned", ChannelStats())

    def __getattr__(self, name):
        attr = getattr(self._handle, name)
        if name in FlakyReplica._GUARDED:
            def guarded(*args, **kwargs):
                self._guard()
                return attr(*args, **kwargs)
            return guarded
        return attr

    @property
    def total_count(self) -> int:
        self._guard()
        return self._handle.total_count


def make_set(rf: int = 3, *, metrics: MetricsRegistry | None = None,
             **options) -> tuple[ReplicaSet, list[FlakyReplica]]:
    replicas = [FlakyReplica(make_handle()) for _ in range(rf)]
    options.setdefault("eject_after", 2)
    options.setdefault("probe_every", 10_000)   # tests tick explicitly
    return ReplicaSet(replicas, metrics=metrics, **options), replicas


def assert_replicas_identical(rset: ReplicaSet) -> None:
    filters = [r.sbf for r in rset.replicas]
    for other in filters[1:]:
        assert list(other.counters) == list(filters[0].counters)
        assert other.total_count == filters[0].total_count


def test_required_replicas_levels():
    assert required_replicas("one", 3) == 1
    assert required_replicas("quorum", 3) == 2
    assert required_replicas("quorum", 5) == 3
    assert required_replicas("all", 3) == 3
    with pytest.raises(ValueError, match="consistency"):
        required_replicas("most", 3)


def test_replica_set_is_a_transparent_shard_handle():
    rset, _ = make_set(3)
    oracle = make_filter()
    keys = workload()
    for key in keys:
        rset.insert(key)
        oracle.insert(key)
    for key in keys + ["miss", -7]:
        assert rset.query(key) == oracle.query(key)
    assert rset.total_count == oracle.total_count
    estimates = rset.query_many(keys[:40])
    assert estimates.tolist() == [oracle.query(k) for k in keys[:40]]
    rset.delete(keys[0])
    oracle.delete(keys[0])
    assert rset.query(keys[0]) == oracle.query(keys[0])
    rset.set("key:0", 9)
    assert rset.query("key:0") == 9
    assert_replicas_identical(rset)


def test_writes_during_outage_are_hinted_and_handed_off():
    registry = MetricsRegistry(clock=lambda: 42.0)
    rset, flaky = make_set(3, metrics=registry)
    oracle = make_filter()
    for key in workload(60):
        rset.insert(key)
        oracle.insert(key)
    flaky[2].down = True
    hinted_keys = [f"late:{i}" for i in range(25)]
    for key in hinted_keys:
        rset.insert(key, 2)           # acked by r0/r1, hinted for r2
        oracle.insert(key, 2)
    health = {h["replica"]: h for h in rset.health()}
    assert health["r2"]["up"] is False             # ejected after failures
    assert health["r2"]["hint_depth"] > 0
    # Reads keep serving the oracle's answers from the healthy quorum.
    for key in hinted_keys:
        assert rset.query(key) == oracle.query(key)
    # Heal, probe: handoff drains in order, the convergence proof passes,
    # and the replica set is bit-identical again.
    flaky[2].down = False
    assert rset.tick() == 1
    assert all(h["up"] and h["hint_depth"] == 0 for h in rset.health())
    assert_replicas_identical(rset)
    for key in hinted_keys:
        assert rset.query(key) == oracle.query(key)
    gauges = registry.snapshot()["gauges"]
    assert gauges["ha.rs.r2.up"] == 1.0
    assert gauges["ha.rs.r2.hint_depth"] == 0
    counters = registry.snapshot()["counters"]
    assert counters["ha.rs.ejections"] == 1
    assert counters["ha.rs.readmissions"] == 1
    assert counters["ha.rs.handoffs"] == len(hinted_keys)
    assert counters["ha.rs.hinted"] >= len(hinted_keys)


def test_unacknowledged_writes_are_never_hinted():
    rset, flaky = make_set(3, write_consistency=ALL)
    rset.insert("seed")
    flaky[0].down = True
    with pytest.raises(Unavailable) as excinfo:
        rset.insert("lost")
    assert excinfo.value.needed == 3
    assert excinfo.value.got == 2
    # The failed write was the client's to retry: nothing queued for r0,
    # and the replicas that did apply it are *ahead*, not wrong — but
    # since the op was refused, the set must not remember it as acked.
    assert all(h["hint_depth"] == 0 for h in rset.health())


def test_semantic_errors_raise_and_are_not_hinted():
    rset, flaky = make_set(3)
    flaky[1].down = True
    with pytest.raises(ValueError, match="negative"):
        rset.delete("never-inserted", 5)
    health = {h["replica"]: h for h in rset.health()}
    assert health["r1"]["hint_depth"] == 0


def test_reads_fall_short_of_quorum_raise_unavailable():
    rset, flaky = make_set(3, read_consistency=QUORUM)
    rset.insert("x")
    flaky[1].down = True
    flaky[2].down = True
    for _ in range(4):                     # burn through to ejection
        try:
            rset.query("x")
        except Unavailable:
            pass
    with pytest.raises(Unavailable) as excinfo:
        rset.query("x")
    assert excinfo.value.needed == 2
    assert excinfo.value.got == 1
    # ONE healthy replica still serves reads at consistency ONE.
    assert ReplicaSet([rset.replicas[0]._handle], name="solo").query("x") == 1


def test_query_many_needs_a_quorum_per_slot():
    rset, flaky = make_set(3, read_consistency=QUORUM)
    for key in workload(50):
        rset.insert(key)
    assert rset.query_many(["key:1", "key:2"]).tolist() == [
        rset.query("key:1"), rset.query("key:2")]
    flaky[1].down = True
    flaky[2].down = True
    for _ in range(3):      # eject the partitioned pair
        try:
            rset.query("key:1")
        except Unavailable:
            pass
    with pytest.raises(Unavailable):
        rset.query_many(["key:1", "key:2"])


def test_bulk_writes_hint_only_acknowledged_slots():
    rset, flaky = make_set(3)
    flaky[2].down = True
    keys = [f"bulk:{i}" for i in range(30)]
    result = rset.insert_many(keys, [2] * len(keys))
    assert result.ok                         # write consistency ONE met
    health = {h["replica"]: h for h in rset.health()}
    assert health["r2"]["hint_depth"] == len(keys)
    flaky[2].down = False
    rset.tick()
    assert_replicas_identical(rset)
    oracle = make_filter()
    for key in keys:
        oracle.insert(key, 2)
    for key in keys:
        assert rset.query(key) == oracle.query(key)


def test_durable_hints_survive_a_coordinator_restart(tmp_path):
    handles = [make_handle() for _ in range(3)]
    flaky = [FlakyReplica(h) for h in handles]
    rset = ReplicaSet(flaky, hint_dir=str(tmp_path), probe_every=10_000)
    for key in workload(40):
        rset.insert(key)
    flaky[1].down = True
    for i in range(15):
        rset.insert(f"hinted:{i}", 3)
    assert {h["replica"]: h for h in rset.health()}["r1"]["hint_depth"] > 0
    rset.close()                              # coordinator goes away
    # A new coordinator over the same replicas recovers the hint queue
    # from its WAL and hands it off once the replica is reachable.
    flaky[1].down = False
    rset2 = ReplicaSet(flaky, hint_dir=str(tmp_path), probe_every=10_000)
    assert {h["replica"]: h
            for h in rset2.health()}["r1"]["hint_depth"] == 15
    rset2.tick()
    assert all(h["hint_depth"] == 0 for h in rset2.health())
    assert_replicas_identical(rset2)
    rset2.close()


def test_readmission_requires_proof_of_convergence_then_repair():
    registry = MetricsRegistry(clock=lambda: 7.5)
    rset, flaky = make_set(3, metrics=registry)
    for key in workload(50):
        rset.insert(key)
    flaky[0].down = True
    for _ in range(2):
        try:
            rset.insert("eject-trigger")
        except Exception:
            pass
    assert not {h["replica"]: h for h in rset.health()}["r0"]["up"]
    # The replica's disk diverged while it was gone (lost writes / rogue
    # restore): drain its hints, then corrupt it so the total proof fails.
    flaky[0]._handle.insert("rogue-key", 5)
    flaky[0].down = False
    assert rset.tick() == 0                   # handoff ran, proof failed
    health = {h["replica"]: h for h in rset.health()}
    assert health["r0"]["up"] is False
    assert health["r0"]["needs_repair"] is True
    # Anti-entropy converges it counter-for-counter and re-admits it.
    report = rset.repair()
    assert report.converged
    assert 0 in report.copied or report.counters_copied > 0
    assert all(h["up"] and not h["needs_repair"] for h in rset.health())
    assert_replicas_identical(rset)
    gauges = registry.snapshot()["gauges"]
    assert gauges["ha.rs.r0.last_repair"] == 7.5
    assert registry.snapshot()["counters"]["ha.rs.repairs"] == 1


def test_probe_every_triggers_automatic_reprobe():
    rset, flaky = make_set(3, probe_every=5)
    flaky[2].down = True
    for i in range(3):
        rset.insert(f"a:{i}")
    flaky[2].down = False
    for i in range(10):                        # crosses the probe cadence
        rset.insert(f"b:{i}")
    assert all(h["up"] and h["hint_depth"] == 0 for h in rset.health())
    assert_replicas_identical(rset)


# -- replica sets behind the wire ----------------------------------------

def remote_set(rf: int = 3, *, metrics: MetricsRegistry | None = None,
               **options):
    """A ReplicaSet whose replicas live behind a FaultyNetwork."""
    network = FaultyNetwork()
    handles, remotes = [], []
    for r in range(rf):
        handle = make_handle()
        handles.append(handle)
        remotes.append(RemoteShard(
            ShardServer(handle), network, "coord", f"r{r}",
            channel_options={"max_retries": 2}, metrics=metrics))
    options.setdefault("eject_after", 2)
    options.setdefault("probe_every", 10_000)
    rset = ReplicaSet(remotes, metrics=metrics, **options)
    return rset, network, handles


def partition(network: FaultyNetwork, name: str, seed: int) -> None:
    network.set_policy("coord", name, FaultPolicy(drop=1.0, seed=seed))
    network.set_policy(name, "coord", FaultPolicy(drop=1.0, seed=seed + 1))


def heal(network: FaultyNetwork, name: str) -> None:
    network.set_policy("coord", name, None)
    network.set_policy(name, "coord", None)


@pytest.mark.chaos
def test_remote_replica_outage_serves_the_oracle_throughout():
    rset, network, handles = remote_set(3, read_consistency=QUORUM)
    oracle = make_filter()
    keys = workload(80)
    for key in keys:
        rset.insert(key)
        oracle.insert(key)
    partition(network, "r1", seed=31)
    wrong = 0
    for i, key in enumerate(keys):
        rset.insert(f"outage:{i}")
        oracle.insert(f"outage:{i}")
        if rset.query(key) != oracle.query(key):
            wrong += 1
    assert wrong == 0                          # zero wrong answers
    heal(network, "r1")
    assert rset.tick() == 1
    for key in keys:
        assert rset.query(key) == oracle.query(key)
    filters = [h.sbf for h in handles]
    for other in filters[1:]:
        assert list(other.counters) == list(filters[0].counters)


@pytest.mark.chaos
def test_kill_and_restart_each_replica_in_turn():
    """The acceptance drill: RF=3, quorum reads, each replica killed and
    restarted in turn under live traffic — zero answers differ from the
    oracle, and hinted writes converge the set bit-identically."""
    rset, network, handles = remote_set(3, read_consistency=QUORUM)
    oracle = make_filter()
    keys = workload(60)
    for key in keys:
        rset.insert(key)
        oracle.insert(key)
    step = 0
    for victim in ("r0", "r1", "r2"):
        partition(network, victim, seed=100 + step)
        for i in range(40):
            key = f"phase:{victim}:{i}"
            rset.insert(key, 1 + i % 3)
            oracle.insert(key, 1 + i % 3)
            probe = keys[(step + i) % len(keys)]
            assert rset.query(probe) == oracle.query(probe)
        heal(network, victim)
        assert rset.tick() == 1                # handoff + re-admission
        step += 1
    assert all(h["up"] and h["hint_depth"] == 0 for h in rset.health())
    filters = [h.sbf for h in handles]
    for other in filters[1:]:
        assert list(other.counters) == list(filters[0].counters)
    for key in keys:
        assert rset.query(key) == oracle.query(key)
    assert rset.total_count == oracle.total_count


@pytest.mark.chaos
def test_replicated_fleet_with_engine_maintenance_readmits():
    registry = MetricsRegistry()
    networks: dict[int, FaultyNetwork] = {}
    handles: dict[tuple[int, int], ConcurrentSBF] = {}

    def factory(s: int, r: int):
        network = networks.setdefault(s, FaultyNetwork())
        handle = make_handle()
        handles[(s, r)] = handle
        return RemoteShard(ShardServer(handle), network, "coord",
                           f"r{r}", channel_options={"max_retries": 2},
                           metrics=registry)

    fleet = replicated_fleet(2, M, K, rf=3, seed=SEED,
                             replica_factory=factory,
                             eject_after=2, probe_every=10_000,
                             metrics=registry)
    oracle = make_filter()
    engine = ServingEngine(fleet, max_queue=512, maintenance_every=1)
    keys = workload(60)
    for key in keys:
        engine.submit("insert", key)
    engine.drain()
    for key in keys:
        oracle.insert(key)
    # Kill shard 0's replica r1, keep serving, then heal: the engine's
    # idle maintenance pump re-admits it without any request touching it.
    partition(networks[0], "r1", seed=77)
    for i in range(20):
        engine.submit("insert", f"mid:{i}")
        oracle.insert(f"mid:{i}")
    engine.drain()
    heal(networks[0], "r1")
    engine.pump()                              # idle pump -> maintain()
    shard0 = fleet.shards[0]
    assert all(h["up"] and h["hint_depth"] == 0 for h in shard0.health())
    results = ShardBatcher(fleet).query_many(keys)
    assert results == [oracle.query(key) for key in keys]
    report = engine.close()
    assert report["drained"] == 0


def test_remote_only_fleet_still_routes_blocked():
    # A fleet whose every replica lives behind the wire has no local
    # filter to introspect, so replicated_fleet hands the router its
    # blocked family explicitly — keeping answers bit-identical to the
    # unsharded oracle even under heavy counter collisions (canonical-key
    # fallback routing would split collision neighborhoods across shards
    # and diverge here).
    import random
    network = FaultyNetwork()

    def factory(s: int, r: int):
        return RemoteShard(ShardServer(make_handle()), network, "coord",
                           f"s{s}r{r}")

    fleet = replicated_fleet(2, M, K, rf=2, seed=SEED,
                             replica_factory=factory)
    oracle = make_filter()
    rng = random.Random(13)
    keys = [f"c:{rng.randrange(1 << 16)}" for _ in range(600)]
    for key in keys:
        count = 1 + rng.randrange(3)
        fleet.insert(key, count)
        oracle.insert(key, count)
    family = oracle.family
    for key in keys + ["miss:a", "miss:b"]:
        assert fleet.shard_of(key) == family.block_of(key) % 2
        assert fleet.query(key) == oracle.query(key)


def test_hint_log_orders_and_resumes(tmp_path):
    log = HintLog(str(tmp_path / "r.hints"))
    log.append("insert", "a", 2)
    log.append("set", "b", 7)
    log.append_many("insert", ["c", "d"], [1, 1])
    assert len(log) == 4
    seen = []

    def apply(verb, key, count):
        if key == "d":
            raise DeliveryFailed("died mid-handoff", ChannelStats())
        seen.append((verb, key, count))

    with pytest.raises(DeliveryFailed):
        log.drain(apply)
    assert seen == [("insert", "a", 2), ("set", "b", 7),
                    ("insert", "c", 1)]
    assert len(log) == 1                       # resumes where it stopped
    log.close()
    revived = HintLog(str(tmp_path / "r.hints"))
    assert len(revived) == 1
    landed = []
    revived.drain(lambda *hint: landed.append(hint))
    assert landed == [("insert", "d", 1)]
    revived.close()


def test_replica_set_validations():
    with pytest.raises(ValueError, match="at least one"):
        ReplicaSet([])
    with pytest.raises(ValueError, match="eject_after"):
        ReplicaSet([make_handle()], eject_after=0)
    with pytest.raises(ValueError, match="names"):
        ReplicaSet([make_handle()], names=["a", "b"])
    with pytest.raises(ValueError, match="rf"):
        replicated_fleet(2, M, K, rf=0)


# -- coordinator crash during handoff (drain vs. crash) ----------------------
#
# HintLog.drain resyncs its WAL after handing hints off; a coordinator
# crash inside that resync must never lose an undrained hint.  The resync
# is temp-file + rename, so every kill point leaves one of two states:
# the OLD log (a superset — the drained prefix re-applies on restart, the
# at-least-once side the convergence proof flags) or the NEW log (exactly
# the still-pending hints).  The sweep below drives a crash at every byte
# count, fsync ordinal, and both sides of the rename.

def _drain_kill_points():
    points = [{"crash_on_fsync": n} for n in range(1, 5)]
    points += [{"crash_before_replace": 1}, {"crash_after_replace": 1}]
    points += [{"crash_after_bytes": b} for b in range(0, 260, 13)]
    return points


@pytest.mark.parametrize("kill", _drain_kill_points(),
                         ids=lambda k: "-".join(f"{n}={v}"
                                                for n, v in k.items()))
def test_hint_log_drain_crash_never_loses_a_pending_hint(tmp_path, kill):
    from repro.persist.crashsim import CrashIO, SimulatedCrash

    path = str(tmp_path / "r.hints")
    hints = [("insert", f"k{i}", i + 1) for i in range(6)]
    log = HintLog(path)
    for hint in hints:
        log.append(*hint)
    log.close()

    crashing = HintLog(path, io=CrashIO(**kill))
    applied = []

    def apply(verb, key, count):
        if key == "k4":                        # replica dies mid-handoff
            raise DeliveryFailed("replica died", ChannelStats())
        applied.append((verb, key, count))

    # The drain lands 4 hints, the failing 5th aborts it, and the WAL
    # resync in the finally block crashes at the configured kill point
    # (or survives, when the kill point lies beyond the resync's work).
    with pytest.raises((DeliveryFailed, SimulatedCrash)):
        crashing.drain(apply)
    assert applied == hints[:4]

    # "Restart the coordinator": recover the queue from disk, healthy IO.
    revived = HintLog(path)
    recovered = []
    revived.drain(lambda *hint: recovered.append(hint))
    revived.close()
    # Never fewer than the undrained hints, never anything but a suffix
    # of the original queue (the superset case re-applies the drained
    # prefix — at-least-once, converged later by the total-count proof
    # and repair; the clean case is exactly the two undrained hints).
    assert len(recovered) >= 2
    assert recovered == hints[-len(recovered):]


def test_crashed_handoff_double_apply_is_caught_and_repaired(tmp_path):
    from repro.persist.crashsim import CrashIO, SimulatedCrash  # noqa: F401

    handles = [make_handle() for _ in range(3)]
    flaky = [FlakyReplica(h) for h in handles]
    rset = ReplicaSet(flaky, hint_dir=str(tmp_path), probe_every=10_000)
    for key in workload(40):
        rset.insert(key)
    flaky[1].down = True
    for i in range(10):
        rset.insert(f"hinted:{i}", 2)
    rset.close()

    # A new coordinator drains the recovered hints, but crashes before
    # the resync's rename lands — the old WAL (already handed off in
    # full) survives as a superset.
    flaky[1].down = False
    crashing = ReplicaSet(flaky, hint_dir=str(tmp_path),
                          io=CrashIO(crash_before_replace=1),
                          probe_every=10_000)
    assert crashing.tick() == 0               # probe died mid-resync

    # Restart again, healthy disk: the recovered hints re-apply — the
    # double-apply — so the convergence proof must refuse re-admission
    # and flag the replica for anti-entropy.
    rset2 = ReplicaSet(flaky, hint_dir=str(tmp_path), probe_every=10_000)
    assert {h["replica"]: h
            for h in rset2.health()}["r1"]["hint_depth"] == 10
    rset2.tick()
    health = {h["replica"]: h for h in rset2.health()}
    assert health["r1"]["needs_repair"] is True
    # Quorum reads never touch the diverged replica: still oracle-exact.
    assert rset2.query("hinted:0") == 2
    report = rset2.repair()
    assert report.converged
    assert all(h["up"] and not h["needs_repair"] for h in rset2.health())
    assert_replicas_identical(rset2)
    assert rset2.query("hinted:0") == 2
    rset2.close()
