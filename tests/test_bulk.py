"""Differential sweep: bulk operations are bit-identical to scalar ones.

The bulk API's contract (DESIGN.md §8) is strict: for every method,
backend, and hash family, ``insert_many`` / ``delete_many`` / ``query_many``
must leave the filter in **exactly** the state the equivalent scalar loop
produces — counters, total counts, the Recurring Minimum secondary and
marker, even the trapping refinement's trap table.  These tests drive a
seeded mixed-type workload through both paths and compare full state.

The sweep is the safety net for the kernels' exactness arguments
(``repro/core/kernels.py`` module docstring): conflict-free segmentation
for Minimal Increase, aggregated scatters for Minimum Selection, and the
marker-time reconstruction for Recurring Minimum.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import observed_add_kernel, sequential_observed
from repro.core.sbf import SpectralBloomFilter
from repro.storage.backends import NumpyBackend

METHODS = ["ms", "mi", "rm", "trm"]
BACKENDS = ["array", "numpy", "compact", "stream"]
FAMILIES = ["modmul", "multiply-shift", "tabulation", "double", "blocked"]

M, K = 512, 4


def mixed_keys(rng: random.Random, n: int) -> list:
    """Ints (vectorised hash path), strings and bytes (digest path)."""
    keys = []
    for _ in range(n):
        r = rng.random()
        if r < 0.45:
            keys.append(rng.randrange(1 << 44))
        elif r < 0.60:
            keys.append(-rng.randrange(1 << 20))      # negative ints
        elif r < 0.85:
            keys.append(f"key-{rng.randrange(400)}")
        else:
            keys.append(bytes([rng.randrange(256)]))
    # Force duplicates so MI segmentation and RM recurrence trigger.
    keys.extend(rng.choices(keys, k=n // 2))
    rng.shuffle(keys)
    return keys


def full_state(sbf: SpectralBloomFilter) -> list:
    """Everything observable: counters, totals, RM/TRM side structures."""
    state = [list(sbf.counters), sbf.total_count]
    method = sbf.method
    if getattr(method, "secondary", None) is not None:
        state.append(list(method.secondary.counters))
        state.append(method.secondary.total_count)
    if getattr(method, "marker", None) is not None:
        state.append(list(method.marker.bits._words))
        state.append(method.marker.n_added)
    if hasattr(method, "_traps"):
        state.append({i: (t.owner, t.budget)
                      for i, t in method._traps.items()})
        state.append(method.trap_fires)
    return state


def build_pair(method, backend, family, seed=3):
    make = lambda: SpectralBloomFilter(M, K, method=method, backend=backend,
                                       hash_family=family, seed=seed)
    return make(), make()


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bulk_equals_scalar_across_backends(method, backend):
    rng = random.Random(hash((method, backend)) & 0xFFFF)
    scalar, bulk = build_pair(method, backend, "modmul")
    keys = mixed_keys(rng, 400)
    counts = [rng.randrange(1, 6) for _ in keys]
    for key, count in zip(keys, counts):
        scalar.insert(key, count)
    bulk.insert_many(keys, counts)
    assert full_state(scalar) == full_state(bulk)

    probes = keys[:200] + ["never", -99999, b"\xff"]
    assert [scalar.query(p) for p in probes] \
        == bulk.query_many(probes).tolist()

    deletions = keys[::3]
    for key in deletions:
        scalar.delete(key, 1)
    bulk.delete_many(deletions)
    assert full_state(scalar) == full_state(bulk)


@pytest.mark.parametrize("family", FAMILIES)
def test_bulk_equals_scalar_across_hash_families(family):
    rng = random.Random(hash(family) & 0xFFFF)
    for method in ("ms", "mi", "rm"):
        scalar, bulk = build_pair(method, "numpy", family)
        keys = mixed_keys(rng, 300)
        for key in keys:
            scalar.insert(key)
        bulk.insert_many(keys)
        assert full_state(scalar) == full_state(bulk), (method, family)
        probes = list(dict.fromkeys(keys))[:150]
        assert [scalar.query(p) for p in probes] \
            == bulk.query_many(probes).tolist(), (method, family)


def test_numpy_array_keys_and_broadcast_counts():
    scalar, bulk = build_pair("ms", "numpy", "modmul")
    keys = np.arange(500, dtype=np.int64) % 97
    bulk.insert_many(keys, 3)
    for key in keys.tolist():
        scalar.insert(key, 3)
    assert full_state(scalar) == full_state(bulk)
    assert bulk.query_many(np.arange(10)).tolist() \
        == [scalar.query(i) for i in range(10)]


def test_counts_validation():
    sbf = SpectralBloomFilter(M, K, method="ms", backend="numpy", seed=1)
    with pytest.raises(ValueError, match="count must be >= 0"):
        sbf.insert_many([1, 2], [1, -1])
    with pytest.raises(ValueError, match="expected 2 counts"):
        sbf.insert_many([1, 2], [1, 2, 3])
    sbf.insert_many([], [])
    assert sbf.total_count == 0
    assert sbf.query_many([]).tolist() == []


def test_zero_counts_are_skipped_like_scalar():
    scalar, bulk = build_pair("rm", "numpy", "modmul")
    keys = ["a", "b", "c", "a"]
    counts = [2, 0, 1, 0]
    for key, count in zip(keys, counts):
        scalar.insert(key, count)
    bulk.insert_many(keys, counts)
    assert full_state(scalar) == full_state(bulk)


def test_bulk_delete_underflow_matches_scalar():
    scalar, bulk = build_pair("ms", "numpy", "modmul")
    scalar.insert("x", 2)
    bulk.insert_many(["x"], [2])
    with pytest.raises(ValueError):
        scalar.delete("x", 5)
    with pytest.raises(ValueError):
        bulk.delete_many(["x"], [5])
    # All-or-nothing on array backends: the failed batch changed nothing.
    assert full_state(scalar) == full_state(bulk)


def test_update_and_from_counts_route_through_bulk():
    scalar = SpectralBloomFilter(M, K, method="ms", backend="numpy", seed=2)
    histogram = {f"item-{i}": (i % 5) + 1 for i in range(200)}
    for key, count in histogram.items():
        scalar.insert(key, count)
    via_update = SpectralBloomFilter(M, K, method="ms", backend="numpy",
                                     seed=2)
    via_update.update(histogram)
    assert full_state(scalar) == full_state(via_update)
    via_counts = SpectralBloomFilter.from_counts(
        histogram, method="ms", backend="numpy", seed=2)
    sized = SpectralBloomFilter.for_items(len(histogram), method="ms",
                                          backend="numpy", seed=2)
    for key, count in histogram.items():
        sized.insert(key, count)
    assert list(sized.counters) == list(via_counts.counters)


@pytest.mark.parametrize("backend", BACKENDS)
def test_rm_interleaved_batches_full_state_sweep(backend):
    """The vectorised RM path under its hardest workload: heavy recurrence.

    Several rounds of interleaved bulk inserts and deletes on a small key
    universe (so almost every key becomes a recurring minimum), checking
    the *entire* observable state after every round — primary counters,
    secondary MS counters and total, marker bit words and ``n_added``.
    """
    rng = random.Random(hash(backend) & 0xFFFF)
    scalar, bulk = build_pair("rm", backend, "modmul", seed=7)
    universe = [rng.randrange(60) for _ in range(30)] \
        + [f"hot-{i}" for i in range(20)] + [b"a", b"b", None, True, 2.5]
    for round_no in range(4):
        keys = rng.choices(universe, k=300)
        counts = [rng.randrange(1, 5) for _ in keys]
        for key, count in zip(keys, counts):
            scalar.insert(key, count)
        bulk.insert_many(keys, counts)
        assert full_state(scalar) == full_state(bulk), (backend, round_no)
        deletions = keys[:: 2 + round_no]
        for key in deletions:
            scalar.delete(key, 1)
        bulk.delete_many(deletions)
        assert full_state(scalar) == full_state(bulk), (backend, round_no)
        probes = universe + [f"cold-{i}" for i in range(25)]
        assert [scalar.query(p) for p in probes] \
            == bulk.query_many(probes).tolist(), (backend, round_no)
    marker = bulk.method.marker
    assert marker.n_added > 0          # recurrence actually triggered
    assert any(marker.bits.get_bit(i) for i in range(marker.bits.nbits))


_ROWS = st.integers(0, 24)
_K = st.integers(1, 5)
_M = st.integers(4, 48)


@settings(max_examples=120, deadline=None)
@given(st.data(), _ROWS, _K, _M, st.sampled_from([1, -1]))
def test_observed_add_kernel_matches_scalar_stream(data, n, k, m, sign):
    """Property: the one-sort RM preamble IS the scalar add stream.

    For random position matrices (duplicates within and across rows) the
    kernel's observed matrix must equal, entry for entry, what sequential
    ``counters.add(pos, sign * count)`` calls return in row-major stream
    order — and leave the counter array in the identical final state.
    """
    matrix = np.array(
        data.draw(st.lists(
            st.lists(st.integers(0, m - 1), min_size=k, max_size=k),
            min_size=n, max_size=n)),
        dtype=np.int64).reshape(n, k)
    counts = np.array(
        data.draw(st.lists(st.integers(1, 7), min_size=n, max_size=n)),
        dtype=np.int64)
    prefill = int(counts.sum()) * k + 1 if sign < 0 else 0

    kernel = NumpyBackend(m, dtype=np.uint64)
    ref = NumpyBackend(m, dtype=np.uint64)
    if prefill:
        for i in range(m):
            kernel.set(i, prefill)
            ref.set(i, prefill)

    got = observed_add_kernel(kernel, matrix, counts, sign=sign)
    want = np.empty((n, k), dtype=np.int64)
    for j in range(n):
        for l in range(k):
            want[j, l] = ref.add(int(matrix[j, l]), sign * int(counts[j]))
    assert got.tolist() == want.tolist()
    assert list(kernel) == list(ref)


@settings(max_examples=120, deadline=None)
@given(st.data(), _ROWS, _K, _M)
def test_sequential_observed_matches_simulation(data, n, k, m):
    """Property: segment-grouped running sums == a literal replay.

    Mixed-sign per-entry deltas force the group-id gather fallback; the
    replay applies each delta to a dict in stream order and records the
    post-add value, which is the function's contract.
    """
    flat = np.array(
        data.draw(st.lists(st.integers(0, m - 1),
                           min_size=n * k, max_size=n * k)),
        dtype=np.int64)
    deltas = np.array(
        data.draw(st.lists(st.integers(-6, 6),
                           min_size=n * k, max_size=n * k)),
        dtype=np.int64)
    start = np.array(
        data.draw(st.lists(st.integers(0, 50),
                           min_size=n * k, max_size=n * k)),
        dtype=np.int64)
    # start must be consistent per counter (it is one gather in the
    # caller): collapse to the first drawn value for each position.
    first = {}
    for i, pos in enumerate(flat.tolist()):
        first.setdefault(pos, int(start[i]))
        start[i] = first[pos]

    got = sequential_observed(flat, deltas, start, n, k)
    state = dict(first)
    want = []
    for pos, delta in zip(flat.tolist(), deltas.tolist()):
        state[pos] += int(delta)
        want.append(state[pos])
    assert got.ravel().tolist() == want


def test_rm_without_marker_falls_back_exactly():
    make = lambda: SpectralBloomFilter(
        M, K, method="rm", backend="numpy", seed=4,
        method_options={"use_marker": False})
    scalar, bulk = make(), make()
    rng = random.Random(5)
    keys = mixed_keys(rng, 250)
    for key in keys:
        scalar.insert(key)
    bulk.insert_many(keys)
    assert full_state(scalar) == full_state(bulk)
    probes = list(dict.fromkeys(keys))[:100]
    assert [scalar.query(p) for p in probes] \
        == bulk.query_many(probes).tolist()
