"""Tests for the 'steps' small-counter encoding of paper §4.5."""

import pytest
from hypothesis import given, strategies as st

from repro.succinct.bitvector import BitReader, BitWriter
from repro.succinct.elias import EliasCodec
from repro.succinct.steps import StepsCodec


def roundtrip(codec, v):
    pattern, nbits = codec.encode(v)
    writer = BitWriter()
    writer.write_bits(pattern, nbits)
    return codec.decode(BitReader(writer.vector))


class TestPaperExample:
    """§4.5: '0 to represent 0, 10 to represent 1 and 11 means bigger'."""

    def setup_method(self):
        self.codec = StepsCodec((0, 0))

    def test_zero_is_one_bit(self):
        pattern, nbits = self.codec.encode(0)
        assert (pattern, nbits) == (0b0, 1)

    def test_one_is_two_bits(self):
        pattern, nbits = self.codec.encode(1)
        assert nbits == 2
        assert [pattern >> i & 1 for i in range(2)] == [1, 0]

    def test_larger_values_escape_to_elias(self):
        pattern, nbits = self.codec.encode(5)
        # Escape prefix "11" then Elias.
        assert pattern & 0b11 == 0b11
        assert nbits > 2

    def test_average_cost_for_almost_set(self):
        """§4.5: for data where most counters are 0 or 1 in equal shares the
        steps method averages 1.5 bits/counter vs Elias' 2.5."""
        steps_avg = (self.codec.length(0) + self.codec.length(1)) / 2
        elias = EliasCodec()
        elias_avg = (elias.length(0) + elias.length(1)) / 2
        assert steps_avg == 1.5
        assert elias_avg == 2.5

    @given(st.integers(0, 10**6))
    def test_roundtrip(self, v):
        assert roundtrip(self.codec, v) == v


class TestConfigurations:
    def test_config_1_2_covers_documented_ranges(self):
        codec = StepsCodec((1, 2))
        # "0"+1 bit covers {0,1}: 2 bits each.
        assert codec.length(0) == 2
        assert codec.length(1) == 2
        # "10"+2 bits covers {2..5}: 4 bits each.
        for v in (2, 3, 4, 5):
            assert codec.length(v) == 4
        # 6 and above escape: "11" + elias(v - 6 + 1).
        assert codec.length(6) == 2 + 1  # elias delta of 1 is a single bit
        assert codec.length(100) == 2 + EliasCodec().length(100 - 6)

    def test_config_2_3(self):
        codec = StepsCodec((2, 3))
        for v in range(4):
            assert codec.length(v) == 3
        for v in range(4, 12):
            assert codec.length(v) == 5

    def test_name(self):
        assert StepsCodec((1, 2)).name == "steps(1,2)"

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            StepsCodec(())

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            StepsCodec((1, -1))

    def test_negative_value_rejected(self):
        codec = StepsCodec((1, 2))
        with pytest.raises(ValueError):
            codec.encode(-1)
        with pytest.raises(ValueError):
            codec.length(-1)

    @given(st.sampled_from([(0, 0), (1, 2), (2, 3), (1,), (3, 3, 3)]),
           st.integers(0, 10**6))
    def test_roundtrip_all_configs(self, widths, v):
        codec = StepsCodec(widths)
        assert roundtrip(codec, v) == v

    @given(st.sampled_from([(0, 0), (1, 2), (2, 3)]),
           st.lists(st.integers(0, 5000), min_size=1, max_size=40))
    def test_stream_is_self_delimiting(self, widths, values):
        codec = StepsCodec(widths)
        writer = BitWriter()
        for v in values:
            pattern, nbits = codec.encode(v)
            assert nbits == codec.length(v)
            writer.write_bits(pattern, nbits)
        reader = BitReader(writer.vector)
        assert [codec.decode(reader) for _ in values] == values

    def test_steps_beats_elias_for_small_values(self):
        """§4.5's motivation: 1 costs 4 bits under Elias but 2 under steps;
        0 costs 1 bit under both."""
        steps = StepsCodec((0, 0))
        elias = EliasCodec()
        assert steps.length(0) == elias.length(0) == 1
        assert steps.length(1) == 2
        assert elias.length(1) == 4
