"""Tests for the Bloom-parameter math of §2.1."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.params import (
    bloom_error,
    bloom_error_from_gamma,
    gamma,
    m_for_gamma,
    optimal_k,
    optimal_m,
    recommended_parameters,
)


class TestBloomError:
    def test_paper_c8_example(self):
        """§2.1: for m = 8n the optimal error is 'slightly larger than 2%'."""
        n = 1000
        m = 8 * n
        k = optimal_k(m, n)
        err = bloom_error(n, k, m)
        assert 0.02 < err < 0.026

    def test_error_rate_formula(self):
        """E_b = (0.6185)^(m/n) at the optimal k."""
        n, m = 1000, 10_000
        k = optimal_k(m, n)
        assert bloom_error(n, k, m) == pytest.approx(0.6185 ** (m / n),
                                                     rel=0.05)

    def test_zero_items_zero_error(self):
        assert bloom_error(0, 5, 100) == 0.0

    def test_exact_close_to_approximation(self):
        approx = bloom_error(500, 5, 5000)
        exact = bloom_error(500, 5, 5000, exact=True)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bloom_error(10, 0, 100)
        with pytest.raises(ValueError):
            bloom_error(10, 5, 0)
        with pytest.raises(ValueError):
            bloom_error(-1, 5, 100)

    def test_gamma_form_matches(self):
        n, k, m = 1000, 5, 7000
        assert bloom_error_from_gamma(gamma(n, k, m), k) == pytest.approx(
            bloom_error(n, k, m))

    def test_table1_bloom_errors(self):
        """Table 1's Eb column: gamma=0.7 -> 0.032, gamma=1 -> 0.101."""
        assert bloom_error_from_gamma(0.7 * 5, 5) != 0  # sanity on call form
        # gamma in the paper is per-table nk/m; Eb = (1 - e^-gamma)^k.
        assert bloom_error_from_gamma(0.7, 5) == pytest.approx(0.032,
                                                               abs=0.002)
        assert bloom_error_from_gamma(1.0, 5) == pytest.approx(0.101,
                                                               abs=0.004)

    @given(st.integers(1, 10**6), st.integers(1, 12), st.integers(1, 10**7))
    def test_error_is_probability(self, n, k, m):
        assert 0.0 <= bloom_error(n, k, m) <= 1.0


class TestOptimalParameters:
    def test_optimal_k_near_ln2_ratio(self):
        assert optimal_k(10_000, 1000) in (6, 7)  # ln2*10 = 6.93

    def test_optimal_k_at_least_one(self):
        assert optimal_k(10, 1000) == 1

    def test_optimal_k_minimises_error(self):
        n, m = 1000, 9000
        best = optimal_k(m, n)
        err = bloom_error(n, best, m)
        for k in range(1, 15):
            assert err <= bloom_error(n, k, m) + 1e-12

    def test_optimal_m_achieves_error(self):
        n, eps = 5000, 0.01
        m = optimal_m(n, eps)
        k = optimal_k(m, n)
        assert bloom_error(n, k, m) <= eps * 1.05

    def test_optimal_m_invalid(self):
        with pytest.raises(ValueError):
            optimal_m(0, 0.01)
        with pytest.raises(ValueError):
            optimal_m(100, 1.5)

    def test_recommended_parameters(self):
        m, k = recommended_parameters(1000, 0.01)
        assert m > 0 and k > 0
        assert bloom_error(1000, k, m) <= 0.011

    def test_optimal_gamma_is_ln2(self):
        """§2.1: 'in the optimal case, gamma = ln(2) ~= 0.7'."""
        n = 1000
        m = optimal_m(n, 0.01)
        k = optimal_k(m, n)
        assert gamma(n, k, m) == pytest.approx(math.log(2), rel=0.1)


class TestSizing:
    def test_m_for_gamma_roundtrip(self):
        n, k = 1000, 5
        for g in (0.12, 0.5, 0.7, 1.0, 2.0):
            m = m_for_gamma(n, k, g)
            assert gamma(n, k, m) == pytest.approx(g, rel=0.02)

    def test_m_for_gamma_invalid(self):
        with pytest.raises(ValueError):
            m_for_gamma(1000, 5, 0)
