"""Tests for the §3.1.1 variance analysis and the [Mit01] compressed
Bloom filter sizing."""

import math

import pytest

from repro.analysis.compressed import (
    best_configuration,
    classic_configuration,
    compressed_size,
    entropy_bits,
    fill_probability,
)
from repro.analysis.variance import (
    boosting_is_practical,
    counter_error_variance,
    max_supported_total,
    median_failure_probability,
    required_group_size,
    required_groups,
)


class TestVarianceAnalysis:
    def test_variance_matches_expected_error(self):
        """§3.1.1: 'the variance almost equals the expected size of the
        error' (N - f_x) k / m."""
        assert counter_error_variance(10_000, 100, 5, 7000) == \
            pytest.approx((10_000 - 100) * 5 / 7000)

    def test_paper_k2_example(self):
        """'For error of 0.1, this gives a k2 of 55'."""
        assert required_groups(0.1) == 56 or required_groups(0.1) == 55
        # ceil(24 * ln 10) = ceil(55.26) = 56; the paper rounds down.
        assert math.isclose(24 * math.log(10), 55.26, abs_tol=0.01)

    def test_paper_t4_example(self):
        """'If, for example, we allow t = 4, N cannot exceed 4m'."""
        m = 1000
        assert max_supported_total(m, 4.0) == pytest.approx(4 * m)

    def test_group_size_formula(self):
        # k1 = 4 N k / (m t^2)
        assert required_group_size(1000, 5, 1000, 2.0) == pytest.approx(5.0)

    def test_median_failure_probability(self):
        """P(median off) < e^(-k2/24)."""
        assert median_failure_probability(24) == pytest.approx(math.exp(-1))
        assert median_failure_probability(56) < 0.1

    def test_boosting_impractical_for_realistic_filters(self):
        """The section's conclusion, as an executable assertion."""
        # n=1000 items, M=100k stream, gamma=0.7 filter with k=5.
        assert not boosting_is_practical(100_000, 5, 7143)

    def test_validation(self):
        with pytest.raises(ValueError):
            counter_error_variance(10, 100, 5, 100)
        with pytest.raises(ValueError):
            counter_error_variance(100, 1, 0, 100)
        with pytest.raises(ValueError):
            required_groups(0.0)
        with pytest.raises(ValueError):
            required_group_size(100, 5, 100, 0)
        with pytest.raises(ValueError):
            max_supported_total(0, 1)
        with pytest.raises(ValueError):
            max_supported_total(10, 0)
        with pytest.raises(ValueError):
            median_failure_probability(0)


class TestCompressedBloom:
    def test_fill_probability(self):
        assert fill_probability(0, 5, 100) == 0.0
        assert 0 < fill_probability(100, 5, 1000) < 1

    def test_entropy_extremes(self):
        assert entropy_bits(100, 0.0) == 0.0
        assert entropy_bits(100, 1.0) == 0.0
        assert entropy_bits(100, 0.5) == pytest.approx(100.0)

    def test_optimal_filter_is_incompressible(self):
        """[Mit01]/§1.1.3: at the space-optimal point p = 0.5, compression
        buys nothing."""
        n = 1000
        m = 10_000
        k = round(math.log(2) * m / n)
        p = fill_probability(n, k, m)
        assert p == pytest.approx(0.5, abs=0.02)
        assert compressed_size(n, k, m) == pytest.approx(m, rel=0.01)

    def test_compressed_optimum_beats_classic_at_equal_wire_size(self):
        """The [Mit01] headline: for the same transmitted bits, a larger
        sparser local filter has a lower false-positive rate."""
        n = 1000
        budget = 8000
        _classic_k, classic_rate = classic_configuration(n, budget)
        m, k, rate = best_configuration(n, budget)
        assert compressed_size(n, k, m) <= budget
        assert rate < classic_rate
        assert m > budget           # locally larger...
        assert k < _classic_k       # ...with fewer hash functions

    def test_budget_respected(self):
        m, k, _rate = best_configuration(500, 4000)
        assert compressed_size(500, k, m) <= 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            fill_probability(10, 0, 100)
        with pytest.raises(ValueError):
            entropy_bits(10, 1.5)
        with pytest.raises(ValueError):
            best_configuration(100, 0)
        with pytest.raises(ValueError):
            best_configuration(0, 100)

    def test_matches_live_filter_entropy(self):
        """The analytic compressed size tracks a real filter's
        compressed_bits()."""
        from repro import BloomFilter
        n, m, k = 800, 12_000, 3
        bf = BloomFilter(m, k, seed=2)
        bf.update(range(n))
        assert bf.compressed_bits() == pytest.approx(
            compressed_size(n, k, m), rel=0.05)
