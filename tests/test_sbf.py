"""Core tests for the SpectralBloomFilter shell: construction, queries,
multiset algebra, storage accounting, backends."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import SpectralBloomFilter

METHODS = ["ms", "mi", "rm", "trm"]


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpectralBloomFilter(0, 5)
        with pytest.raises(ValueError):
            SpectralBloomFilter(100, 0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            SpectralBloomFilter(100, 3, method="nope")

    def test_for_items_sizes_reasonably(self):
        sbf = SpectralBloomFilter.for_items(1000, 0.01)
        assert sbf.m >= 1000
        assert 1 <= sbf.k <= 15

    def test_from_counts(self):
        counts = {"a": 3, "b": 1, "c": 7}
        sbf = SpectralBloomFilter.from_counts(counts, seed=1)
        for key, f in counts.items():
            assert sbf.query(key) >= f

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_construct(self, method):
        sbf = SpectralBloomFilter(500, 4, method=method, seed=2)
        sbf.insert("x")
        assert sbf.query("x") >= 1

    def test_method_instance_rejected(self):
        sbf = SpectralBloomFilter(100, 3)
        with pytest.raises(TypeError):
            SpectralBloomFilter(100, 3, method=sbf.method)

    def test_method_by_class(self):
        from repro.core.methods import MinimalIncrease
        sbf = SpectralBloomFilter(100, 3, method=MinimalIncrease)
        assert sbf.method.name == "mi"


class TestBasicSemantics:
    @pytest.mark.parametrize("method", METHODS)
    def test_counts_single_item(self, method):
        sbf = SpectralBloomFilter(1000, 5, method=method, seed=7)
        for _ in range(12):
            sbf.insert("item")
        assert sbf.query("item") == 12

    @pytest.mark.parametrize("method", METHODS)
    def test_bulk_count_equals_iterated(self, method):
        a = SpectralBloomFilter(1000, 5, method=method, seed=7)
        b = SpectralBloomFilter(1000, 5, method=method, seed=7)
        a.insert("x", 9)
        for _ in range(9):
            b.insert("x")
        assert a.query("x") == b.query("x") == 9

    @pytest.mark.parametrize("method", ["ms", "mi", "rm"])
    def test_no_false_negatives_on_inserts(self, method):
        """The overestimate invariant f̂ >= f (Claim 1 / Claim 4)."""
        rng = random.Random(11)
        sbf = SpectralBloomFilter(4000, 5, method=method, seed=3)
        truth: dict[int, int] = {}
        for _ in range(3000):
            x = rng.randrange(600)
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        for x, f in truth.items():
            assert sbf.query(x) >= f

    def test_trm_false_negatives_are_rare(self):
        """§3.3.1 concedes the trapping correction 'does not cover all
        possible cases'; over-correction can undershoot, but only rarely."""
        rng = random.Random(11)
        sbf = SpectralBloomFilter(4000, 5, method="trm", seed=3)
        truth: dict[int, int] = {}
        for _ in range(3000):
            x = rng.randrange(600)
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        negatives = sum(1 for x, f in truth.items() if sbf.query(x) < f)
        assert negatives / len(truth) < 0.02

    @pytest.mark.parametrize("method", METHODS)
    def test_absent_items_mostly_zero(self, method):
        sbf = SpectralBloomFilter(8000, 5, method=method, seed=3)
        for x in range(500):
            sbf.insert(x)
        false_positives = sum(
            1 for x in range(10_000, 10_500) if sbf.query(x) > 0)
        assert false_positives <= 5   # E_b is tiny at this load

    def test_contains_thresholds(self):
        sbf = SpectralBloomFilter(1000, 5, seed=5)
        sbf.insert("hot", 10)
        sbf.insert("cold", 1)
        assert sbf.contains("hot", threshold=10)
        assert not sbf.contains("cold", threshold=2)
        assert "hot" in sbf
        assert "never" not in sbf

    def test_contains_invalid_threshold(self):
        sbf = SpectralBloomFilter(100, 3)
        with pytest.raises(ValueError):
            sbf.contains("x", threshold=-1)

    def test_insert_count_zero_is_noop(self):
        sbf = SpectralBloomFilter(100, 3, seed=1)
        sbf.insert("x", 0)
        assert sbf.total_count == 0
        assert sbf.query("x") == 0

    def test_insert_negative_count_raises(self):
        sbf = SpectralBloomFilter(100, 3)
        with pytest.raises(ValueError):
            sbf.insert("x", -1)
        with pytest.raises(ValueError):
            sbf.delete("x", -1)

    def test_update_mapping_and_iterable(self):
        sbf = SpectralBloomFilter(1000, 4, seed=2)
        sbf.update({"a": 2, "b": 3})
        sbf.update(["a", "c"])
        assert sbf.query("a") >= 3
        assert sbf.query("b") >= 3
        assert sbf.query("c") >= 1
        assert sbf.total_count == 7


class TestDeletions:
    @pytest.mark.parametrize("method", ["ms", "rm", "trm"])
    def test_insert_delete_roundtrip(self, method):
        """§2.2: deleting reverses inserting; untouched items keep f̂ >= f."""
        rng = random.Random(23)
        sbf = SpectralBloomFilter(4000, 5, method=method, seed=5)
        truth: dict[int, int] = {}
        for _ in range(2000):
            x = rng.randrange(400)
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        victims = [x for x in truth if x % 3 == 0]
        for x in victims:
            sbf.delete(x, truth[x])
            truth[x] = 0
        for x, f in truth.items():
            assert sbf.query(x) >= f

    def test_ms_delete_to_zero(self):
        sbf = SpectralBloomFilter(500, 4, seed=1)
        sbf.insert("x", 5)
        sbf.delete("x", 5)
        assert sbf.query("x") == 0
        assert sbf.total_count == 0

    def test_mi_deletions_can_create_false_negatives(self):
        """§3.2: MI + deletions is the documented failure mode (Figure 8)."""
        rng = random.Random(1)
        sbf = SpectralBloomFilter(300, 5, method="mi", seed=1)
        truth: dict[int, int] = {}
        stream = [rng.randrange(80) for _ in range(2000)]
        for x in stream:
            truth[x] = truth.get(x, 0) + 1
            sbf.insert(x)
        for x in list(truth)[:40]:
            sbf.delete(x, truth.pop(x))
        negatives = sum(1 for x, f in truth.items() if sbf.query(x) < f)
        assert negatives > 0

    def test_delete_count_zero_is_noop(self):
        sbf = SpectralBloomFilter(100, 3, seed=1)
        sbf.insert("x", 2)
        sbf.delete("x", 0)
        assert sbf.query("x") == 2


class TestAlgebra:
    def test_union_adds_counts(self):
        a = SpectralBloomFilter(800, 4, seed=13)
        b = SpectralBloomFilter(800, 4, seed=13)
        a.update({"x": 2, "y": 1})
        b.update({"x": 5, "z": 4})
        u = a + b
        assert u.query("x") >= 7
        assert u.query("y") >= 1
        assert u.query("z") >= 4
        assert u.total_count == a.total_count + b.total_count

    def test_union_requires_compatibility(self):
        a = SpectralBloomFilter(800, 4, seed=13)
        b = SpectralBloomFilter(800, 4, seed=14)
        with pytest.raises(ValueError):
            a.union(b)
        c = SpectralBloomFilter(400, 4, seed=13)
        with pytest.raises(ValueError):
            a.union(c)

    def test_union_rm_merges_secondary(self):
        a = SpectralBloomFilter(800, 4, method="rm", seed=13)
        b = SpectralBloomFilter(800, 4, method="rm", seed=13)
        a.insert("x", 3)
        b.insert("x", 2)
        u = a + b
        assert u.query("x") >= 5
        assert u.method.name == "rm"

    def test_multiply_models_join(self):
        """§2.2: counter multiplication represents the equi-join."""
        a = SpectralBloomFilter(2000, 5, seed=17)
        b = SpectralBloomFilter(2000, 5, seed=17)
        a.update({"k1": 2, "k2": 1, "only_a": 5})
        b.update({"k1": 3, "k2": 4, "only_b": 9})
        j = a * b
        assert j.query("k1") >= 6      # 2 * 3 join tuples
        assert j.query("k2") >= 4
        assert j.query("only_a") == 0  # no partner -> filtered out w.h.p.
        assert j.query("only_b") == 0

    def test_multiply_requires_compatibility(self):
        a = SpectralBloomFilter(100, 3, seed=1)
        b = SpectralBloomFilter(100, 3, seed=2)
        with pytest.raises(ValueError):
            a * b

    def test_difference_inverts_union(self):
        """Batched sliding windows: (A + B) - B == A, counter for counter."""
        a = SpectralBloomFilter(500, 4, seed=19)
        b = SpectralBloomFilter(500, 4, seed=19)
        a.update({"x": 3, "y": 2})
        b.update({"x": 1, "z": 4})
        restored = (a + b) - b
        assert list(restored) == list(a)
        assert restored.total_count == a.total_count
        assert restored.query("x") >= 3

    def test_difference_rejects_non_submultiset(self):
        a = SpectralBloomFilter(500, 4, seed=19)
        b = SpectralBloomFilter(500, 4, seed=19)
        a.insert("x", 1)
        b.insert("x", 5)
        with pytest.raises(ValueError):
            a - b

    def test_difference_requires_compatibility(self):
        a = SpectralBloomFilter(500, 4, seed=19)
        c = SpectralBloomFilter(500, 4, seed=20)
        with pytest.raises(ValueError):
            a - c


class TestBackends:
    @pytest.mark.parametrize("backend", ["array", "compact", "stream"])
    def test_backends_agree(self, backend):
        """The §4 storage layers must not change any estimate."""
        rng = random.Random(5)
        reference = SpectralBloomFilter(600, 4, seed=9, backend="array")
        other = SpectralBloomFilter(600, 4, seed=9, backend=backend)
        for _ in range(800):
            x = rng.randrange(150)
            reference.insert(x)
            other.insert(x)
        for x in range(200):
            assert reference.query(x) == other.query(x)

    def test_compact_backend_storage_accounting(self):
        sbf = SpectralBloomFilter(512, 4, seed=9, backend="compact")
        for x in range(100):
            sbf.insert(x)
        assert sbf.storage_bits() > 0
        assert sbf.counters.storage_breakdown()["base_array"] > 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            SpectralBloomFilter(100, 3, backend="tape")


class TestDiagnostics:
    def test_gamma_and_expected_error(self):
        sbf = SpectralBloomFilter(1000, 5, seed=1)
        for x in range(140):
            sbf.insert(x)
        assert sbf.gamma == pytest.approx(140 * 5 / 1000)
        assert 0 <= sbf.expected_bloom_error(140) < 1

    def test_fill_ratio(self):
        sbf = SpectralBloomFilter(100, 2, seed=1)
        assert sbf.fill_ratio() == 0.0
        sbf.insert("x")
        assert sbf.fill_ratio() > 0.0

    def test_storage_bits_grow_with_content(self):
        sbf = SpectralBloomFilter(100, 3, seed=1)
        empty = sbf.storage_bits()
        sbf.insert("x", 1000)
        assert sbf.storage_bits() > empty

    def test_min_counter_is_the_ms_estimate(self):
        sbf = SpectralBloomFilter(300, 4, seed=2)
        sbf.insert("q", 9)
        assert sbf.min_counter("q") == sbf.query("q") == 9
        assert sbf.min_counter("absent") == 0

    def test_union_of_plain_methods_has_noop_merge(self):
        """merge_from is a no-op for MS/MI (no auxiliary state)."""
        a = SpectralBloomFilter(200, 3, method="mi", seed=4)
        b = SpectralBloomFilter(200, 3, method="mi", seed=4)
        a.insert("x", 2)
        b.insert("x", 3)
        u = a + b
        assert u.method.name == "mi"
        assert u.query("x") >= 5

    def test_iter_returns_counters(self):
        sbf = SpectralBloomFilter(50, 2, seed=1)
        sbf.insert("x", 3)
        values = list(sbf)
        assert len(values) == 50
        assert sum(values) == 6  # k=2 counters x count 3


class TestPropertyBased:
    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 10)),
                    min_size=1, max_size=120),
           st.sampled_from(["ms", "mi", "rm"]))
    def test_overestimate_invariant(self, ops, method):
        """For any insert-only workload, every estimate >= truth."""
        sbf = SpectralBloomFilter(700, 4, method=method, seed=21)
        truth: dict[int, int] = {}
        for key, count in ops:
            truth[key] = truth.get(key, 0) + count
            sbf.insert(key, count)
        for key, f in truth.items():
            assert sbf.query(key) >= f

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 5)),
                    min_size=1, max_size=80))
    def test_ms_delete_inverse(self, ops):
        """MS: inserting then deleting the same multiset empties the filter."""
        sbf = SpectralBloomFilter(500, 4, method="ms", seed=8)
        for key, count in ops:
            sbf.insert(key, count)
        for key, count in ops:
            sbf.delete(key, count)
        assert all(c == 0 for c in sbf)
        assert sbf.total_count == 0

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 6)),
                    min_size=1, max_size=60))
    def test_union_never_underestimates_sum(self, ops):
        a = SpectralBloomFilter(400, 3, seed=33)
        b = SpectralBloomFilter(400, 3, seed=33)
        truth: dict[int, int] = {}
        for idx, (key, count) in enumerate(ops):
            target = a if idx % 2 else b
            target.insert(key, count)
            truth[key] = truth.get(key, 0) + count
        u = a + b
        for key, f in truth.items():
            assert u.query(key) >= f
