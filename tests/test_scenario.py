"""The chaos-scenario harness (DESIGN.md §13).

Covers the whole pipeline: spec loading/validation (including the
dependency-free mini-YAML parser's parity with PyYAML where PyYAML is
installed), seeded workload generation, fault-schedule validation, the
bounding-pair oracle's envelope arithmetic and its soundness guards,
quick-mode scaling, and — the point of it all — every shipped seed
scenario running green under its fault schedule with zero wrong
answers, twice, byte-identically.
"""

import json

import pytest

from repro.scenario import (
    Op,
    OracleChecker,
    OracleViolation,
    ScenarioRunner,
    SEED_NAMES,
    SimClock,
    SpecError,
    WorkloadGenerator,
    build_topology,
    load_seed,
    load_spec,
    parse_simple_yaml,
    run_scenario,
    seed_path,
)
from repro.scenario.faults import FaultSchedule
from repro.scenario.oracle import ACKED, AMBIGUOUS, REFUSED
from repro.scenario.seeds import QUICK_FACTOR
from repro.serve import MetricsRegistry


def build(spec):
    clock = SimClock()
    return build_topology(spec, clock, MetricsRegistry(clock=clock))


def minimal_spec(**overrides) -> dict:
    document = {"name": "t", "phases": [{"name": "only", "ops": 40}]}
    document.update(overrides)
    return load_spec(document)


# --------------------------------------------------------------------------
# Spec loading and validation
# --------------------------------------------------------------------------

class TestSpec:
    def test_defaults_fill_in(self):
        spec = minimal_spec()
        assert spec["topology"]["kind"] == "sharded"
        assert spec["topology"]["method"] == "ms"
        assert spec["workload"]["arrival"]["pattern"] == "closed"
        assert spec["oracle"]["conservation"] is True
        assert spec["faults"] == []

    def test_unknown_top_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            load_spec({"name": "t", "phases": [{"name": "p", "ops": 1}],
                       "typo": 1})

    def test_unknown_topology_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            minimal_spec(topology={"shardz": 4})

    def test_bad_topology_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            minimal_spec(topology={"kind": "mainframe"})

    def test_mix_normalises_to_unit_sum(self):
        spec = minimal_spec(workload={"mix": {"insert": 2, "query": 2}})
        assert spec["workload"]["mix"] == {"insert": 0.5, "query": 0.5}

    def test_mix_unknown_verb_rejected(self):
        with pytest.raises(SpecError, match="unknown verb"):
            minimal_spec(workload={"mix": {"upsert": 1.0}})

    def test_phases_must_be_a_list(self):
        with pytest.raises(SpecError, match="phases"):
            load_spec({"name": "t", "phases": 5})

    def test_name_required(self):
        with pytest.raises(SpecError, match="name"):
            load_spec({"phases": [{"name": "p", "ops": 1}]})


class TestMiniYaml:
    TEXT = """\
# comment
name: demo
seed: 7
topology:
  kind: single   # trailing comment
  m: 8192
  durable: true
  breaker: null
workload:
  mix:
    insert: 0.5
    query: 0.5
phases:
  - name: a
    ops: 10
  - name: b
    ops: 20
faults:
  - at: 5
    action: deadline
    seconds: 0.25
"""

    def test_scalars_and_nesting(self):
        doc = parse_simple_yaml(self.TEXT)
        assert doc["seed"] == 7
        assert doc["topology"]["kind"] == "single"
        assert doc["topology"]["durable"] is True
        assert doc["topology"]["breaker"] is None
        assert doc["phases"][1] == {"name": "b", "ops": 20}
        assert doc["faults"][0]["seconds"] == 0.25

    def test_parity_with_pyyaml_on_seed_specs(self):
        yaml = pytest.importorskip("yaml")
        for name in SEED_NAMES:
            with open(seed_path(name), encoding="utf-8") as fh:
                text = fh.read()
            assert parse_simple_yaml(text) == yaml.safe_load(text), name


# --------------------------------------------------------------------------
# Workload generation
# --------------------------------------------------------------------------

class TestWorkload:
    def _stream(self, n=200, seed=11):
        spec = minimal_spec(workload={
            "mix": {"insert": 0.5, "delete": 0.2, "query": 0.2,
                    "contains": 0.1}})
        gen = WorkloadGenerator(spec["workload"], seed)
        ops = []
        for _ in range(n):
            op = gen.next_op(spec["workload"]["mix"])
            ops.append(op)
            if op.verb in ("insert", "delete"):
                gen.note_acked(op)
        return ops

    def test_deterministic(self):
        first = [(o.verb, o.key, o.count) for o in self._stream()]
        second = [(o.verb, o.key, o.count) for o in self._stream()]
        assert first == second

    def test_deletes_never_overdraw(self):
        live = {}
        for op in self._stream(400):
            if op.verb == "insert":
                live[op.key] = live.get(op.key, 0) + op.count
            elif op.verb == "delete":
                assert live.get(op.key, 0) >= op.count, op
                live[op.key] -= op.count

    def test_live_sample_tracks_positive_keys(self):
        spec = minimal_spec()
        gen = WorkloadGenerator(spec["workload"], 3)
        for _ in range(50):
            op = gen.next_op({"insert": 1.0})
            gen.note_acked(op)
        sample = gen.live_sample(10)
        assert 0 < len(sample) <= 10
        assert len(set(sample)) == len(sample)


# --------------------------------------------------------------------------
# Fault-schedule validation
# --------------------------------------------------------------------------

class TestFaultValidation:
    def _topology(self, **overrides):
        return build(minimal_spec(topology=overrides)
                     if overrides else minimal_spec())

    def test_unknown_action_rejected(self):
        topo = self._topology()
        try:
            with pytest.raises(SpecError, match="unknown action"):
                FaultSchedule([{"at": 1, "action": "meteor"}], topo)
        finally:
            topo.close()

    def test_trigger_exactly_one(self):
        topo = self._topology()
        try:
            with pytest.raises(SpecError, match="exactly one"):
                FaultSchedule([{"action": "heal"}], topo)
            with pytest.raises(SpecError, match="exactly one"):
                FaultSchedule([{"at": 1, "at_phase": "p",
                                "action": "heal"}], topo)
        finally:
            topo.close()

    def test_unknown_action_key_rejected(self):
        topo = self._topology()
        try:
            with pytest.raises(SpecError, match="unknown key"):
                FaultSchedule([{"at": 1, "action": "deadline",
                                "shard": 0}], topo)
        finally:
            topo.close()

    def test_network_fault_needs_a_wire(self):
        # sharded topology is in-process: no channels to degrade
        topo = self._topology()
        try:
            with pytest.raises(SpecError, match="wire-less"):
                FaultSchedule([{"at": 1, "action": "degrade",
                                "drop": 0.5}], topo)
        finally:
            topo.close()


# --------------------------------------------------------------------------
# The bounding-pair oracle
# --------------------------------------------------------------------------

class TestOracle:
    def _oracle(self, **topology):
        topology.setdefault("kind", "single")
        spec = minimal_spec(topology=topology)
        topo = build(spec)
        return OracleChecker(spec, topo), topo

    def test_acked_stream_is_bit_exact(self):
        oracle, topo = self._oracle()
        try:
            oracle.note_write(Op("insert", "a", 3), ACKED)
            oracle.note_write(Op("insert", "b", 1), ACKED)
            oracle.check_read(Op("query", "a"), 3)
            oracle.check_read(Op("contains", "a", threshold=2), True)
            assert oracle.compared == oracle.exact_compared == 2
            oracle.assert_clean()
        finally:
            topo.close()

    def test_wrong_answer_is_a_violation(self):
        oracle, topo = self._oracle()
        try:
            oracle.note_write(Op("insert", "a", 3), ACKED)
            oracle.check_read(Op("query", "a"), 2)   # fleet says 2, truth 3
            assert oracle.violations
            with pytest.raises(OracleViolation):
                oracle.assert_clean()
        finally:
            topo.close()

    def test_ambiguous_insert_widens_only_the_ceiling(self):
        oracle, topo = self._oracle()
        try:
            oracle.note_write(Op("insert", "a", 2), ACKED)
            oracle.note_write(Op("insert", "a", 5), AMBIGUOUS)
            oracle.check_read(Op("query", "a"), 2)   # did not land: fine
            oracle.check_read(Op("query", "a"), 7)   # landed: also fine
            oracle.check_read(Op("query", "a"), 8)   # above ceiling: wrong
            assert len(oracle.violations) == 1
            assert oracle.ambiguous_writes == 1
        finally:
            topo.close()

    def test_ambiguous_delete_lowers_only_the_floor(self):
        oracle, topo = self._oracle()
        try:
            oracle.note_write(Op("insert", "a", 4), ACKED)
            oracle.note_write(Op("delete", "a", 1), AMBIGUOUS)
            oracle.check_read(Op("query", "a"), 3)
            oracle.check_read(Op("query", "a"), 4)
            oracle.check_read(Op("query", "a"), 2)   # below floor: wrong
            assert len(oracle.violations) == 1
        finally:
            topo.close()

    def test_refused_touches_nothing(self):
        oracle, topo = self._oracle()
        try:
            oracle.note_write(Op("insert", "a", 9), REFUSED)
            oracle.check_read(Op("query", "a"), 0)
            oracle.assert_clean()
            assert oracle.ambiguous_writes == 0
        finally:
            topo.close()

    def test_max_ambiguous_bound_enforced(self):
        spec = minimal_spec(topology={"kind": "single"},
                            oracle={"max_ambiguous": 0})
        topo = build(spec)
        try:
            oracle = OracleChecker(spec, topo)
            oracle.note_write(Op("insert", "a", 1), AMBIGUOUS)
            with pytest.raises(OracleViolation, match="ambiguous"):
                oracle.assert_clean()
        finally:
            topo.close()

    def test_non_ms_method_refused(self):
        spec = minimal_spec(topology={"kind": "single", "method": "mi"})
        topo = build(spec)
        try:
            with pytest.raises(SpecError, match="Minimum Selection"):
                OracleChecker(spec, topo)
        finally:
            topo.close()

    def test_hint_double_apply_guard(self):
        # replicated + write_consistency below "all" + loss faults can
        # double-apply an acked write through hinted handoff, which no
        # envelope can bound — the oracle must refuse the spec outright.
        spec = minimal_spec(
            topology={"kind": "replicated", "shards": 1, "rf": 2,
                      "write_consistency": "one"},
            faults=[{"at_phase": "only", "action": "degrade",
                     "shard": 0, "drop": 0.5}])
        topo = build(spec)
        try:
            with pytest.raises(SpecError, match="hinted handoff"):
                OracleChecker(spec, topo)
        finally:
            topo.close()
        # the same spec with write_consistency: all is sound
        spec["topology"]["write_consistency"] = "all"
        topo = build(spec)
        try:
            OracleChecker(spec, topo)
        finally:
            topo.close()


# --------------------------------------------------------------------------
# Quick-mode scaling
# --------------------------------------------------------------------------

class TestQuickScaling:
    def test_phases_shrink_with_floor(self):
        for name in SEED_NAMES:
            full, quick = load_seed(name), load_seed(name, quick=True)
            for fp, qp in zip(full["phases"], quick["phases"]):
                assert qp["ops"] == max(50, fp["ops"] // QUICK_FACTOR)

    def test_at_indices_stay_in_their_phase(self):
        for name in SEED_NAMES:
            full, quick = load_seed(name), load_seed(name, quick=True)

            def phase_of(spec, at):
                start = 0
                for i, phase in enumerate(spec["phases"]):
                    if at < start + phase["ops"]:
                        return i
                    start += phase["ops"]
                return len(spec["phases"]) - 1

            for fe, qe in zip(full["faults"], quick["faults"]):
                if fe.get("at") is not None:
                    assert phase_of(full, fe["at"]) \
                        == phase_of(quick, qe["at"]), (name, fe, qe)

    def test_scaled_spec_revalidates(self):
        # load_seed(quick=True) round-trips through load_spec; reaching
        # here without SpecError is the assertion.
        for name in SEED_NAMES:
            assert load_seed(name, quick=True)["name"] == name


# --------------------------------------------------------------------------
# The seed scenarios, end to end
# --------------------------------------------------------------------------

@pytest.mark.chaos
@pytest.mark.parametrize("name", SEED_NAMES)
def test_seed_scenario_green_under_chaos(name):
    report = run_scenario(load_seed(name, quick=True))
    assert report["pass"], report["failures"]
    assert report["oracle"]["wrong_answers"] == 0
    assert report["oracle"]["compared"] > 0
    assert report["faults_fired"] > 0, "the chaos never fired"
    assert report["audit_checked"] > 0
    assert not report["conservation"] or report["conservation"]["ok"]


@pytest.mark.chaos
def test_runs_are_byte_identical():
    # Everything runs on the injected SimClock, so two runs of the same
    # spec must serialise identically — including across real OS
    # processes (rate_limiter is the procpool seed).
    for name in ("bloomjoin_packet_loss", "rate_limiter"):
        first = run_scenario(load_seed(name, quick=True))
        second = run_scenario(load_seed(name, quick=True))
        assert json.dumps(first, sort_keys=True, default=str) \
            == json.dumps(second, sort_keys=True, default=str), name


@pytest.mark.chaos
def test_availability_floor_enforced():
    spec = load_seed("bloomjoin_packet_loss", quick=True)
    spec["oracle"]["min_availability"] = {"lossy": 1.0}  # unreachable
    report = run_scenario(spec, strict=False)
    assert not report["pass"]
    assert any("availability" in failure for failure in report["failures"])


def test_runner_rejects_malformed_spec_before_traffic():
    with pytest.raises(SpecError):
        ScenarioRunner({"name": "t", "phases": [{"name": "p", "ops": 1}],
                        "topology": {"kind": "starfish"}})
