"""Tests for the §4.5 alternative compact counter representation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.succinct.compact_stream import CompactCounterStream
from repro.succinct.steps import StepsCodec


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompactCounterStream([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CompactCounterStream([1, -1])

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            CompactCounterStream([1], codec="huffman")

    def test_roundtrip_elias(self):
        values = [0, 1, 5, 1000, 0, 3]
        stream = CompactCounterStream(values, codec="elias")
        assert stream.to_list() == values

    def test_roundtrip_steps(self):
        values = [0, 1, 0, 0, 2, 9]
        stream = CompactCounterStream(values, codec="steps")
        assert stream.to_list() == values

    def test_custom_codec_instance(self):
        stream = CompactCounterStream([3, 1, 4], codec=StepsCodec((2, 3)))
        assert stream.to_list() == [3, 1, 4]

    def test_len_and_getitem(self):
        stream = CompactCounterStream([7, 8, 9])
        assert len(stream) == 3
        assert stream[1] == 8


class TestUpdates:
    def test_set_and_get(self):
        stream = CompactCounterStream([0] * 10)
        stream.set(4, 12345)
        assert stream.get(4) == 12345
        assert stream.get(3) == 0
        assert stream.get(5) == 0

    def test_setitem(self):
        stream = CompactCounterStream([0, 0])
        stream[1] = 3
        assert stream[1] == 3

    def test_increment_decrement(self):
        stream = CompactCounterStream([5])
        assert stream.increment(0, 3) == 8
        assert stream.decrement(0, 8) == 0

    def test_decrement_below_zero_raises(self):
        stream = CompactCounterStream([0])
        with pytest.raises(ValueError):
            stream.decrement(0)

    def test_index_out_of_range(self):
        stream = CompactCounterStream([1])
        with pytest.raises(IndexError):
            stream.get(1)
        with pytest.raises(IndexError):
            stream.set(2, 0)

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 60),
           st.integers(10, 150))
    def test_random_ops_match_list(self, seed, m, n_ops):
        rng = random.Random(seed)
        reference = [rng.randrange(50) for _ in range(m)]
        stream = CompactCounterStream(list(reference))
        for _ in range(n_ops):
            i = rng.randrange(m)
            if rng.random() < 0.5:
                delta = rng.randrange(1, 100)
                reference[i] += delta
                stream.increment(i, delta)
            else:
                value = rng.randrange(10_000)
                reference[i] = value
                stream.set(i, value)
        assert stream.to_list() == reference


class TestStorage:
    def test_breakdown_keys(self):
        stream = CompactCounterStream([1] * 100)
        assert set(stream.storage_breakdown()) == {
            "stream", "l1_coarse", "l2_offsets"}

    def test_stream_bits_near_coded_size(self):
        """The stream component equals the sum of codeword lengths."""
        from repro.succinct.elias import EliasCodec
        codec = EliasCodec()
        values = [0, 1, 5, 17, 250]
        stream = CompactCounterStream(values, codec=codec)
        expected = sum(codec.length(v) for v in values)
        assert stream.storage_breakdown()["stream"] == expected

    def test_steps_is_smaller_for_almost_set(self):
        """Figure 10: for avg frequency ~1 the steps codec wins."""
        values = [1 if i % 2 else 0 for i in range(1000)]
        elias = CompactCounterStream(values, codec="elias").total_bits()
        steps = CompactCounterStream(values, codec="steps").total_bits()
        assert steps < elias

    def test_elias_wins_for_large_counters(self):
        """Figure 10: Elias overtakes steps as average frequency grows."""
        rng = random.Random(3)
        values = [rng.randrange(50, 5000) for _ in range(500)]
        elias = CompactCounterStream(values, codec="elias").total_bits()
        steps = CompactCounterStream(values, codec="steps").total_bits()
        assert elias <= steps
