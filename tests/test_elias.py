"""Tests for the Elias gamma/delta codes of paper §4.5."""

import pytest
from hypothesis import given, strategies as st

from repro.succinct.bitvector import BitReader, BitWriter
from repro.succinct.elias import (
    EliasCodec,
    elias_delta_decode,
    elias_delta_encode,
    elias_delta_length,
    elias_gamma_decode,
    elias_gamma_encode,
)


def roundtrip(encode, decode, n):
    pattern, nbits = encode(n)
    writer = BitWriter()
    writer.write_bits(pattern, nbits)
    assert writer.pos == nbits
    return decode(BitReader(writer.vector))


class TestGamma:
    def test_known_codewords(self):
        # gamma(1) = "1", gamma(2) = "010", gamma(3) = "011" (MSB-first).
        assert elias_gamma_encode(1) == (0b1, 1)
        pattern, nbits = elias_gamma_encode(2)
        assert nbits == 3
        # Stream order: 0, 1, 0 -> LSB-first pattern 0b010.
        assert [pattern >> i & 1 for i in range(3)] == [0, 1, 0]
        pattern, nbits = elias_gamma_encode(3)
        assert [pattern >> i & 1 for i in range(3)] == [0, 1, 1]

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            elias_gamma_encode(0)

    def test_length_is_2L_minus_1(self):
        for n in (1, 2, 7, 8, 1000):
            _, nbits = elias_gamma_encode(n)
            assert nbits == 2 * n.bit_length() - 1

    @given(st.integers(1, 10**9))
    def test_roundtrip(self, n):
        assert roundtrip(elias_gamma_encode, elias_gamma_decode, n) == n


class TestDelta:
    def test_known_codewords(self):
        # delta(1) = gamma(1) = "1".
        assert elias_delta_encode(1) == (0b1, 1)
        # delta(2): gamma(2)="010" + "0" -> stream 0,1,0,0.
        pattern, nbits = elias_delta_encode(2)
        assert nbits == 4
        assert [pattern >> i & 1 for i in range(4)] == [0, 1, 0, 0]

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            elias_delta_encode(0)
        with pytest.raises(ValueError):
            elias_delta_length(0)

    def test_length_formula_matches_paper(self):
        """L2(n) = floor(log n) + 2*floor(log(floor(log n)+1)) + 1 (§4.5)."""
        import math
        for n in (1, 2, 3, 4, 7, 8, 100, 1000, 12345):
            log_n = int(math.log2(n)) if n > 1 else 0
            expected = log_n + 2 * int(math.log2(log_n + 1)) + 1
            assert elias_delta_length(n) == expected

    @given(st.integers(1, 10**12))
    def test_roundtrip(self, n):
        assert roundtrip(elias_delta_encode, elias_delta_decode, n) == n

    @given(st.integers(1, 10**9))
    def test_encoded_length_matches_formula(self, n):
        _, nbits = elias_delta_encode(n)
        assert nbits == elias_delta_length(n)


class TestCodec:
    def test_zero_counter_supported(self):
        """The codec stores v+1, so counter 0 round-trips (§4.5 footnote)."""
        codec = EliasCodec()
        assert roundtrip(codec.encode, codec.decode, 0) == 0

    def test_negative_rejected(self):
        codec = EliasCodec()
        with pytest.raises(ValueError):
            codec.encode(-1)
        with pytest.raises(ValueError):
            codec.length(-1)

    def test_paper_example_one_costs_four_bits(self):
        """§4.5: 'to encode the number 1 (actually encoding the number 2)
        we need 4 bits'."""
        assert EliasCodec().length(1) == 4

    @given(st.integers(0, 10**9))
    def test_roundtrip_and_length(self, v):
        codec = EliasCodec()
        pattern, nbits = codec.encode(v)
        assert nbits == codec.length(v)
        writer = BitWriter()
        writer.write_bits(pattern, nbits)
        assert codec.decode(BitReader(writer.vector)) == v

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50))
    def test_stream_of_codewords_is_self_delimiting(self, values):
        codec = EliasCodec()
        writer = BitWriter()
        for v in values:
            pattern, nbits = codec.encode(v)
            writer.write_bits(pattern, nbits)
        reader = BitReader(writer.vector)
        assert [codec.decode(reader) for _ in values] == values
