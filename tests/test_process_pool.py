"""The multi-process shard executor: differential oracle + chaos.

The acceptance contract of :mod:`repro.serve.procpool`:

- a pool-backed fleet answers **bit-identically** to an in-process
  :class:`ShardedSBF` oracle built with the same parameters, across
  methods (MS/MI/RM — i.e. both the shared-memory and the snapshot
  recovery paths), key types, point and pipelined-bulk traffic;
- killing a worker degrades *only its shard* into typed retryable
  :class:`DeliveryFailed` bulk failures — never a wrong answer — and the
  worker re-spawns with its acknowledged state intact (shared-memory
  segment for MS/MI, parent-held snapshot for RM);
- the whole surface keeps its contract under an injected-fault network
  (the frames ride the same reliable channels a RemoteShard uses).
"""

import numpy as np
import pytest

from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.serve import ProcessShardPool, ServingEngine, ShardedSBF

M, K, SEED = 4096, 4, 21


def _traffic(seed=13, n=1200, universe=4000):
    rng = np.random.default_rng(seed)
    keys = [int(x) for x in rng.integers(0, universe, n)]
    counts = [int(c) for c in rng.integers(1, 6, n)]
    probe = [int(x) for x in rng.integers(0, universe + universe // 4, n)]
    return keys, counts, probe


def _oracle(n_shards, method, backend):
    return ShardedSBF.create(n_shards, M, K, seed=SEED, method=method,
                             backend=backend)


@pytest.mark.parametrize("method,backend", [
    ("ms", "numpy"),    # shared-memory recovery path
    ("mi", "numpy"),    # shared-memory, order-dependent method
    ("rm", "array"),    # snapshot recovery path (secondary + marker)
])
def test_pool_matches_inprocess_oracle(method, backend):
    keys, counts, probe = _traffic()
    oracle = _oracle(4, method, backend)
    with ProcessShardPool(4, M, K, seed=SEED, method=method,
                          backend=backend) as pool:
        result = pool.insert_many(keys, counts)
        assert result.ok
        oracle_batch = pool.router  # same routing brain on both sides
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        got = pool.query_many(probe)
        assert got.ok
        assert got.values.tolist() == [oracle.query(x) for x in probe]
        # Point traffic routes through the RemoteShard channel stack.
        for key in probe[:25]:
            assert pool.router.query(key) == oracle.query(key)
        assert pool.total_count == oracle.total_count
        # Deletes too (RM exercises recurring-minimum maintenance).
        victims = keys[:200]
        dels = [1] * len(victims)
        assert pool.delete_many(victims, dels).ok
        for key in victims:
            oracle.delete(key, 1)
        got = pool.query_many(probe)
        assert got.ok
        assert got.values.tolist() == [oracle.query(x) for x in probe]


def test_string_keys_ride_the_json_path():
    keys = [f"user-{i % 97}" for i in range(400)]
    counts = [1 + i % 4 for i in range(400)]
    oracle = _oracle(3, "ms", "numpy")
    with ProcessShardPool(3, M, K, seed=SEED) as pool:
        assert pool.insert_many(keys, counts).ok
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        probe = [f"user-{i}" for i in range(120)]
        got = pool.query_many(probe)
        assert got.ok
        assert got.values.tolist() == [oracle.query(x) for x in probe]


def test_non_scalar_keys_fail_client_side():
    with ProcessShardPool(2, M, K, seed=SEED) as pool:
        result = pool.insert_many([1, ["not", "scalar"], 3])
        assert result.applied == 2
        assert len(result.failures) == 1
        assert result.failures[0].index == 1
        assert not result.failures[0].retryable
        assert pool.query_many([1, 3]).values.tolist() == [1, 1]


@pytest.mark.parametrize("method,backend", [
    ("ms", "numpy"),    # state survives in the shared-memory segment
    ("rm", "array"),    # state survives in the parent-held snapshot
])
def test_worker_kill_respawns_with_state_intact(method, backend):
    keys, counts, probe = _traffic(seed=5)
    oracle = _oracle(3, method, backend)
    with ProcessShardPool(3, M, K, seed=SEED, method=method,
                          backend=backend) as pool:
        assert pool.insert_many(keys, counts).ok
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        want = [oracle.query(x) for x in probe]
        pool.kill_worker(1)
        assert not pool.worker_alive(1)
        # Next use revives the worker; every acknowledged insert is
        # still there — bit-identical answers, not approximations.
        got = pool.query_many(probe)
        assert got.ok
        assert got.values.tolist() == want
        assert pool.worker_alive(1)
        assert pool.metrics.counter("engine.worker.1.restarts").value >= 1
        assert pool.metrics.counter("engine.worker.1.failures").value >= 1
        assert pool.total_count == oracle.total_count


def test_dead_worker_degrades_its_shard_only_with_typed_failures():
    keys, counts, probe = _traffic(seed=9)
    oracle = _oracle(4, "ms", "numpy")
    with ProcessShardPool(4, M, K, seed=SEED,
                          auto_revive=False) as pool:
        assert pool.insert_many(keys, counts).ok
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        victim = 2
        pool.kill_worker(victim)
        owners = pool.router.shard_of_many(probe)
        result = pool.query_many(probe)
        # Per-shard degradation: exactly the dead worker's keys fail,
        # each as a typed retryable DeliveryFailed; every other key
        # still answers bit-identically to the oracle.
        failed = {f.index for f in result.failures}
        assert failed == {i for i, o in enumerate(owners) if o == victim}
        assert failed, "probe set never hit the dead shard"
        for failure in result.failures:
            assert isinstance(failure.error, DeliveryFailed)
            assert failure.retryable
        for i, key in enumerate(probe):
            if i not in failed:
                assert int(result.values[i]) == oracle.query(key)
        # Point traffic to the dead shard raises the same typed error...
        dead_keys = [probe[i] for i in sorted(failed)]
        with pytest.raises(DeliveryFailed):
            pool.router.query(dead_keys[0])
        # ...until the supervisor revives it — with nothing lost.
        pool.revive_worker(victim)
        healed = pool.query_many(probe)
        assert healed.ok
        assert healed.values.tolist() == [oracle.query(x) for x in probe]


def test_kill_between_batches_loses_no_acknowledged_mutation():
    # The snapshot path refreshes after every acknowledged mutation, so
    # a kill landing between two bulk calls must not roll back the first.
    keys, counts, probe = _traffic(seed=31)
    half = len(keys) // 2
    oracle = _oracle(2, "rm", "array")
    with ProcessShardPool(2, M, K, seed=SEED, method="rm",
                          backend="array") as pool:
        assert pool.insert_many(keys[:half], counts[:half]).ok
        pool.kill_worker(0)
        pool.kill_worker(1)
        assert pool.insert_many(keys[half:], counts[half:]).ok
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        got = pool.query_many(probe)
        assert got.ok
        assert got.values.tolist() == [oracle.query(x) for x in probe]


def test_pool_under_faulty_network_stays_exact():
    # Point traffic rides the RemoteShard reliable channels; a lossy,
    # corrupting network costs retries, never answers.
    keys, counts, probe = _traffic(seed=17, n=150, universe=600)
    network = FaultyNetwork(
        FaultPolicy(drop=0.15, duplicate=0.1, corrupt=0.1, seed=77))
    oracle = _oracle(2, "ms", "numpy")
    with ProcessShardPool(2, M, K, seed=SEED, network=network) as pool:
        for key, count in zip(keys, counts):
            pool.router.insert(key, count)
            oracle.insert(key, count)
        for key in probe:
            assert pool.router.query(key) == oracle.query(key)
        assert network.faults["drops"] > 0  # the chaos actually happened


def test_worker_kill_under_faulty_network_keeps_contract():
    # Chaos squared: injected frame faults AND a worker kill mid-run.
    # The surviving shard keeps answering exactly; the dead shard comes
    # back with acknowledged state intact.
    keys, counts, probe = _traffic(seed=23, n=200, universe=800)
    network = FaultyNetwork(FaultPolicy(drop=0.1, corrupt=0.1, seed=5))
    oracle = _oracle(2, "ms", "numpy")
    with ProcessShardPool(2, M, K, seed=SEED, network=network) as pool:
        assert pool.insert_many(keys, counts).ok
        for key, count in zip(keys, counts):
            oracle.insert(key, count)
        pool.kill_worker(0)
        for key in probe:
            assert pool.router.query(key) == oracle.query(key)
        assert pool.worker_alive(0)


def test_engine_and_batcher_run_unchanged_over_the_pool():
    with ProcessShardPool(3, M, K, seed=SEED) as pool:
        engine = ServingEngine(pool.router, max_queue=512)
        oracle = _oracle(3, "ms", "numpy")
        rng = np.random.default_rng(3)
        keys = [int(x) for x in rng.integers(0, 1500, 400)]
        futures = [engine.submit("insert", key, 2) for key in keys]
        engine.drain()
        for future in futures:
            future.result()
        for key in keys:
            oracle.insert(key, 2)
        probe = [int(x) for x in rng.integers(0, 2000, 200)]
        futures = [engine.submit("query", key) for key in probe]
        engine.drain()
        got = [future.result() for future in futures]
        assert got == [oracle.query(key) for key in probe]
        engine.close()


def test_close_is_graceful_and_idempotent():
    pool = ProcessShardPool(2, M, K, seed=SEED)
    processes = [w.process for w in pool._workers]
    assert pool.insert_many(list(range(50))).ok
    pool.close()
    for process in processes:
        assert process is None or not process.is_alive()
    assert all(not pool.worker_alive(i) for i in range(2))
    assert pool.metrics.gauge("engine.worker.0.up").value == 0
    pool.close()  # second close is a no-op, not an error


def test_checkpoint_refreshes_snapshot_for_respawn():
    with ProcessShardPool(2, M, K, seed=SEED, method="rm",
                          backend="array", auto_snapshot=False) as pool:
        assert pool.insert_many(list(range(80)), [3] * 80).ok
        for shard in pool.shards:
            shard.checkpoint()  # explicit snapshot instead of auto
        pool.kill_worker(0)
        pool.kill_worker(1)
        got = pool.query_many(list(range(80)))
        assert got.ok
        assert all(int(v) >= 3 for v in got.values)
