"""Exhaustive crash-schedule matrix over the persistence layer.

For a fixed workload, a probe run against an instrumented (but perfect)
:class:`FileIO` learns the complete write schedule: total bytes written,
fsync calls, replace (rename) calls.  Each test then re-runs the workload
once per crash point — every byte offset of every write, every rename,
every fsync — and proves the ARIES-lite contract:

- ``recover()`` returns a filter whose counters equal replaying some
  *prefix* of the acknowledged operation sequence;
- the prefix covers at least every operation acknowledged before the
  crash (with ``fsync="always"``);
- the recovered filter passes ``check_integrity()``;
- no torn or corrupt record is ever applied.

All schedules are deterministic, so a failure reproduces exactly.
"""

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.persist import (
    CrashIO,
    DurableSBF,
    FileIO,
    SimulatedCrash,
    recover,
)

pytestmark = pytest.mark.crash


def factory():
    return SpectralBloomFilter(64, 3, seed=7)


#: mixed workload: inserts, deletes, and a key-level set
OPS = [
    ("insert", "alpha", 3),
    ("insert", "beta", 1),
    ("delete", "alpha", 1),
    ("set", "gamma", 5),
    ("insert", "delta", 2),
    ("delete", "beta", 1),
    ("set", "gamma", 2),
    ("insert", "alpha", 4),
]


def apply_reference(sbf, op, key, count):
    if op == "insert":
        sbf.insert(key, count)
    elif op == "delete":
        sbf.delete(key, count)
    else:  # set — the same delta reduction the durable handle performs
        current = sbf.query(key)
        if count > current:
            sbf.insert(key, count - current)
        elif count < current:
            sbf.delete(key, current - count)


def reference_states():
    """Counter vectors after every prefix of OPS (index = prefix length)."""
    sbf = factory()
    states = [sbf.counters.to_list()]
    for op, key, count in OPS:
        apply_reference(sbf, op, key, count)
        states.append(sbf.counters.to_list())
    return states


def drive(io, directory, checkpoint_after=()):
    """Run OPS through a durable handle; returns ops acknowledged.

    Crashes propagate to the caller; ``acked`` counts only operations
    that returned successfully before the crash.
    """
    acked = 0
    handle = DurableSBF.open(directory, factory=factory, io=io)
    for i, (op, key, count) in enumerate(OPS):
        getattr(handle, op)(key, count)
        acked += 1
        if i in checkpoint_after:
            handle.checkpoint()
    return acked


def probe_schedule(tmp_path, checkpoint_after=()):
    io = FileIO()
    drive(io, str(tmp_path / "probe"), checkpoint_after)
    return io


def assert_prefix_consistent(directory, acked, refs, label):
    sbf, report = recover(directory, factory=factory, io=FileIO())
    got = sbf.counters.to_list()
    matches = [p for p, ref in enumerate(refs) if ref == got]
    assert matches, (
        f"[{label}] recovered counters match no prefix of the workload "
        f"(acked={acked})")
    assert any(p >= acked for p in matches), (
        f"[{label}] recovered state lost acknowledged operations: "
        f"prefixes {matches} < acked {acked}")
    assert sbf.check_integrity() == [], (
        f"[{label}] recovered filter failed its integrity audit")
    return sbf, report


class TestExhaustiveWALCrashes:
    def test_every_byte_offset_recovers_to_an_acked_prefix(self, tmp_path):
        refs = reference_states()
        total = probe_schedule(tmp_path).bytes_written
        assert total > 0
        for offset in range(total + 1):
            directory = str(tmp_path / f"b{offset}")
            io = CrashIO(crash_after_bytes=offset)
            acked = 0
            try:
                acked = drive(io, directory)
            except SimulatedCrash:
                acked = _acked_from(directory)
            assert_prefix_consistent(directory, acked, refs,
                                     f"crash_after_bytes={offset}")

    def test_acked_equals_durable_under_fsync_always(self, tmp_path):
        """With fsync='always', the recovered prefix is exactly the
        acknowledged prefix — nothing acknowledged is lost, nothing
        unacknowledged leaks in unless its record hit the disk whole."""
        refs = reference_states()
        total = probe_schedule(tmp_path).bytes_written
        for offset in range(0, total + 1, 7):
            directory = str(tmp_path / f"e{offset}")
            io = CrashIO(crash_after_bytes=offset)
            try:
                drive(io, directory)
                acked = len(OPS)
            except SimulatedCrash:
                acked = _acked_from(directory)
            sbf, _ = recover(directory, factory=factory, io=FileIO())
            got = sbf.counters.to_list()
            # fsync=always: an acked op is durable; at most the one
            # in-flight (never acked) op may additionally have survived.
            candidates = refs[acked:min(acked + 2, len(refs))]
            assert got in candidates


def _acked_from(directory):
    """Lower-bound the acknowledged-op count of a crashed run from disk.

    With ``fsync="always"`` an operation is acknowledged only after its
    record is complete and synced, so every complete on-disk record — in
    the log or covered by a snapshot — corresponds to an operation the
    crashed process either acknowledged or was about to acknowledge
    (the record hit the disk whole, the return never ran).  Both must
    survive recovery, so counting them is the conservative direction.
    """
    from repro.persist import SnapshotStore, replay
    records, _ = replay(f"{directory}/wal.log", io=FileIO())
    gens = SnapshotStore(directory, io=FileIO()).generations()
    snapshot_seq = gens[-1][1] if gens else 0
    last = max([r.seq for r in records], default=0)
    return max(last, snapshot_seq)


class TestExhaustiveCheckpointCrashes:
    CHECKPOINTS = (2, 5)

    def test_every_byte_offset_with_checkpoints(self, tmp_path):
        refs = reference_states()
        total = probe_schedule(tmp_path, self.CHECKPOINTS).bytes_written
        for offset in range(total + 1):
            directory = str(tmp_path / f"c{offset}")
            io = CrashIO(crash_after_bytes=offset)
            acked = 0
            try:
                acked = drive(io, directory, self.CHECKPOINTS)
            except SimulatedCrash:
                acked = _acked_from(directory)
            assert_prefix_consistent(directory, acked, refs,
                                     f"ckpt crash_after_bytes={offset}")

    def test_every_rename_crash(self, tmp_path):
        refs = reference_states()
        replaces = probe_schedule(tmp_path, self.CHECKPOINTS).replace_calls
        assert replaces == len(self.CHECKPOINTS)
        for n in range(1, replaces + 1):
            for kind in ("before", "after"):
                directory = str(tmp_path / f"r{kind}{n}")
                io = CrashIO(**{f"crash_{kind}_replace": n})
                acked = 0
                try:
                    acked = drive(io, directory, self.CHECKPOINTS)
                except SimulatedCrash:
                    acked = _acked_from(directory)
                sbf, report = assert_prefix_consistent(
                    directory, acked, refs, f"replace {kind} #{n}")
                # A crashed snapshot write must never lose data: the WAL
                # still covers everything, so recovery is exact.
                expected = reference_states()[acked]
                assert sbf.counters.to_list() == expected, (
                    f"rename crash ({kind} #{n}) lost operations")

    def test_every_fsync_crash(self, tmp_path):
        refs = reference_states()
        fsyncs = probe_schedule(tmp_path, self.CHECKPOINTS).fsync_calls
        for n in range(1, fsyncs + 1):
            directory = str(tmp_path / f"f{n}")
            io = CrashIO(crash_on_fsync=n)
            acked = 0
            try:
                acked = drive(io, directory, self.CHECKPOINTS)
            except SimulatedCrash:
                acked = _acked_from(directory)
            assert_prefix_consistent(directory, acked, refs,
                                     f"fsync #{n}")


class TestCorruptRecordsNeverApplied:
    def test_mid_log_bit_flip_recovers_the_clean_prefix(self, tmp_path):
        from repro.persist import flip_bit, replay
        refs = reference_states()
        directory = str(tmp_path / "flip")
        drive(FileIO(), directory)
        wal_path = f"{directory}/wal.log"
        records, _ = replay(wal_path)
        # Corrupt the body of the 4th record: recovery must stop at 3 ops.
        victim = records[3]
        flip_bit(wal_path, (victim.offset + victim.size - 6) * 8)
        sbf, report = recover(directory, factory=factory, io=FileIO())
        assert sbf.counters.to_list() == refs[3]
        assert report.records_replayed == 3
        assert report.torn_tail is not None
        # The damaged tail was truncated: a reopen is clean.
        records_after, scan = replay(wal_path)
        assert len(records_after) == 3 and scan.reason is None

    def test_recovery_is_idempotent(self, tmp_path):
        """Recovering twice (crash during recovery's truncation, then
        again) converges to the same state."""
        directory = str(tmp_path / "idem")
        io = CrashIO(crash_after_bytes=probe_schedule(tmp_path)
                     .bytes_written * 2 // 3)
        try:
            drive(io, directory)
        except SimulatedCrash:
            pass
        first, _ = recover(directory, factory=factory, io=FileIO())
        second, _ = recover(directory, factory=factory, io=FileIO())
        assert first.counters.to_list() == second.counters.to_list()
