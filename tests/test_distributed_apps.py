"""Tests for the §1.1 distributed systems rebuilt on the substrate:
Summary Cache, Attenuated Bloom Filters, differential files, hot lists."""

import collections
import random

import networkx as nx
import pytest

from repro.apps.attenuated import (
    AttenuatedFilter,
    build_attenuated_tables,
    route,
)
from repro.apps.differential import DifferentialStore
from repro.apps.hotlist import HotList
from repro.apps.summary_cache import build_mesh
from repro.data.streams import insertion_stream
from repro.db.site import Network


class TestSummaryCache:
    def build(self, spectral=False):
        proxies = build_mesh(["p1", "p2", "p3"], m=2048, k=4, seed=1,
                             spectral=spectral)
        p1, p2, p3 = proxies
        for i in range(50):
            p2.store(f"doc{i}")
        for i in range(40, 90):
            p3.store(f"doc{i}")
        for proxy in proxies:
            proxy.publish()
        return proxies

    def test_remote_hit_through_summary(self):
        p1, p2, p3 = self.build()
        source, obj = p1.lookup("doc10")
        assert source == "p2"
        assert obj == "doc10"
        assert p1.remote_hits == 1

    def test_local_hit_costs_nothing(self):
        p1, _p2, _p3 = self.build()
        p1.store("mine")
        before = p1.network.rounds
        assert p1.lookup("mine") == ("p1", "mine")
        assert p1.network.rounds == before

    def test_global_miss(self):
        p1, _p2, _p3 = self.build()
        assert p1.lookup("nowhere") is None

    def test_summary_traffic_accounted(self):
        network = Network()
        proxies = build_mesh(["a", "b"], m=1024, k=3, seed=2,
                             network=network)
        proxies[0].store("x")
        proxies[0].publish()
        assert network.breakdown().get("summary", 0) > 0

    def test_stale_summary_behaviour(self):
        """[FCAB98] tolerates staleness: an eviction between publishes
        causes a wasted forward, not an error."""
        p1, p2, _p3 = self.build()
        p2.evict("doc10")
        result = p1.lookup("doc10")
        assert result is None or result[0] == "p3"
        assert p1.wasted_forwards >= 1

    def test_spectral_summaries_route_to_hottest_replica(self):
        """The SBF upgrade: prefer the replica with more references."""
        proxies = build_mesh(["a", "b", "c"], m=4096, k=4, seed=3,
                             spectral=True)
        a, b, c = proxies
        b.store("hot")                 # 1 reference at b
        for _ in range(10):
            c.store("hot")             # 10 references at c
        for proxy in proxies:
            proxy.publish()
        source, _obj = a.lookup("hot")
        assert source == "c"

    def test_wasted_forwards_are_false_positives(self):
        rng = random.Random(4)
        proxies = build_mesh(["a", "b"], m=256, k=2, seed=4)
        a, b = proxies
        for i in range(300):
            b.store(f"item{i}")
        b.publish()
        a.publish()
        misses = 0
        for i in range(300, 600):
            if a.lookup(f"item{i}") is None:
                misses += 1
        # Heavily loaded summary -> some false positives, counted.
        assert misses == 300
        assert a.wasted_forwards == a.forwards
        assert rng  # keep the fixture honest


class TestAttenuated:
    def build(self, depth=3):
        graph = nx.path_graph(5)  # 0 - 1 - 2 - 3 - 4
        documents = {0: {"left"}, 4: {"right"}, 2: {"middle"}}
        tables = build_attenuated_tables(graph, documents, depth=depth,
                                         m=1024, k=3, seed=5)
        return graph, documents, tables

    def test_filter_depth_validation(self):
        with pytest.raises(ValueError):
            AttenuatedFilter(0, 100, 3)

    def test_claimed_distance(self):
        filt = AttenuatedFilter(3, 512, 3, seed=1)
        filt.add("doc", 2)
        assert filt.claimed_distance("doc") == 2
        assert filt.claimed_distance("other") is None
        filt.add("doc", 1)
        assert filt.claimed_distance("doc") == 1

    def test_out_of_depth_replicas_ignored(self):
        filt = AttenuatedFilter(2, 512, 3, seed=1)
        filt.add("far", 5)
        assert filt.claimed_distance("far") is None

    def test_routing_reaches_nearby_replica(self):
        graph, documents, tables = self.build()
        found, path = route(graph, tables, documents, 1, "middle")
        assert found
        assert path[-1] == 2
        assert len(path) <= 3

    def test_routing_prefers_closer_replica(self):
        """Attenuation: from node 1, 'left' (1 hop) wins over 'right'."""
        graph, documents, tables = self.build(depth=4)
        found, path = route(graph, tables, documents, 1, "left")
        assert found
        assert path == [1, 0]

    def test_unreachable_document(self):
        graph, documents, tables = self.build(depth=2)
        # 'right' is 3 hops from node 0 with depth-2 tables: no edge
        # claims it there.
        found, path = route(graph, tables, documents, 0, "right")
        assert not found or len(path) > 2

    def test_storage_accounting(self):
        filt = AttenuatedFilter(3, 512, 3)
        assert filt.storage_bits() == 3 * 512

    def test_routing_on_random_graph(self):
        rng = random.Random(6)
        graph = nx.connected_watts_strogatz_graph(30, 4, 0.3, seed=6)
        documents = {node: set() for node in graph.nodes}
        docs = [f"d{i}" for i in range(40)]
        for doc in docs:
            documents[rng.choice(list(graph.nodes))].add(doc)
        tables = build_attenuated_tables(graph, documents, depth=4,
                                         m=4096, k=4, seed=6)
        found_count = 0
        for doc in docs:
            found, _path = route(graph, tables, documents, 0, doc,
                                 max_hops=10)
            found_count += found
        # Depth-4 tables over a small-world graph find most documents.
        assert found_count >= len(docs) * 0.6


class TestDifferentialStore:
    def test_read_through_pending_update(self):
        store = DifferentialStore({"a": 1, "b": 2}, seed=1)
        store.update("a", 10)
        assert store.read("a") == 10
        assert store.read("b") == 2

    def test_unmodified_keys_skip_the_file(self):
        store = DifferentialStore({f"k{i}": i for i in range(200)},
                                  m=4096, seed=2)
        store.update("k0", -1)
        before = store.file_probes
        for i in range(1, 200):
            store.read(f"k{i}")
        # The filter prevents (almost) every unnecessary probe.
        assert store.file_probes - before <= 5

    def test_flush_applies_and_resets(self):
        store = DifferentialStore({"a": 1}, seed=3)
        store.update("a", 5)
        store.update("c", 9)
        assert store.flush() == 2
        assert store.base == {"a": 5, "c": 9}
        before = store.file_probes
        store.read("a")
        assert store.file_probes == before  # fresh filter, no probe

    def test_spectral_counts_and_threshold_reads(self):
        store = DifferentialStore({"a": 1}, seed=4, spectral=True)
        store.update("a", 2)
        store.update("a", 3)
        assert store.pending_updates("a") >= 2
        # A reader that only reconciles on >= 3 pending sees stale data.
        assert store.read("a", min_pending=3) == 1
        assert store.read("a") == 3

    def test_spectral_per_key_flush(self):
        store = DifferentialStore({}, seed=5, spectral=True)
        store.update("x", 1)
        store.update("x", 2)
        store.update("y", 7)
        assert store.flush_key("x")
        assert store.base["x"] == 2
        assert store.pending_updates("x") == 0  # SBF deletion worked
        assert store.pending_updates("y") >= 1
        assert not store.flush_key("zz")

    def test_per_key_flush_requires_spectral(self):
        store = DifferentialStore({}, seed=6)
        store.update("x", 1)
        with pytest.raises(RuntimeError):
            store.flush_key("x")


class TestHotList:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            HotList(0, m=100)

    def test_finds_true_heavy_hitters(self):
        stream = insertion_stream(500, 20_000, 1.2, seed=7)
        hot = HotList(capacity=20, m=10_000, seed=7)
        hot.consume(stream)
        truth = collections.Counter(stream)
        true_top = {item for item, _c in truth.most_common(10)}
        reported = {item for item, _est in hot.top(20)}
        assert true_top <= reported

    def test_estimates_one_sided(self):
        stream = insertion_stream(300, 5000, 1.0, seed=8)
        hot = HotList(capacity=10, m=5000, seed=8)
        hot.consume(stream)
        truth = collections.Counter(stream)
        for item, estimate in hot.top():
            assert estimate >= truth[item]

    def test_capacity_respected(self):
        hot = HotList(capacity=5, m=1000, seed=9)
        hot.consume(range(100))
        assert len(hot) <= 5

    def test_membership_and_top_n(self):
        hot = HotList(capacity=3, m=1000, seed=10)
        for item, count in [("a", 10), ("b", 5), ("c", 3), ("d", 1)]:
            hot.offer(item, count)
        assert "a" in hot
        top2 = hot.top(2)
        assert top2[0][0] == "a"
        assert len(top2) == 2

    def test_storage_is_sketch_plus_list(self):
        hot = HotList(capacity=4, m=1000, seed=11)
        empty_bits = hot.storage_bits()
        hot.consume(["x"] * 10)
        assert hot.storage_bits() > empty_bits
