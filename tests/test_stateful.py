"""Hypothesis stateful (model-based) tests.

Each machine drives a structure through arbitrary interleaved operations
and checks it against a trivially-correct Python model after every step —
the strongest guard we have against rare interleaving bugs in the
String-Array Index's push/grow/rebuild machinery and the SBF methods'
auxiliary state.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro import SpectralBloomFilter
from repro.succinct.compact_stream import CompactCounterStream
from repro.succinct.string_array import StringArrayIndex


class StringArrayMachine(RuleBasedStateMachine):
    """StringArrayIndex vs a plain list under arbitrary op interleavings."""

    @initialize(values=st.lists(st.integers(0, 1000), min_size=1,
                                max_size=40),
                chunk_slack=st.integers(1, 8),
                group_slack=st.integers(2, 16))
    def setup(self, values, chunk_slack, group_slack):
        self.model = list(values)
        self.sai = StringArrayIndex(values, chunk_slack=chunk_slack,
                                    group_slack=group_slack)

    def _index(self, i):
        return i % len(self.model)

    @rule(i=st.integers(0, 10**6), delta=st.integers(1, 10**5))
    def increment(self, i, delta):
        i = self._index(i)
        self.model[i] += delta
        self.sai.increment(i, delta)

    @rule(i=st.integers(0, 10**6), delta=st.integers(1, 100))
    def decrement_clamped(self, i, delta):
        i = self._index(i)
        delta = min(delta, self.model[i])
        if delta:
            self.model[i] -= delta
            self.sai.decrement(i, delta)

    @rule(i=st.integers(0, 10**6), value=st.integers(0, 2**40))
    def set_value(self, i, value):
        i = self._index(i)
        self.model[i] = value
        self.sai.set(i, value)

    @rule()
    def rebuild(self):
        self.sai.rebuild()

    @rule(i=st.integers(0, 10**6))
    def read_one(self, i):
        i = self._index(i)
        assert self.sai.get(i) == self.model[i]

    @invariant()
    def widths_cover_values(self):
        for i in range(0, len(self.model), max(1, len(self.model) // 7)):
            width = self.sai.width(i)
            assert width >= max(1, self.model[i].bit_length())

    @invariant()
    def storage_is_consistent(self):
        assert self.sai.total_bits() >= self.sai.raw_bits()

    def teardown(self):
        if hasattr(self, "model"):
            assert self.sai.to_list() == self.model


class CompactStreamMachine(RuleBasedStateMachine):
    """CompactCounterStream vs a plain list."""

    @initialize(values=st.lists(st.integers(0, 500), min_size=1,
                                max_size=30),
                codec=st.sampled_from(["elias", "steps"]))
    def setup(self, values, codec):
        self.model = list(values)
        self.stream = CompactCounterStream(values, codec=codec)

    def _index(self, i):
        return i % len(self.model)

    @rule(i=st.integers(0, 10**6), delta=st.integers(1, 10**4))
    def increment(self, i, delta):
        i = self._index(i)
        self.model[i] += delta
        self.stream.increment(i, delta)

    @rule(i=st.integers(0, 10**6), value=st.integers(0, 2**30))
    def set_value(self, i, value):
        i = self._index(i)
        self.model[i] = value
        self.stream.set(i, value)

    @rule(i=st.integers(0, 10**6))
    def read_one(self, i):
        i = self._index(i)
        assert self.stream.get(i) == self.model[i]

    def teardown(self):
        if hasattr(self, "model"):
            assert self.stream.to_list() == self.model


class SbfMachine(RuleBasedStateMachine):
    """SBF (MS and RM, both backends) vs an exact Counter model.

    Invariant under any insert/delete interleaving that only removes
    present items: every estimate upper-bounds the true count.
    """

    @initialize(method=st.sampled_from(["ms", "rm"]),
                backend=st.sampled_from(["array", "compact"]),
                seed=st.integers(0, 2**16))
    def setup(self, method, backend, seed):
        self.truth: dict[int, int] = {}
        self.sbf = SpectralBloomFilter(300, 4, method=method, seed=seed,
                                       backend=backend)
        self.rng = random.Random(seed)

    @rule(key=st.integers(0, 60), count=st.integers(1, 5))
    def insert(self, key, count):
        self.truth[key] = self.truth.get(key, 0) + count
        self.sbf.insert(key, count)

    @rule(key=st.integers(0, 60), count=st.integers(1, 5))
    def delete_present(self, key, count):
        have = self.truth.get(key, 0)
        count = min(count, have)
        if count:
            self.truth[key] -= count
            self.sbf.delete(key, count)

    @rule(key=st.integers(0, 60))
    def query_upper_bounds(self, key):
        assert self.sbf.query(key) >= self.truth.get(key, 0)

    @invariant()
    def total_count_matches(self):
        if hasattr(self, "truth"):
            assert self.sbf.total_count == sum(self.truth.values())

    def teardown(self):
        if hasattr(self, "truth"):
            for key, count in self.truth.items():
                assert self.sbf.query(key) >= count


TestStringArrayMachine = StringArrayMachine.TestCase
TestStringArrayMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)

TestCompactStreamMachine = CompactStreamMachine.TestCase
TestCompactStreamMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestSbfMachine = SbfMachine.TestCase
TestSbfMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
