"""Gray-failure defense: deadlines, retry budgets, breakers, hedging.

The failure mode under test is *slow-but-alive*: a replica (or a wire)
that keeps answering correctly but late.  Consecutive-failure ejection
can never catch it; these tests prove the resilience layer does — and
that every defense preserves the HA invariant of **no wrong answers,
ever** (a defended read either matches the oracle or refuses with a
typed error).

Everything runs on injected fake clocks: slowness is simulated by
advancing the clock, so the chaos is deterministic and instant.
"""

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import SLOW, FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed, ReliableChannel
from repro.persist import ConcurrentSBF
from repro.serve import (
    QUORUM,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LatencyTracker,
    MetricsRegistry,
    RemoteShard,
    ReplicaSet,
    RetryBudget,
    ServingEngine,
    ShardBatcher,
    ShardServer,
    ShardedSBF,
    Unavailable,
    current_deadline,
    deadline_scope,
)
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN

M, K, SEED = 2048, 4, 11


class FakeClock:
    """Injected clock: tests advance time by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_filter() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def make_handle() -> ConcurrentSBF:
    return ConcurrentSBF(make_filter())


class SlowReplica:
    """Local handle with a gray-failure switch: while ``stall`` is
    non-zero every guarded call advances the fake clock by that much and
    then honours the ambient deadline — alive, correct, and late, the
    failure consecutive-failure ejection can never see."""

    _GUARDED = frozenset({"insert", "delete", "set", "query", "contains",
                          "query_many", "insert_many", "delete_many"})

    def __init__(self, handle, clock: FakeClock, stall: float = 0.0):
        self._handle = handle
        self._clock = clock
        self.stall = stall

    def _stalled(self) -> None:
        if self.stall:
            self._clock.advance(self.stall)
            deadline = current_deadline()
            if deadline is not None:
                deadline.check("slow replica")

    def __getattr__(self, name):
        attr = getattr(self._handle, name)
        if name in SlowReplica._GUARDED:
            def guarded(*args, **kwargs):
                self._stalled()
                return attr(*args, **kwargs)
            return guarded
        return attr

    @property
    def total_count(self) -> int:
        self._stalled()
        return self._handle.total_count


def assert_replicas_identical(rset: ReplicaSet) -> None:
    filters = [r.sbf for r in rset.replicas]
    for other in filters[1:]:
        assert list(other.counters) == list(filters[0].counters)


# -- Deadline ---------------------------------------------------------------

def test_deadline_expires_on_the_injected_clock():
    clock = FakeClock()
    deadline = Deadline(0.5, clock=clock, label="op")
    assert not deadline.expired
    assert deadline.remaining() == pytest.approx(0.5)
    deadline.check()                     # plenty left: no raise
    clock.advance(0.7)
    assert deadline.expired
    with pytest.raises(DeadlineExceeded) as caught:
        deadline.check("query")
    assert "query" in str(caught.value)
    assert caught.value.overrun == pytest.approx(0.2)


def test_deadline_bounded_only_tightens():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    tight = deadline.bounded(0.1)
    assert tight.remaining() == pytest.approx(0.1)
    # A generous bound cannot extend the parent deadline.
    loose = deadline.bounded(5.0)
    assert loose.remaining() == pytest.approx(1.0)


def test_deadline_rejects_negative_budget():
    with pytest.raises(ValueError, match="budget"):
        Deadline(-1.0)


def test_deadline_scope_nests_and_passes_none_through():
    assert current_deadline() is None
    clock = FakeClock()
    outer = Deadline(1.0, clock=clock)
    inner = Deadline(0.1, clock=clock)
    with deadline_scope(outer):
        assert current_deadline() is outer
        with deadline_scope(None):       # no-op: outer stays current
            assert current_deadline() is outer
        with deadline_scope(inner):
            assert current_deadline() is inner
        assert current_deadline() is outer
    assert current_deadline() is None


# -- RetryBudget ------------------------------------------------------------

def test_retry_budget_spends_earns_and_denies():
    budget = RetryBudget(capacity=2.0, earn_rate=0.5)
    assert budget.try_spend() and budget.try_spend()
    assert not budget.try_spend()        # empty: denied and counted
    assert (budget.spent, budget.denied) == (2, 1)
    budget.earn()
    assert budget.tokens == pytest.approx(0.5)
    assert not budget.try_spend()        # half a token buys no retry
    budget.earn()
    assert budget.try_spend()
    for _ in range(100):
        budget.earn()                    # earning is capped at capacity
    assert budget.tokens == pytest.approx(2.0)


def test_retry_budget_validates():
    with pytest.raises(ValueError, match="capacity"):
        RetryBudget(capacity=0)
    with pytest.raises(ValueError, match="earn_rate"):
        RetryBudget(earn_rate=-1)


# -- LatencyTracker ---------------------------------------------------------

def test_latency_tracker_warms_up_before_answering():
    tracker = LatencyTracker(window=32, min_samples=4)
    for latency in (0.01, 0.02, 0.03):
        tracker.observe(latency)
    assert tracker.quantile(0.95) is None      # still warming up
    tracker.observe(0.04)
    assert tracker.quantile(0.5) == pytest.approx(0.03)
    assert tracker.quantile(0.95) == pytest.approx(0.04)
    with pytest.raises(ValueError, match="quantile"):
        tracker.quantile(1.5)


# -- CircuitBreaker ---------------------------------------------------------

def test_breaker_trips_on_error_rate_after_min_samples():
    clock = FakeClock()
    breaker = CircuitBreaker(clock=clock, window=8, min_samples=4,
                             error_threshold=0.5)
    breaker.record_failure()             # one early failure cannot trip
    assert breaker.state == CLOSED
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()


def test_breaker_trips_on_latency_of_successes():
    # The gray-failure catch: every attempt SUCCEEDS, yet the breaker
    # opens — no amount of consecutive-failure counting could do this.
    clock = FakeClock()
    breaker = CircuitBreaker(clock=clock, latency_threshold=0.02,
                             latency_min_samples=2)
    breaker.record_success(0.05)         # one stall is not a pattern
    assert breaker.state == CLOSED
    breaker.record_success(0.05)
    assert breaker.state == OPEN
    assert breaker.opens == 1


def test_breaker_half_open_probe_closes_or_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(clock=clock, latency_threshold=0.02,
                             latency_min_samples=2, reset_timeout=1.0)
    breaker.record_success(0.05)
    breaker.record_success(0.05)
    assert breaker.state == OPEN
    assert not breaker.allow()           # still cooling off
    clock.advance(1.5)
    assert breaker.allow()               # admits exactly the probe
    assert breaker.state == HALF_OPEN
    # A slow probe re-opens and re-arms the timeout...
    breaker.record_success(0.05)
    assert breaker.state == OPEN
    clock.advance(1.5)
    assert breaker.allow()
    # ...a fast probe closes, judged on its own latency (the EWMA still
    # remembers the sick history — holding the probe to it would keep a
    # recovered replica out forever).
    breaker.record_success(0.001)
    assert breaker.state == CLOSED
    assert breaker.latency_ewma is None  # recovered replicas start clean
    assert (breaker.opens, breaker.half_opens, breaker.closes) == (2, 2, 1)


def test_breaker_failure_during_half_open_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(clock=clock, window=4, min_samples=2,
                             error_threshold=0.5, reset_timeout=1.0)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(2.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 2


def test_breaker_state_codes():
    breaker = CircuitBreaker(clock=FakeClock())
    assert breaker.state_code() == 0.0
    breaker._transition(OPEN)
    assert breaker.state_code() == 1.0
    breaker._transition(HALF_OPEN)
    assert breaker.state_code() == 0.5


# -- FaultPolicy / FaultyNetwork: the slowness fault ------------------------

def test_fault_policy_slow_decision_and_validation():
    policy = FaultPolicy(slow=1.0, slow_seconds=0.05, seed=3)
    assert policy.decide() == SLOW
    with pytest.raises(ValueError, match="sum"):
        FaultPolicy(drop=0.6, slow=0.6)
    with pytest.raises(ValueError, match="slow_seconds"):
        FaultPolicy(slow_seconds=-1)
    with pytest.raises(ValueError, match="latency"):
        FaultPolicy(latency=-1)


def test_faulty_network_advances_injected_clock_per_transit():
    clock = FakeClock()
    network = FaultyNetwork(advance=clock.advance)
    network.set_policy("a", "b", FaultPolicy(slow=1.0, slow_seconds=0.05,
                                             latency=0.001))
    arrivals = network.transmit("a", "b", "x", b"frame")
    assert arrivals == [b"frame"]        # slow frames arrive intact...
    assert clock.now == pytest.approx(0.051)   # ...but late in time
    assert network.faults["slowdowns"] == 1
    # A healthy channel still pays its baseline latency.
    network.set_policy("a", "b", FaultPolicy(latency=0.001))
    network.transmit("a", "b", "x", b"frame")
    assert clock.now == pytest.approx(0.052)


def test_slow_fault_without_advance_hook_degrades_to_intact_delivery():
    network = FaultyNetwork()
    network.set_policy("a", "b", FaultPolicy(slow=1.0, slow_seconds=9.9))
    assert network.transmit("a", "b", "x", b"frame") == [b"frame"]
    assert network.faults["slowdowns"] == 1


# -- transport: deadline-aware sends ----------------------------------------

def test_channel_send_abandons_at_the_deadline():
    clock = FakeClock()
    network = FaultyNetwork(advance=clock.advance)
    network.set_policy("a", "b", FaultPolicy(drop=1.0, latency=0.02))
    channel = ReliableChannel(network, "a", "b", max_retries=6)
    with pytest.raises(DeadlineExceeded):
        channel.send("x", b"payload", deadline=Deadline(0.01, clock=clock))
    stats = channel.stats
    assert stats.deadline_abandons == 1
    # The first transmit burned the whole budget; no retry was paid for.
    assert stats.attempts == 1 and stats.retries == 0


def test_channel_discards_late_arrival_past_deadline():
    clock = FakeClock()
    network = FaultyNetwork(advance=clock.advance)
    network.set_policy("a", "b", FaultPolicy(slow=1.0, slow_seconds=0.05))
    channel = ReliableChannel(network, "a", "b")
    with pytest.raises(DeadlineExceeded):
        channel.send("x", b"payload", deadline=Deadline(0.01, clock=clock))
    # The frame arrived intact — but after the caller stopped waiting,
    # so it was counted delivered on the wire yet abandoned to the user.
    assert channel.stats.delivered == 1
    assert channel.stats.deadline_abandons == 1


def test_channel_backoff_is_capped_by_time_remaining():
    network = FaultyNetwork()                   # no clock: time stands still
    network.set_policy("a", "b", FaultPolicy(drop=1.0))
    channel = ReliableChannel(network, "a", "b", max_retries=3,
                              base_backoff=0.5)
    clock = FakeClock()
    with pytest.raises(DeliveryFailed):
        channel.send("x", b"payload", deadline=Deadline(0.01, clock=clock))
    # Three retries, each pause clipped to the 10ms remaining (the
    # unclipped schedule would have accrued >= 1.5s).
    assert channel.stats.retries == 3
    assert channel.stats.backoff_seconds <= 0.03 + 1e-9


def test_channel_retry_budget_degrades_to_fast_refusal():
    network = FaultyNetwork()
    network.set_policy("a", "b", FaultPolicy(drop=1.0))
    budget = RetryBudget(capacity=2.0, earn_rate=0.0)
    channel = ReliableChannel(network, "a", "b", max_retries=6,
                              budget=budget)
    with pytest.raises(DeliveryFailed, match="retry budget empty"):
        channel.send("x", b"payload")
    assert channel.stats.budget_denied == 1
    assert channel.stats.retries == 2           # capacity bought exactly two
    assert budget.denied == 1
    # Healthy traffic earns the bucket back.
    network.set_policy("a", "b", None)
    for _ in range(8):
        channel.send("x", b"payload")
    assert budget.tokens == 0.0                 # earn_rate=0: still drained
    assert channel.stats.delivered == 8


# -- remote shards: deadlines and budgets over the wire ---------------------

def test_remote_shard_honours_ambient_deadline_over_slow_wire():
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    network = FaultyNetwork(advance=clock.advance)
    shard = RemoteShard(ShardServer(make_handle()), network,
                        "client", "s0", metrics=metrics)
    shard.insert("a")                           # healthy round trip
    network.set_policy("client", "s0",
                       FaultPolicy(slow=1.0, slow_seconds=0.05))
    assert shard.query("a") == 1                # slow but unbounded: fine
    with deadline_scope(Deadline(0.01, clock=clock)):
        with pytest.raises(DeadlineExceeded):
            shard.query("a")
    channels = metrics.snapshot()["channels"]
    assert channels["remote.s0.requests"]["deadline_abandons"] == 1


def test_remote_shard_shares_one_retry_budget_across_both_legs():
    network = FaultyNetwork()
    budget = RetryBudget(capacity=2.0, earn_rate=0.0)
    shard = RemoteShard(ShardServer(make_handle()), network, "c", "s0",
                        retry_budget=budget, metrics=MetricsRegistry())
    network.set_policy("c", "s0", FaultPolicy(drop=1.0))
    with pytest.raises(DeliveryFailed, match="retry budget empty"):
        shard.query("a")
    assert shard.requests.stats.budget_denied == 1
    assert budget.denied == 1


# -- ReplicaSet: breakers, hedging, budgets, deadlines ----------------------

def make_gray_set(stalls=(0.0, 0.0, 0.0), **options):
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    handles = [SlowReplica(make_handle(), clock, stall) for stall in stalls]
    options.setdefault("name", "gray")
    options.setdefault("read_consistency", QUORUM)
    options.setdefault("eject_after", 100)      # ejection must NOT fire
    options.setdefault("probe_every", 10_000)   # tests tick explicitly
    rset = ReplicaSet(handles, metrics=metrics, **options)
    return rset, handles, clock, metrics


def test_read_deadline_refusal_is_typed_and_counted():
    rset, _, clock, metrics = make_gray_set()
    rset.insert("a")
    with deadline_scope(Deadline(0.01, clock=clock)):
        clock.advance(0.02)
        with pytest.raises(DeadlineExceeded):
            rset.query("a")
        with pytest.raises(DeadlineExceeded):
            rset.insert("b")
    counters = metrics.snapshot()["counters"]
    assert counters["ha.gray.deadline_refusals"] == 2
    # The expired write landed on no replica: no hint, no partial state.
    assert counters.get("ha.gray.hinted", 0) == 0
    assert rset.query("b") == 0


def test_hedged_read_abandons_straggler_and_refires_on_spare():
    rset, handles, _, metrics = make_gray_set(
        stalls=(0.05, 0.0, 0.0), hedge=0.02)
    oracle = make_filter()
    for key in ("a", "b", "c"):
        # Populate replicas directly: identical state, but the set has
        # no latency history yet — the first read meets the straggler
        # cold, in configured order.
        for handle in handles:
            handle._handle.insert(key)
        oracle.insert(key)
    # The straggler blows its 20ms attempt bound; the read abandons it
    # and re-fires against a spare replica — quorum still answers.
    assert rset.query("a") == oracle.query("a")
    counters = metrics.snapshot()["counters"]
    assert counters["ha.gray.hedges"] >= 1
    # Later reads sort the straggler last (its EWMA now shows) and meet
    # quorum from the fast pair; answers stay oracle-exact throughout.
    for key in ("a", "b", "c", "miss"):
        assert rset.query(key) == oracle.query(key)


def test_write_straggler_is_abandoned_and_hinted_once_quota_met():
    rset, handles, _, metrics = make_gray_set(
        stalls=(0.05, 0.0, 0.0), hedge=0.02)
    oracle = make_filter()
    keys = [f"k{i}" for i in range(6)]
    for key in keys:
        rset.insert(key)
        oracle.insert(key)
    counters = metrics.snapshot()["counters"]
    # After the first (unbounded) slow write taught the EWMA, the slow
    # replica attempts last with the ack quota already met — bounded,
    # abandoned, hinted.
    assert counters["ha.gray.write_abandons"] >= 1
    assert counters["ha.gray.hinted"] >= 1
    # Reads keep answering from the fresh quorum, oracle-exact.
    for key in keys:
        assert rset.query(key) == oracle.query(key)
    # Handoff drains the hints and proves convergence.
    handles[0].stall = 0.0
    assert rset.tick() == 0                     # was never down...
    assert_replicas_identical(rset)             # ...and is now identical


class PartitionedHandle:
    """Hard-fails every call with the transport's transient error."""

    def __getattr__(self, name):
        from repro.db.transport import ChannelStats
        raise DeliveryFailed("partitioned", ChannelStats())

    @property
    def total_count(self) -> int:
        from repro.db.transport import ChannelStats
        raise DeliveryFailed("partitioned", ChannelStats())


def test_read_retry_budget_collapses_storm_to_fast_refusals():
    rset, handles, _, metrics = make_gray_set(
        retry_budget={"capacity": 2.0, "earn_rate": 0.0})
    for handle in handles:
        handle._handle.insert("a")      # identical replicas, all fresh
    handles[1]._handle = PartitionedHandle()
    handles[2]._handle = PartitionedHandle()
    # quorum=2 with one live replica: each read pays the quorum's own
    # two attempts, then a third — a retry — that spends budget.  The
    # two-token bucket buys exactly two such reads.
    for _ in range(2):
        with pytest.raises(Unavailable):
            rset.query("a")
    with pytest.raises(Unavailable, match="retry budget empty"):
        rset.query("a")
    counters = metrics.snapshot()["counters"]
    assert counters["ha.gray.budget_refusals"] == 1
    assert rset.retry_budget.denied == 1
    assert rset.retry_budget.spent == 2


def test_gray_failure_breaker_sheds_slow_replica_and_readmits():
    """The headline chaos drill: 1 slow replica of 3, RF=3 quorum reads.

    The slow replica is never *down* — ejection cannot fire.  The
    latency trip sheds it, hints keep it convergent, the half-open probe
    re-opens while it is still slow and re-admits once healed, and every
    answer along the way is oracle-exact.
    """
    rset, handles, clock, metrics = make_gray_set(
        breaker={"latency_threshold": 0.02, "reset_timeout": 5.0},
        hedge=0.02)
    oracle = make_filter()
    keys = [f"key:{i % 37}" for i in range(120)]
    for key in keys[:30]:                       # healthy warm-up
        rset.insert(key)
        oracle.insert(key)
    handles[0].stall = 0.05                     # r0 goes gray
    for key in keys[30:]:
        rset.insert(key)
        oracle.insert(key)
    wrong = sum(1 for key in keys if rset.query(key) != oracle.query(key))
    assert wrong == 0
    counters = metrics.snapshot()["counters"]
    health = {h["replica"]: h for h in rset.health()}
    assert counters["ha.gray.breaker_opens"] >= 1
    assert health["r0"]["breaker"] == OPEN      # shed...
    assert health["r0"]["up"]                   # ...but never ejected
    assert counters.get("ha.gray.ejections", 0) == 0
    assert counters["ha.gray.hinted"] >= 1      # writes kept flowing past it
    # Probe while still slow: the half-open attempt is judged on its own
    # latency and re-opens — a sick replica cannot talk its way back in.
    clock.advance(10.0)
    rset.tick()
    counters = metrics.snapshot()["counters"]
    assert counters["ha.gray.breaker_half_opens"] >= 1
    assert {h["replica"]: h["breaker"]
            for h in rset.health()}["r0"] == OPEN
    # Heal, wait out the reset timeout, probe again: hints drain, the
    # convergence proof passes, the breaker closes.
    handles[0].stall = 0.0
    clock.advance(10.0)
    rset.tick()
    counters = metrics.snapshot()["counters"]
    health = {h["replica"]: h for h in rset.health()}
    assert health["r0"]["breaker"] == CLOSED
    assert health["r0"]["hint_depth"] == 0
    assert counters["ha.gray.breaker_closes"] >= 1
    assert metrics.snapshot()["gauges"]["ha.gray.r0.breaker_state"] == 0.0
    assert_replicas_identical(rset)
    for key in keys:
        assert rset.query(key) == oracle.query(key)


# -- engine + batcher: the deadline travels the whole path ------------------

def test_engine_submit_timeout_fails_expired_requests_unexecuted():
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    router = ShardedSBF.create(2, M, K, seed=SEED, metrics=metrics)
    engine = ServingEngine(router, metrics=metrics)
    fast = engine.submit("insert", "a", timeout=10.0)
    slow = engine.submit("insert", "b", timeout=0.01)
    clock.advance(0.05)                         # "b" expires in the queue
    engine.drain()
    assert fast.result(timeout=0) is None
    with pytest.raises(DeadlineExceeded):
        slow.result(timeout=0)
    counters = metrics.snapshot()["counters"]
    assert counters["engine.deadline_expired_total"] == 1
    assert router.query("a") == 1
    assert router.query("b") == 0               # never executed
    histogram = metrics.snapshot()["histograms"]
    assert histogram["engine.queue_wait_seconds"]["count"] == 2
    assert histogram["engine.queue_wait_seconds"]["sum"] == \
        pytest.approx(0.1)


def test_engine_rejects_timeout_and_deadline_together():
    engine = ServingEngine(ShardedSBF.create(2, M, K, seed=SEED))
    with pytest.raises(ValueError, match="not both"):
        engine.submit("insert", "a", timeout=1.0,
                      deadline=Deadline(1.0))


def test_batcher_fails_expired_slot_without_felling_the_batch():
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    router = ShardedSBF.create(2, M, K, seed=SEED, metrics=metrics)
    batcher = ShardBatcher(router, metrics=metrics)
    expired = Deadline(0.0, clock=clock)
    clock.advance(0.01)
    results = batcher.execute([("insert", "a"), ("insert", "b")],
                              deadlines=[expired, None])
    assert isinstance(results[0], DeadlineExceeded)
    assert results[1] is None
    assert router.query("a") == 0               # expired op never ran
    assert router.query("b") == 1


def test_router_point_path_refuses_expired_ambient_deadline():
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    router = ShardedSBF.create(2, M, K, seed=SEED, metrics=metrics)
    deadline = Deadline(0.01, clock=clock)
    clock.advance(0.02)
    with deadline_scope(deadline):
        with pytest.raises(DeadlineExceeded):
            router.query("a")
        with pytest.raises(DeadlineExceeded):
            router.insert("a")
    assert metrics.snapshot()["counters"]["router.deadline_refusals"] == 2
    assert router.total_count == 0
