"""ServingEngine: admission control, batching equivalence, graceful close.

Everything here is deterministic: the pump is driven from the test thread
(submit/pump interleaving is explicit) and latency accounting runs on a
fake injected clock, so queueing behaviour is asserted exactly — no
sleeps, no flakiness.
"""

import random

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.serve import (
    DeadlineExceeded,
    MetricsRegistry,
    Overloaded,
    ServingEngine,
    ShardedSBF,
    run_requests,
    shed_oldest,
)

M, K, SEED = 2048, 4, 11


class FakeClock:
    """Injected clock: tests advance time by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_router(n_shards: int = 4, **kwargs) -> ShardedSBF:
    return ShardedSBF.create(n_shards, M, K, seed=SEED, **kwargs)


def test_reject_new_refuses_at_the_bound():
    engine = ServingEngine(make_router(), max_queue=4, batch_size=8)
    futures = [engine.submit("insert", key) for key in range(4)]
    with pytest.raises(Overloaded) as caught:
        engine.submit("insert", 99)
    assert caught.value.depth == 4
    assert caught.value.limit == 4
    snapshot = engine.metrics.snapshot()["counters"]
    assert snapshot["engine.rejected_total"] == 1
    assert snapshot["engine.accepted"] == 4
    assert engine.pump() == 4
    assert all(future.result(timeout=0) is None for future in futures)
    # The refused insert never reached a shard.
    assert engine.router.total_count == 4
    # Below the bound the door reopens.
    engine.submit("query", 0)
    assert engine.drain() == 1


def test_shed_oldest_bounds_staleness_not_arrivals():
    engine = ServingEngine(make_router(), max_queue=2, batch_size=8,
                           policy=shed_oldest)
    first = engine.submit("insert", 1)
    second = engine.submit("insert", 2)
    third = engine.submit("insert", 3)      # sheds `first`, admits itself
    assert isinstance(first.exception(timeout=0), Overloaded)
    assert engine.queue_depth == 2
    assert engine.drain() == 2
    assert second.result(timeout=0) is None
    assert third.result(timeout=0) is None
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.shed_total"] == 1
    assert counters["engine.served"] == 2


def test_rejection_counts_under_sustained_overload():
    engine = ServingEngine(make_router(), max_queue=8, batch_size=8)
    accepted = rejected = 0
    for key in range(50):
        try:
            engine.submit("insert", key)
            accepted += 1
        except Overloaded:
            rejected += 1
            engine.pump()                   # backpressure: serve, retry later
    engine.drain()
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.accepted"] == accepted
    assert counters["engine.rejected_total"] == rejected
    assert rejected > 0
    assert counters["engine.served"] == accepted
    assert engine.router.total_count == accepted


def test_engine_results_equal_sequential_reference():
    """The whole pipeline (admission -> queue -> batcher -> shards) returns
    exactly what applying the ops one-by-one to an unsharded filter does —
    including which ops fail."""
    rng = random.Random(SEED)
    reference = SpectralBloomFilter(M, K, seed=SEED, method="ms",
                                    backend="array", hash_family="blocked")
    engine = ServingEngine(make_router(), max_queue=4096, batch_size=32)
    hot = [rng.randrange(1 << 32) for _ in range(40)]
    ops, expected = [], []
    for _ in range(600):
        key = rng.choice(hot)
        verb = rng.choice(["insert", "insert", "query", "query",
                           "contains", "delete", "set"])
        if verb == "insert":
            ops.append(("insert", key))
        elif verb == "query":
            ops.append(("query", key))
        elif verb == "contains":
            ops.append(("contains", key, 2))
        elif verb == "set":
            ops.append(("set", key, rng.randrange(4)))
        else:
            ops.append(("delete", key, 1))
    for op in ops:
        verb, key = op[0], op[1]
        try:
            if verb == "insert":
                reference.insert(key)
                expected.append(None)
            elif verb == "query":
                expected.append(reference.query(key))
            elif verb == "contains":
                expected.append(reference.contains(key, op[2]))
            elif verb == "set":
                # plain filters lack set(); mirror the batcher's reduction
                current = reference.query(key)
                if op[2] > current:
                    reference.insert(key, op[2] - current)
                elif op[2] < current:
                    reference.delete(key, current - op[2])
                expected.append(None)
            else:
                if reference.query(key) < op[2]:
                    raise ValueError("would drive a counter negative")
                reference.delete(key, op[2])
                expected.append(None)
        except ValueError as exc:
            expected.append(exc)
    results = run_requests(engine, ops)
    assert len(results) == len(expected)
    for got, want in zip(results, expected):
        if isinstance(want, Exception):
            assert isinstance(got, ValueError)
        else:
            assert got == want
    assert engine.router.total_count == reference.total_count


def test_latency_histogram_uses_the_injected_clock():
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    engine = ServingEngine(make_router(), max_queue=64, batch_size=8,
                           metrics=registry)
    engine.submit("insert", 1)
    clock.advance(0.25)                     # queued for a quarter second
    engine.submit("insert", 2)
    clock.advance(0.05)
    assert engine.pump() == 2
    histogram = registry.snapshot()["histograms"]["engine.latency_seconds"]
    assert histogram["count"] == 2
    assert histogram["sum"] == pytest.approx(0.30 + 0.05)
    assert registry.snapshot()["gauges"]["engine.queue_depth"] == 0


def test_close_drains_checkpoints_and_seals(tmp_path):
    router = make_router(2, durable_root=str(tmp_path), fsync="checkpoint")
    engine = ServingEngine(router, max_queue=256)
    for key in range(80):
        engine.submit("insert", key)
    report = engine.close()
    assert report == {"drained": 80, "checkpointed": 2}
    with pytest.raises(RuntimeError, match="closed"):
        engine.submit("insert", 99)
    assert engine.close()["checkpointed"] == 0     # idempotent
    # A fresh process over the same root recovers every acknowledged write.
    recovered = ShardedSBF.create(2, M, K, seed=SEED,
                                  durable_root=str(tmp_path))
    try:
        assert recovered.total_count == 80
        for key in range(80):
            assert recovered.query(key) >= 1
    finally:
        for shard in recovered.shards:
            shard.raw.close()


def test_background_worker_serves_and_stops():
    engine = ServingEngine(make_router(), max_queue=256, batch_size=16)
    engine.start()
    try:
        futures = [engine.submit("insert", key) for key in range(50)]
        for future in futures:
            assert future.result(timeout=10) is None
        estimate = engine.submit("query", 0)
        assert estimate.result(timeout=10) >= 1
    finally:
        engine.stop()
    assert engine.router.total_count == 50


def test_run_requests_reports_overload_in_slots():
    engine = ServingEngine(make_router(), max_queue=1, batch_size=1)
    results = run_requests(engine, [("insert", key) for key in range(6)])
    succeeded = [r for r in results if r is None]
    refused = [r for r in results if isinstance(r, Overloaded)]
    assert len(succeeded) + len(refused) == 6
    assert refused                          # the bound actually bit
    assert engine.router.total_count == len(succeeded)


def test_constructor_validation():
    router = make_router(1)
    with pytest.raises(ValueError, match="max_queue"):
        ServingEngine(router, max_queue=0)
    with pytest.raises(ValueError, match="batch_size"):
        ServingEngine(router, batch_size=0)
    bad = ServingEngine(router, policy=lambda depth, limit, op: "maybe")
    with pytest.raises(ValueError, match="admission policy"):
        bad.submit("insert", 1)


def test_shed_oldest_expired_victim_counts_as_deadline_not_shed():
    # The victim of a shed whose deadline already passed while queued is
    # one event, counted once: a deadline expiry (the caller had stopped
    # waiting either way), surfaced as one typed DeadlineExceeded with
    # the unexecuted guarantee — never double-counted as a shed too.
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    engine = ServingEngine(make_router(), max_queue=2, batch_size=8,
                           policy=shed_oldest, metrics=metrics)
    first = engine.submit("insert", 1, timeout=0.05)
    second = engine.submit("insert", 2)
    clock.advance(0.1)                      # first's deadline passes
    third = engine.submit("insert", 3)      # sheds the expired victim
    error = first.exception(timeout=0)
    assert isinstance(error, DeadlineExceeded)
    assert error.unexecuted is True
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.deadline_expired_total"] == 1
    assert counters.get("engine.shed_total", 0) == 0
    assert counters["engine.failed"] == 1
    # The shed never executed: only the two live requests reach shards.
    assert engine.drain() == 2
    assert second.result(timeout=0) is None
    assert third.result(timeout=0) is None
    assert engine.router.total_count == 2
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.deadline_expired_total"] == 1


def test_shed_oldest_live_victim_still_counts_as_shed():
    clock = FakeClock()
    metrics = MetricsRegistry(clock=clock)
    engine = ServingEngine(make_router(), max_queue=2, batch_size=8,
                           policy=shed_oldest, metrics=metrics)
    first = engine.submit("insert", 1, timeout=10.0)  # alive when shed
    engine.submit("insert", 2)
    engine.submit("insert", 3)
    assert isinstance(first.exception(timeout=0), Overloaded)
    counters = engine.metrics.snapshot()["counters"]
    assert counters["engine.shed_total"] == 1
    assert counters.get("engine.deadline_expired_total", 0) == 0
