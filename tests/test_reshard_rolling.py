"""RollingReshard: live block-range migration behind dual routing.

The invariant: at every instant of a rolling reshard — before, between,
and after migration steps, under interleaved live traffic — every routed
answer is bit-identical to the unsharded oracle filter, and the old
fleet stays fully authoritative so an abort loses nothing.
"""

import random

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.persist import ConcurrentSBF
from repro.serve import (
    ReplicaSet,
    RollingReshard,
    ShardBatcher,
    ShardedSBF,
)

M, K, SEED = 4096, 4, 7


def make_oracle() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def make_fleet(n: int) -> ShardedSBF:
    return ShardedSBF.create(n, M, K, seed=SEED, method="ms",
                             backend="array", hash_family="blocked")


def workload(n: int = 500, seed: int = 3) -> list:
    rng = random.Random(seed)
    return [rng.choice([f"u:{i % 61}", rng.randrange(1 << 40)])
            for i in range(n)]


def test_rolling_4_to_6_under_live_traffic_matches_oracle():
    fleet, oracle = make_fleet(4), make_oracle()
    rng = random.Random(5)
    base = workload(400)
    for key in base:
        fleet.insert(key)
        oracle.insert(key)
    reshard = fleet.start_reshard(6)
    assert fleet.migrating
    assert reshard.remaining == [0, 1, 2, 3]
    live = iter(f"live:{i}" for i in range(240))
    while not reshard.done:
        # Interleave live writes and reads with the migration steps.
        for _ in range(60):
            key = next(live, None)
            if key is None:
                break
            count = rng.randint(1, 4)
            fleet.insert(key, count)
            oracle.insert(key, count)
            probe = rng.choice(base)
            assert fleet.query(probe) == oracle.query(probe)
            assert fleet.query(key) == oracle.query(key)
        assert fleet.total_count == oracle.total_count
        reshard.step()
    assert reshard.commit() is fleet
    assert fleet.n_shards == 6
    assert not fleet.migrating
    assert fleet.total_count == oracle.total_count
    for key in base + [f"live:{i}" for i in range(240)] + ["miss", -3]:
        assert fleet.query(key) == oracle.query(key)
    # The committed fleet is a normal fleet: deletes, union reshard, all
    # still exact.
    for key in base[:80]:
        fleet.delete(key)
        oracle.delete(key)
        assert fleet.query(key) == oracle.query(key)
    fleet.reshard(3)
    assert fleet.total_count == oracle.total_count


def test_dual_routing_reports_new_owners_for_migrated_blocks():
    fleet = make_fleet(4)
    keys = workload(200)
    for key in keys:
        fleet.insert(key)
    before = {key: fleet.shard_of(key) for key in keys}
    reshard = fleet.start_reshard(6)
    migrated = reshard.step()
    family = fleet._family
    for key in keys:
        block = family.block_of(key)
        if block % 4 == migrated:
            # Migrated keys report their new owner, offset past the old
            # id space so the two topologies cannot be confused.
            assert fleet.shard_of(key) == 4 + block % 6
        else:
            assert fleet.shard_of(key) == before[key]
    assert fleet.shard_of_many(keys) == [fleet.shard_of(k) for k in keys]
    reshard.run()
    assert [fleet.shard_of(key) for key in keys] == \
        [family.block_of(key) % 6 for key in keys]


def test_abort_mid_migration_rolls_back_cleanly():
    fleet, oracle = make_fleet(4), make_oracle()
    base = workload(300)
    for key in base:
        fleet.insert(key, 2)
        oracle.insert(key, 2)
    reshard = fleet.start_reshard(6)
    reshard.step()
    reshard.step()
    # Writes land during the half-done migration (dual-applied for the
    # migrated shards), then the whole thing is called off.
    for i in range(80):
        fleet.insert(f"mid:{i}")
        oracle.insert(f"mid:{i}")
    reshard.abort()
    assert fleet.n_shards == 4
    assert not fleet.migrating
    assert fleet.total_count == oracle.total_count
    for key in base + [f"mid:{i}" for i in range(80)]:
        assert fleet.query(key) == oracle.query(key)
    # The stale handle is inert.
    with pytest.raises(ValueError, match="no longer active"):
        reshard.step()
    with pytest.raises(ValueError, match="no longer active"):
        reshard.commit()
    # ...and a fresh migration can start over.
    fleet.start_reshard(6).run()
    assert fleet.n_shards == 6
    for key in base:
        assert fleet.query(key) == oracle.query(key)


def test_batcher_falls_back_to_routed_ops_during_migration():
    fleet, oracle = make_fleet(4), make_oracle()
    batcher = ShardBatcher(fleet)
    base = workload(200)
    for key in base:
        fleet.insert(key)
        oracle.insert(key)
    reshard = fleet.start_reshard(6)
    reshard.step()
    inserted = [f"batch:{i}" for i in range(50)]
    outcome = batcher.insert_many(inserted)
    assert outcome.ok and outcome.applied == len(inserted)
    for key in inserted:
        oracle.insert(key)
    results = batcher.execute(
        [("query", key) for key in base[:30]]
        + [("insert", "batch:x", 2), ("contains", base[0], 1)])
    assert results[:30] == [oracle.query(key) for key in base[:30]]
    oracle.insert("batch:x", 2)
    assert results[31] == oracle.contains(base[0], 1)
    estimates = batcher.query_many(base[:40] + inserted + ["batch:x"])
    assert estimates == [oracle.query(key)
                         for key in base[:40] + inserted + ["batch:x"]]
    assert fleet.metrics.counter("batch.migrating_fallback").value > 0
    reshard.run()
    for key in base + inserted:
        assert fleet.query(key) == oracle.query(key)


def test_commit_requires_every_shard_migrated():
    fleet = make_fleet(4)
    for key in workload(100):
        fleet.insert(key)
    reshard = fleet.start_reshard(6)
    reshard.step()
    with pytest.raises(ValueError, match="un-migrated"):
        reshard.commit()
    reshard.run()
    assert fleet.n_shards == 6


def test_fleet_moments_are_fenced_during_migration():
    fleet = make_fleet(4)
    for key in workload(100):
        fleet.insert(key)
    reshard = fleet.start_reshard(6)
    for call in (lambda: fleet.reshard(2), lambda: fleet.start_reshard(3),
                 fleet.checkpoint, fleet.dump_manifest):
        with pytest.raises(ValueError, match="rolling reshard"):
            call()
    assert fleet.metrics.gauge("router.migrating").value == 1.0
    reshard.run()
    assert fleet.metrics.gauge("router.migrating").value == 0.0
    fleet.checkpoint()                         # fences lift after commit
    fleet.dump_manifest()


def test_rolling_reshard_preconditions():
    unblocked = ShardedSBF.create(4, M, K, seed=SEED, method="ms",
                                  backend="array", hash_family="modmul")
    with pytest.raises(ValueError, match="blocked"):
        unblocked.start_reshard(6)
    rm_fleet = ShardedSBF.create(4, M, K, seed=SEED, method="rm",
                                 backend="array", hash_family="blocked")
    with pytest.raises(ValueError, match="Minimum Selection"):
        rm_fleet.start_reshard(6)
    with pytest.raises(ValueError, match=">= 1"):
        make_fleet(4).start_reshard(0)
    replicated = ShardedSBF([ReplicaSet([ConcurrentSBF(make_oracle())])])
    with pytest.raises(ValueError, match="replicated"):
        replicated.start_reshard(3)


def test_rolling_reshard_refuses_durable_shards(tmp_path):
    fleet = ShardedSBF.create(2, M, K, seed=SEED,
                              durable_root=str(tmp_path))
    try:
        with pytest.raises(ValueError, match="manifest"):
            fleet.start_reshard(3)
    finally:
        for shard in fleet.shards:
            shard.raw.close()


def test_rolling_reshard_shrinks_and_to_one():
    for new_n in (3, 1, 7):
        fleet, oracle = make_fleet(4), make_oracle()
        keys = workload(250, seed=new_n)
        for key in keys:
            fleet.insert(key, 2)
            oracle.insert(key, 2)
        handle = fleet.start_reshard(new_n)
        assert isinstance(handle, RollingReshard)
        handle.run()
        assert fleet.n_shards == new_n
        assert fleet.total_count == oracle.total_count
        for key in keys:
            assert fleet.query(key) == oracle.query(key)
        if new_n == 1:
            # Rolled all the way down, the single shard IS the unsharded
            # filter, counter for counter.
            assert list(fleet.shards[0].sbf.counters) == \
                list(oracle.counters)
