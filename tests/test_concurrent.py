"""Multi-threaded stress tests for the concurrency-safe serving handle.

The acceptance contract: >= 8 threads of mixed insert/delete/query traffic
plus concurrent checkpoints finish with *exact* final counter sums (every
thread's contribution fully applied, none lost to a race) and zero
deadlocks or lock timeouts; and the bounded-wait acquisition raises a
typed :class:`LockTimeout` instead of hanging when a lock genuinely cannot
be had.
"""

import threading
import time

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import load_sbf
from repro.persist import ConcurrentSBF, DurableSBF, LockTimeout, recover

THREADS = 8
ROUNDS = 60


def _mixed_workload(handle, thread_id, errors, barrier):
    """Deterministic per-thread traffic: insert 2, query, delete 1 → every
    surviving key nets exactly +1 per round."""
    try:
        barrier.wait(timeout=30)
        for round_no in range(ROUNDS):
            key = f"t{thread_id}-r{round_no}"
            handle.insert(key, 2)
            assert handle.query(key) >= 2
            handle.delete(key, 1)
            handle.query(f"t{(thread_id + 1) % THREADS}-r{round_no}")
    except BaseException as exc:  # propagate to the main thread
        errors.append(exc)


def _run_threads(target, args_for):
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS + 1)
    threads = [threading.Thread(target=target, args=args_for(i, errors,
                                                             barrier))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "worker thread deadlocked"
    if errors:
        raise errors[0]
    return errors


def _expected_filter(m, k, seed):
    expected = SpectralBloomFilter(m, k, seed=seed)
    for thread_id in range(THREADS):
        for round_no in range(ROUNDS):
            expected.insert(f"t{thread_id}-r{round_no}", 1)
    return expected


class TestConcurrentStress:
    def test_mixed_traffic_exact_final_state(self):
        handle = ConcurrentSBF(SpectralBloomFilter(2048, 4, seed=11),
                               stripes=16, timeout=30.0)
        _run_threads(_mixed_workload,
                     lambda i, errors, barrier: (handle, i, errors, barrier))
        expected = _expected_filter(2048, 4, 11)
        assert handle.total_count == THREADS * ROUNDS
        assert handle._sbf.counters.to_list() \
            == expected.counters.to_list()
        assert handle.check_integrity() == []
        assert handle.lock_timeouts == 0

    def test_mixed_traffic_with_concurrent_checkpoints(self, tmp_path):
        durable = DurableSBF.open(
            str(tmp_path), fsync="checkpoint",
            factory=lambda: SpectralBloomFilter(2048, 4, seed=11))
        handle = ConcurrentSBF(durable, stripes=16, timeout=30.0)

        stop = threading.Event()
        checkpoint_errors: list[BaseException] = []

        def checkpointer():
            try:
                while not stop.is_set():
                    handle.checkpoint()
                    time.sleep(0.002)
            except BaseException as exc:
                checkpoint_errors.append(exc)

        ckpt_thread = threading.Thread(target=checkpointer)
        ckpt_thread.start()
        try:
            _run_threads(_mixed_workload,
                         lambda i, errors, barrier: (handle, i, errors,
                                                     barrier))
        finally:
            stop.set()
            ckpt_thread.join(timeout=60)
        assert not ckpt_thread.is_alive(), "checkpointer deadlocked"
        if checkpoint_errors:
            raise checkpoint_errors[0]

        expected = _expected_filter(2048, 4, 11)
        assert handle.total_count == THREADS * ROUNDS
        assert handle._sbf.counters.to_list() \
            == expected.counters.to_list()
        assert handle.check_integrity() == []
        assert handle.lock_timeouts == 0
        assert durable.checkpoints >= 1

        # And the durable state equals the served state after a final
        # checkpoint: a restart loses nothing.
        handle.checkpoint()
        durable.close()
        recovered, _ = recover(str(tmp_path))
        assert recovered.counters.to_list() == expected.counters.to_list()

    def test_concurrent_sets_are_serialised(self):
        handle = ConcurrentSBF(SpectralBloomFilter(1024, 4, seed=5),
                               stripes=8, timeout=30.0)
        errors: list[BaseException] = []
        barrier = threading.Barrier(THREADS)

        def setter(thread_id):
            try:
                barrier.wait(timeout=30)
                for round_no in range(ROUNDS):
                    handle.set("shared", (thread_id * ROUNDS + round_no)
                               % 7 + 1)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=setter, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not errors
        # Whatever interleaving won, the filter is exactly "one key set to
        # some value in [1, 7]" — sets never compound or tear.
        value = handle.query("shared")
        assert 1 <= value <= 7
        assert handle.total_count == value
        assert handle.check_integrity() == []


class TestBoundedWaits:
    def test_blocked_stripe_raises_typed_timeout(self):
        handle = ConcurrentSBF(SpectralBloomFilter(512, 4, seed=2),
                               stripes=4, timeout=0.05)
        # Hold every stripe hostage from another thread.
        for lock in handle._locks:
            lock.acquire()
        try:
            with pytest.raises(LockTimeout):
                handle.insert("anything")
            with pytest.raises(TimeoutError):  # the typed alias holds
                handle.query("anything")
        finally:
            for lock in handle._locks:
                lock.release()
        assert handle.lock_timeouts >= 2
        # The filter stayed consistent: the failed ops applied nothing.
        assert handle.total_count == 0
        handle.insert("anything")  # and the handle still works
        assert handle.query("anything") == 1

    def test_writer_lock_timeout_on_checkpoint(self):
        handle = ConcurrentSBF(SpectralBloomFilter(512, 4, seed=2),
                               stripes=4, timeout=0.05)
        handle._writer.acquire()
        try:
            with pytest.raises(LockTimeout):
                handle.checkpoint()
        finally:
            handle._writer.release()
        frame = handle.checkpoint()
        assert load_sbf(frame).m == 512

    def test_per_call_timeout_override(self):
        handle = ConcurrentSBF(SpectralBloomFilter(512, 4, seed=2),
                               stripes=2, timeout=60.0)
        handle._locks[0].acquire()
        handle._locks[1].acquire()
        try:
            with pytest.raises(LockTimeout):
                handle.insert("k", timeout=0.01)
        finally:
            handle._locks[0].release()
            handle._locks[1].release()


class TestMethodDegradation:
    def test_non_ms_methods_serialise_on_one_stripe(self):
        handle = ConcurrentSBF(
            SpectralBloomFilter(1024, 4, seed=9, method="rm"), stripes=16)
        assert handle.stripes == 1
        _run_threads(_mixed_workload,
                     lambda i, errors, barrier: (handle, i, errors, barrier))
        assert handle.total_count == THREADS * ROUNDS
        assert handle.check_integrity() == []

    def test_compact_backends_serialise_on_one_stripe(self):
        # A String-Array Index expansion shifts neighbouring fields (and
        # can rebuild the whole index) and a coded-stream update
        # re-encodes a chunk holding other counters, so two threads on
        # disjoint stripes could corrupt counters neither locked —
        # striping is unsafe for any non-array backend, even with MS.
        for backend in ("compact", "stream"):
            handle = ConcurrentSBF(
                SpectralBloomFilter(256, 4, seed=9, backend=backend),
                stripes=16)
            assert handle.stripes == 1
        # ... while MS over the array backend keeps its stripes.
        assert ConcurrentSBF(SpectralBloomFilter(256, 4, seed=9),
                             stripes=16).stripes == 16

    def test_compact_backend_mixed_traffic_exact_final_state(self):
        handle = ConcurrentSBF(
            SpectralBloomFilter(1024, 4, seed=9, backend="compact"),
            stripes=16, timeout=30.0)
        _run_threads(_mixed_workload,
                     lambda i, errors, barrier: (handle, i, errors, barrier))
        assert handle.total_count == THREADS * ROUNDS
        assert handle.lock_timeouts == 0
        assert handle.check_integrity() == []

    def test_bad_construction_arguments(self):
        sbf = SpectralBloomFilter(64, 2, seed=0)
        with pytest.raises(ValueError):
            ConcurrentSBF(sbf, stripes=0)
        with pytest.raises(ValueError):
            ConcurrentSBF(sbf, timeout=0)


class TestSharedReadPath:
    """The group gate: bulk readers overlap; mutators exclude them."""

    def _loaded_handle(self):
        handle = ConcurrentSBF(
            SpectralBloomFilter(2048, 4, seed=4, backend="numpy"))
        handle.insert_many(list(range(300)), [2] * 300)
        return handle

    def test_concurrent_bulk_readers_overlap(self):
        # Two query_many calls must be inside the read side at the same
        # time; with the old all-locks path the second would block and
        # the barrier would time out.
        handle = self._loaded_handle()
        inside = threading.Barrier(2, timeout=5)
        errors = []

        def reader():
            try:
                handle._enter_gate(read=True, timeout=2.0)
                try:
                    inside.wait()
                finally:
                    handle._gate.exit_read()
                handle.query_many(list(range(100)))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), "reader deadlocked"
        assert not errors

    def test_reader_blocks_mutators_until_it_leaves(self):
        handle = self._loaded_handle()
        handle._enter_gate(read=True, timeout=1.0)
        try:
            with pytest.raises(LockTimeout):
                handle.insert(1, 1, timeout=0.05)
            with pytest.raises(LockTimeout):
                handle.insert_many([1, 2], [1, 1], timeout=0.05)
        finally:
            handle._gate.exit_read()
        before = handle.query(1)
        handle.insert(1, 1, timeout=1.0)  # free again
        assert handle.query(1) == before + 1

    def test_waiting_mutator_bars_new_readers(self):
        # Writer preference: while a mutator waits on an active reader,
        # a newly arriving reader must queue behind it.
        handle = self._loaded_handle()
        handle._enter_gate(read=True, timeout=1.0)
        release = threading.Event()
        done = []

        def mutator():
            handle._enter_gate(read=False, timeout=10.0)
            try:
                done.append("mutated")
            finally:
                handle._gate.exit_mutate()

        thread = threading.Thread(target=mutator)
        thread.start()
        deadline = time.monotonic() + 5
        while handle._gate._mutators_waiting == 0:
            assert time.monotonic() < deadline, "mutator never queued"
            time.sleep(0.005)
        with pytest.raises(LockTimeout):  # reader barred by the waiter
            handle.query_many([1, 2, 3], timeout=0.05)
        handle._gate.exit_read()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert done == ["mutated"]
        assert list(handle.query_many([0])) == [2]  # gate fully released

    def test_mixed_reader_writer_storm_exact_final_state(self):
        handle = self._loaded_handle()
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for i in range(200):
                    handle.insert(i % 40, 1)
            except BaseException as exc:
                errors.append(exc)

        def bulk_reader():
            try:
                while not stop.is_set():
                    values = handle.query_many(list(range(40)))
                    # A consistent cut: never a torn/negative estimate.
                    assert all(int(v) >= 2 for v in values)
            except BaseException as exc:
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=bulk_reader) for _ in range(4)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60)
            assert not thread.is_alive(), "writer deadlocked"
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
            assert not thread.is_alive(), "reader deadlocked"
        assert not errors, errors[:1]
        assert handle.total_count == 600 + 4 * 200
        final = handle.query_many(list(range(40)))
        assert all(int(v) >= 2 + 20 for v in final)
