"""Tests for the §4.2 select-based access alternative."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.succinct.select_access import SelectAccessIndex
from repro.succinct.string_array import StringArrayIndex


class TestBasics:
    def test_construction_and_reads(self):
        values = [0, 1, 5, 1000, 3]
        idx = SelectAccessIndex(values)
        assert idx.to_list() == values
        assert len(idx) == 5
        assert idx[3] == 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            SelectAccessIndex([])
        with pytest.raises(ValueError):
            SelectAccessIndex([-1])
        idx = SelectAccessIndex([1])
        with pytest.raises(IndexError):
            idx.get(1)
        with pytest.raises(IndexError):
            idx.set(-1, 0)
        with pytest.raises(ValueError):
            idx.set(0, -2)

    def test_positions_via_select(self):
        values = [7, 1, 300]
        idx = SelectAccessIndex(values)
        assert idx.position(0) == 0
        assert idx.position(1) == 3   # width(7) = 3
        assert idx.position(2) == 4   # + width(1) = 1

    def test_in_place_write(self):
        idx = SelectAccessIndex([5, 9])
        idx.set(0, 7)  # same width
        assert idx.to_list() == [7, 9]
        assert idx.rebuilds == 0

    def test_width_growth_forces_rebuild(self):
        """§4.2's criticism: updates are O(N) for this structure."""
        idx = SelectAccessIndex([1, 1, 1])
        idx.set(1, 1000)
        assert idx.to_list() == [1, 1000, 1]
        assert idx.rebuilds == 1

    def test_increment(self):
        idx = SelectAccessIndex([3])
        assert idx.increment(0, 4) == 7
        with pytest.raises(ValueError):
            idx.increment(0, -100)

    def test_storage_breakdown(self):
        idx = SelectAccessIndex([1] * 100)
        parts = idx.storage_breakdown()
        assert parts["data"] == 100
        assert parts["markers"] == 100
        assert parts["directory"] > 0
        assert idx.total_bits() == sum(parts.values())


class TestAgainstStringArray:
    """The two solutions to the variable-length access problem agree."""

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=120))
    def test_reads_agree(self, values):
        select_idx = SelectAccessIndex(values)
        sai = StringArrayIndex(values)
        assert select_idx.to_list() == sai.to_list()

    def test_update_cost_asymmetry(self):
        """The paper's motivation: growing updates rebuild the select
        structure every time, while the SAI's slack absorbs them."""
        n = 200
        rng = random.Random(5)
        select_idx = SelectAccessIndex([1] * n)
        sai = StringArrayIndex([1] * n)
        for _ in range(300):
            i = rng.randrange(n)
            delta = rng.randrange(1, 50)
            select_idx.increment(i, delta)
            sai.increment(i, delta)
        assert select_idx.to_list() == sai.to_list()
        assert select_idx.rebuilds > 10 * max(1, sai.rebuilds)

    def test_string_array_index_is_smaller_even_statically(self):
        """The select reduction pays a full N-bit marker vector on top of
        the data; the SAI's offset hierarchy undercuts that, so it wins on
        storage as well as on update cost."""
        values = [random.Random(2).randrange(1, 500) for _ in range(3000)]
        select_idx = SelectAccessIndex(values)
        sai = StringArrayIndex(values)
        assert sai.total_bits() < select_idx.total_bits()
        # The marker vector is the culprit: as large as the data itself.
        parts = select_idx.storage_breakdown()
        assert parts["markers"] == parts["data"]
