"""Additional cross-cutting property tests on the paper's guarantees."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import SpectralBloomFilter
from repro.core.serialize import dump_sbf, load_sbf
from repro.succinct.string_array import StringArrayIndex

key_counts = st.dictionaries(st.integers(0, 60), st.integers(1, 8),
                             min_size=1, max_size=40)


class TestJoinMultiplication:
    @settings(max_examples=25)
    @given(key_counts, key_counts)
    def test_product_upper_bounds_join_multiplicity(self, left, right):
        """§2.2: for any pair of multisets, ``min_i(a_i * b_i)`` never
        under-counts the join multiplicity ``f^a_x * f^b_x``."""
        a = SpectralBloomFilter(400, 4, seed=77)
        b = SpectralBloomFilter(400, 4, seed=77)
        a.update(left)
        b.update(right)
        product = a * b
        for key in set(left) | set(right):
            expected = left.get(key, 0) * right.get(key, 0)
            assert product.query(key) >= expected

    @settings(max_examples=25)
    @given(key_counts, key_counts)
    def test_union_commutes(self, left, right):
        a = SpectralBloomFilter(400, 4, seed=78)
        b = SpectralBloomFilter(400, 4, seed=78)
        a.update(left)
        b.update(right)
        ab = a + b
        ba = b + a
        assert list(ab) == list(ba)

    @settings(max_examples=25)
    @given(key_counts)
    def test_difference_of_self_is_empty(self, counts):
        a = SpectralBloomFilter(400, 4, seed=79)
        a.update(counts)
        empty = a - a
        assert all(c == 0 for c in empty)
        assert empty.total_count == 0


class TestSerializationProperties:
    @settings(max_examples=20)
    @given(key_counts, st.sampled_from(["ms", "mi", "rm"]))
    def test_roundtrip_preserves_all_estimates(self, counts, method):
        sbf = SpectralBloomFilter(300, 3, method=method, seed=80)
        sbf.update(counts)
        restored = load_sbf(dump_sbf(sbf))
        for key in range(70):
            assert restored.query(key) == sbf.query(key)

    @settings(max_examples=20)
    @given(key_counts)
    def test_shipped_filters_remain_algebra_compatible(self, counts):
        a = SpectralBloomFilter(300, 3, seed=81)
        a.update(counts)
        restored = load_sbf(dump_sbf(a))
        doubled = a + restored
        for key, f in counts.items():
            assert doubled.query(key) >= 2 * f


class TestHeavyGroupDynamics:
    def test_updates_inside_complete_offset_vector_groups(self):
        """Groups above (log N)^3 bits use complete level-2 vectors; their
        expand/push machinery must work like everyone else's."""
        values = [2**499] * 48
        sai = StringArrayIndex(values, group_items=8)
        assert any(g.complete for g in sai._groups)
        rng = random.Random(9)
        model = list(values)
        for _ in range(200):
            i = rng.randrange(len(model))
            delta = rng.randrange(1, 2**50)
            model[i] += delta
            sai.increment(i, delta)
        assert sai.to_list() == model

    def test_mixed_light_and_heavy_groups(self):
        values = [1] * 32 + [2**499] * 32 + [7] * 32
        sai = StringArrayIndex(values, group_items=8)
        flags = [g.complete for g in sai._groups]
        assert any(flags) and not all(flags)
        for i in (0, 33, 70):
            sai.increment(i, 5)
        expected = list(values)
        for i in (0, 33, 70):
            expected[i] += 5
        assert sai.to_list() == expected


class TestKeyTypeDiversity:
    @pytest.mark.parametrize("keys", [
        ["alpha", "beta", "gamma"],
        [b"raw", b"bytes", b"here"],
        [(1, "compound"), (2, "keys"), (1, "different")],
        [1.5, 2.5, -3.25],
        [None, True, 0],
    ])
    def test_all_supported_key_types_roundtrip(self, keys):
        sbf = SpectralBloomFilter(500, 4, seed=82)
        for i, key in enumerate(keys):
            sbf.insert(key, i + 1)
        for i, key in enumerate(keys):
            assert sbf.query(key) >= i + 1

    def test_unsupported_key_type_raises(self):
        sbf = SpectralBloomFilter(100, 3)
        with pytest.raises(TypeError):
            sbf.insert(["lists", "are", "unhashable here"])
