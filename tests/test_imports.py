"""Import-surface tests: the public API is what the __init__s say it is.

Downstream code (examples, benchmarks, the CI smoke jobs) imports from
the package roots — ``repro``, ``repro.persist``, ``repro.serve`` — not
from private modules.  These tests pin that surface: every advertised
name resolves, nothing is advertised twice, and the serving/persistence
types the examples rely on stay exported.
"""

import pytest

import repro
import repro.persist
import repro.scenario
import repro.serve
import repro.tenancy


@pytest.mark.parametrize("module",
                         [repro, repro.persist, repro.scenario, repro.serve,
                          repro.tenancy],
                         ids=lambda m: m.__name__)
def test_every_advertised_name_resolves(module):
    assert module.__all__, f"{module.__name__} advertises nothing"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, \
            f"{module.__name__}.__all__ lists {name!r} but it is missing"


@pytest.mark.parametrize("module",
                         [repro, repro.persist, repro.scenario, repro.serve,
                          repro.tenancy],
                         ids=lambda m: m.__name__)
def test_no_duplicate_exports(module):
    assert len(module.__all__) == len(set(module.__all__))


def test_persist_public_surface():
    expected = {
        "ConcurrentSBF", "DurableSBF", "LockTimeout",
        "WriteAheadLog", "WALRecord", "replay",
        "SnapshotStore", "recover", "RecoveryReport",
        "CrashIO", "SimulatedCrash",
    }
    assert expected <= set(repro.persist.__all__)


def test_tenancy_public_surface():
    expected = {
        "SpectralBloofiTree", "TenantDirectory", "UnknownTenant",
        "TREE_MAGIC", "load_tree", "split_key",
    }
    assert expected <= set(repro.tenancy.__all__)


def test_serve_public_surface():
    expected = {
        "ShardedSBF", "ShardBatcher", "ServingEngine",
        "Overloaded", "reject_new", "shed_oldest", "run_requests",
        "MetricsRegistry", "Counter", "Gauge", "Histogram",
        "ChannelStats", "RemoteShard", "RemoteShardError", "ShardServer",
        "MANIFEST_MAGIC",
    }
    assert expected <= set(repro.serve.__all__)


def test_channel_stats_is_the_transport_one():
    from repro.db.transport import ChannelStats
    assert repro.serve.ChannelStats is ChannelStats
    stats = ChannelStats()
    snapshot = stats.as_dict()
    assert snapshot["attempts"] == 0
    assert set(snapshot) == set(ChannelStats.__slots__)


def test_scenario_public_surface():
    expected = {
        "SimClock", "SpecError", "load_spec", "parse_simple_yaml",
        "WorkloadGenerator", "build_topology", "FaultSchedule",
        "OracleChecker", "OracleViolation", "PhaseObserver",
        "ScenarioRunner", "run_scenario", "aggregate",
        "compare_to_baseline", "SEED_NAMES", "load_seed",
    }
    assert expected <= set(repro.scenario.__all__)
