"""Unit tests for the crash-consistent persistence layer.

The exhaustive crash-schedule matrices live in ``test_crash.py`` (marker
``crash``); this file covers the building blocks: WAL record discipline,
fsync policies, atomic snapshots with generation fallback, recovery
plumbing, the durable handle, and the app-layer wiring.
"""

import os

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import WireFormatError, open_frame, seal_frame
from repro.apps.sliding_window import SlidingWindowSBF
from repro.apps.summary_cache import build_mesh
from repro.persist import (
    CrashIO,
    DurableSBF,
    FileIO,
    RecoveryError,
    SimulatedCrash,
    SnapshotStore,
    WALError,
    WriteAheadLog,
    atomic_write_bytes,
    flip_bit,
    recover,
    replay,
    torn_write,
)


def factory():
    return SpectralBloomFilter(128, 4, seed=7)


class RecordingIO(FileIO):
    """A FileIO that records which directories were fsynced."""

    def __init__(self):
        super().__init__()
        self.dir_fsyncs: list[str] = []

    def fsync_dir(self, path: str) -> None:
        self.dir_fsyncs.append(path)
        super().fsync_dir(path)


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWAL:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            assert wal.log_insert("a", 3) == 1
            assert wal.log_delete("a", 1) == 2
            assert wal.log_set("b", 5) == 3
        records, scan = replay(path)
        assert [(r.op_name, r.key, r.count) for r in records] == [
            ("insert", "a", 3), ("delete", "a", 1), ("set", "b", 5)]
        assert scan.last_seq == 3 and scan.reason is None
        assert scan.good_end == os.path.getsize(path)

    def test_key_types_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        keys = ["text", 42, -7, 3.5, True, None]
        with WriteAheadLog(path) as wal:
            for key in keys:
                wal.log_insert(key)
        records, _ = replay(path)
        assert [r.key for r in records] == keys

    def test_non_scalar_key_rejected_before_logging(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            with pytest.raises(TypeError):
                wal.log_insert(("tuple", "key"))
        records, scan = replay(path)
        assert records == [] and scan.reason is None

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.log_insert("a")
            wal.log_insert("b")
        with WriteAheadLog(path) as wal:
            assert wal.log_insert("c") == 3
        records, _ = replay(path)
        assert [r.seq for r in records] == [1, 2, 3]

    def test_next_seq_cannot_reuse(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.log_insert("a")
            wal.log_insert("b")
        with pytest.raises(WALError):
            WriteAheadLog(path, next_seq=2)

    def test_torn_tail_is_detected_and_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.log_insert("a", 3)
            wal.log_insert("b", 2)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        records, scan = replay(path)
        assert [r.key for r in records] == ["a"]
        assert scan.reason is not None
        # Reopening heals the file and reuses nothing.
        with WriteAheadLog(path) as wal:
            assert wal.log_insert("c") == 2
        records, scan = replay(path)
        assert [r.key for r in records] == ["a", "c"]
        assert scan.reason is None

    def test_bit_flip_stops_replay_before_corrupt_record(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.log_insert("a", 1)
            second_start = os.path.getsize(path)
            wal.log_insert("b", 1)
            wal.log_insert("c", 1)
        flip_bit(path, (second_start + 6) * 8)
        records, scan = replay(path)
        # The corrupt record and everything after it are never yielded.
        assert [r.key for r in records] == ["a"]
        assert scan.good_end == second_start
        assert "checksum" in scan.reason or "sequence" in scan.reason \
            or "corrupt" in scan.reason or "length" in scan.reason \
            or "torn" in scan.reason or "unknown" in scan.reason \
            or "malformed" in scan.reason

    def test_fsync_policies(self, tmp_path):
        io_always = FileIO()
        wal = WriteAheadLog(str(tmp_path / "a.log"), fsync="always",
                            io=io_always)
        for i in range(4):
            wal.log_insert(i)
        wal.close()
        assert io_always.fsync_calls >= 4

        io_n = FileIO()
        wal = WriteAheadLog(str(tmp_path / "n.log"), fsync=4, io=io_n)
        for i in range(8):
            wal.log_insert(i)
        appends_synced = io_n.fsync_calls
        wal.close()
        assert appends_synced == 2  # every 4 appends

        io_ckpt = FileIO()
        wal = WriteAheadLog(str(tmp_path / "c.log"), fsync="checkpoint",
                            io=io_ckpt)
        for i in range(8):
            wal.log_insert(i)
        assert io_ckpt.fsync_calls == 0
        wal.sync()
        assert io_ckpt.fsync_calls == 1
        wal.close()

    def test_new_log_fsyncs_its_directory_entry(self, tmp_path):
        # Without the directory fsync, a power cut can drop the freshly
        # created file — losing appends acknowledged under fsync="always".
        io = RecordingIO()
        with WriteAheadLog(str(tmp_path / "wal.log"), io=io):
            pass
        assert io.dir_fsyncs == [str(tmp_path)]
        # Reopening an existing log needs no new directory entry.
        reopen_io = RecordingIO()
        with WriteAheadLog(str(tmp_path / "wal.log"), io=reopen_io):
            pass
        assert reopen_io.dir_fsyncs == []

    def test_bad_policy_rejected(self, tmp_path):
        for bad in ("sometimes", 0, -2, True, 1.5):
            with pytest.raises(ValueError):
                WriteAheadLog(str(tmp_path / "x.log"), fsync=bad)

    def test_reset_keeps_sequence_monotonic(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.log_insert("a")
            wal.log_insert("b")
            wal.reset()
            assert wal.log_insert("c") == 3
        records, _ = replay(path)
        assert [(r.seq, r.key) for r in records] == [(3, "c")]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        sbf = factory()
        sbf.insert("a", 3)
        sbf.insert("b", 1)
        store.save(sbf, seq=17)
        loaded, seq, gen, rejected = store.load_latest()
        assert (seq, gen, rejected) == (17, 1, [])
        assert loaded.counters.to_list() == sbf.counters.to_list()
        assert loaded.query("a") == 3

    def test_generations_increase_and_prune(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        sbf = factory()
        for seq in (1, 2, 3, 4):
            sbf.insert(f"k{seq}")
            store.save(sbf, seq=seq)
        gens = store.generations()
        assert [g for g, _, _ in gens] == [3, 4]

    def test_prune_never_counts_corrupt_generations(self, tmp_path):
        # With generations [1=good, 2=corrupt], saving generation 3 must
        # not delete gen 1: it is the only decodable fallback, and the
        # retain=2 window is "current plus fallback" in *valid* snapshots.
        store = SnapshotStore(str(tmp_path), retain=2)
        sbf = factory()
        sbf.insert("a", 2)
        store.save(sbf, seq=1)
        path2 = store.save(sbf, seq=2)
        flip_bit(path2, 200)
        sbf.insert("b")
        path3 = store.save(sbf, seq=3)
        assert [g for g, _, _ in store.generations()] == [1, 2, 3]
        # If gen 3 then rots too, recovery still reaches the good gen 1.
        flip_bit(path3, 200)
        loaded, seq, gen, rejected = store.load_latest()
        assert (seq, gen) == (1, 1)
        assert len(rejected) == 2
        assert loaded.query("a") == 2

    def test_atomic_write_fsyncs_directory_after_rename(self, tmp_path):
        io = RecordingIO()
        atomic_write_bytes(str(tmp_path / "state.bin"), b"payload", io=io)
        assert io.dir_fsyncs == [str(tmp_path)]

    def test_corrupt_newest_falls_back_a_generation(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        sbf = factory()
        sbf.insert("a", 2)
        store.save(sbf, seq=1)
        sbf.insert("b", 5)
        path2 = store.save(sbf, seq=2)
        flip_bit(path2, 123)
        loaded, seq, gen, rejected = store.load_latest()
        assert gen == 1 and seq == 1
        assert rejected == [os.path.basename(path2)]
        assert loaded.query("a") == 2 and loaded.query("b") == 0

    def test_all_generations_corrupt_returns_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        sbf = factory()
        path = store.save(sbf, seq=1)
        flip_bit(path, 99)
        assert store.load_latest() is None

    def test_renamed_snapshot_is_rejected(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        sbf = factory()
        path = store.save(sbf, seq=5)
        # An operator "helpfully" renames the file to a different seq.
        os.rename(path, str(tmp_path / "snap-00000001-9.sbf"))
        assert store.load_latest() is None

    def test_tmp_leftover_is_ignored(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        sbf = factory()
        sbf.insert("a")
        store.save(sbf, seq=1)
        (tmp_path / "snap-00000002.tmp").write_bytes(b"half a snapsho")
        loaded, seq, gen, _ = store.load_latest()
        assert (seq, gen) == (1, 1)

    def test_atomic_write_crash_before_replace_leaves_target_intact(
            self, tmp_path):
        path = str(tmp_path / "state.bin")
        atomic_write_bytes(path, b"generation one")
        io = CrashIO(crash_before_replace=1)
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, b"generation two", io=io)
        assert open(path, "rb").read() == b"generation one"


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_wal_only_recovery(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.log_insert("a", 3)
        wal.log_insert("b", 1)
        wal.log_delete("a", 1)
        wal.log_set("c", 4)
        wal.close()
        sbf, report = recover(str(tmp_path), factory=factory)
        assert (sbf.query("a"), sbf.query("b"), sbf.query("c")) == (2, 1, 4)
        assert not report.used_snapshot
        assert report.records_replayed == 4
        assert report.integrity_issues == []

    def test_snapshot_plus_wal_suffix(self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        handle.insert("a", 3)
        handle.checkpoint()
        handle.insert("b", 2)
        handle.close()
        sbf, report = recover(str(tmp_path), factory=factory)
        assert report.used_snapshot and report.snapshot_seq == 1
        assert report.records_replayed == 1
        assert sbf.query("a") == 3 and sbf.query("b") == 2

    def test_no_state_and_no_factory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(str(tmp_path))

    def test_torn_tail_is_truncated(self, tmp_path):
        wal_path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(wal_path)
        wal.log_insert("a", 1)
        wal.log_insert("b", 1)
        wal.close()
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as f:
            f.truncate(size - 2)
        sbf, report = recover(str(tmp_path), factory=factory)
        assert sbf.query("a") == 1 and sbf.query("b") == 0
        assert report.torn_tail is not None
        assert os.path.getsize(wal_path) == report.truncated_at

    def test_set_records_replay_to_live_state(self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        handle.insert("x", 10)
        handle.set("x", 4)
        handle.set("y", 7)
        handle.set("x", 0)
        live = handle.sbf.counters.to_list()
        handle.close()
        sbf, _ = recover(str(tmp_path), factory=factory)
        assert sbf.counters.to_list() == live

    def test_recovery_audits_integrity(self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        handle.insert("a", 3)
        path = handle.checkpoint()
        handle.close()
        assert recover(str(tmp_path), factory=factory)[1].integrity_issues \
            == []


# ----------------------------------------------------------------------
# the durable handle
# ----------------------------------------------------------------------
class TestDurableSBF:
    def test_acknowledged_ops_survive_restart(self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        handle.insert("a", 3)
        handle.insert("b")
        handle.delete("a")
        handle.close()
        reopened = DurableSBF.open(str(tmp_path), factory=factory)
        assert reopened.query("a") == 2 and reopened.query("b") == 1
        assert reopened.last_recovery.records_replayed == 3
        # Sequence numbering continues where the log left off.
        assert reopened.insert("c") == 4

    def test_checkpoint_resets_wal_and_recovery_prefers_snapshot(
            self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        for i in range(10):
            handle.insert(f"k{i}")
        handle.checkpoint()
        assert os.path.getsize(str(tmp_path / "wal.log")) == 0
        handle.insert("tail")
        handle.close()
        reopened = DurableSBF.open(str(tmp_path), factory=factory)
        assert reopened.last_recovery.snapshot_seq == 10
        assert reopened.last_recovery.records_replayed == 1
        assert reopened.query("tail") == 1

    def test_invalid_delete_never_poisons_the_log(self, tmp_path):
        handle = DurableSBF.open(str(tmp_path), factory=factory)
        handle.insert("a", 1)
        with pytest.raises(ValueError):
            handle.delete("a", 5)
        handle.close()
        sbf, report = recover(str(tmp_path), factory=factory)
        assert sbf.query("a") == 1
        assert report.records_replayed == 1

    def test_open_without_state_requires_factory(self, tmp_path):
        with pytest.raises(ValueError):
            DurableSBF.open(str(tmp_path))

    def test_rm_method_round_trips(self, tmp_path):
        def rm_factory():
            return SpectralBloomFilter(128, 4, seed=3, method="rm")
        handle = DurableSBF.open(str(tmp_path), factory=rm_factory)
        for key, count in [("a", 5), ("b", 2), ("c", 1)]:
            handle.insert(key, count)
        handle.delete("a", 2)
        handle.checkpoint()
        handle.insert("d", 7)
        live = {key: handle.query(key) for key in "abcd"}
        handle.close()
        reopened = DurableSBF.open(str(tmp_path), factory=rm_factory)
        assert {key: reopened.query(key) for key in "abcd"} == live
        assert reopened.sbf.check_integrity() == []


# ----------------------------------------------------------------------
# frame helpers
# ----------------------------------------------------------------------
class TestFrameHelpers:
    def test_seal_open_round_trip(self):
        frame = seal_frame(b"RXT1", {"x": 1}, b"payload")
        meta, payload = open_frame(frame, b"RXT1")
        assert meta == {"x": 1} and payload == b"payload"

    def test_reserved_magics_rejected(self):
        for magic in (b"RSB2", b"RBF2", b"RSB1", b"RBF1"):
            with pytest.raises(ValueError):
                seal_frame(magic, {}, b"")
        with pytest.raises(ValueError):
            seal_frame(b"LONGMAGIC", {}, b"")

    def test_open_frame_detects_corruption(self):
        frame = bytearray(seal_frame(b"RXT1", {"x": 1}, b"payload"))
        frame[-6] ^= 0x40
        with pytest.raises(WireFormatError):
            open_frame(bytes(frame), b"RXT1")


# ----------------------------------------------------------------------
# app wiring: sliding window
# ----------------------------------------------------------------------
class TestDurableSlidingWindow:
    def test_checkpoint_restore_round_trip(self, tmp_path):
        window = SlidingWindowSBF(5, 256, 4, method="rm", seed=3)
        window.extend(["a", "b", "a", "c", "d", "e", "a"])
        window.checkpoint(str(tmp_path))
        restored = SlidingWindowSBF.restore(str(tmp_path))
        assert restored.window == window.window
        assert len(restored) == len(window)
        for key in "abcdef":
            assert restored.query(key) == window.query(key)
        # The restored window keeps sliding correctly.
        evicted = restored.push("f")
        assert evicted == "a"  # the oldest buffered item, restored in order
        assert restored.query("f") >= 1
        assert restored.true_count("a") == 1

    def test_checkpoint_rejects_non_scalar_buffer_items(self, tmp_path):
        # A tuple is hashable (the window accepts it) but serializes to a
        # JSON list, so a checkpoint would restore into a window that
        # later crashes at eviction — reject it before writing the frame.
        window = SlidingWindowSBF(4, 128, 4)
        window.push(("a", 1))
        with pytest.raises(TypeError, match="JSON scalars"):
            window.checkpoint(str(tmp_path))
        assert list(tmp_path.iterdir()) == []

    def test_restore_rejects_torn_checkpoint(self, tmp_path):
        window = SlidingWindowSBF(3, 128, 4, seed=1)
        window.extend(["x", "y"])
        path = window.checkpoint(str(tmp_path))
        data = open(path, "rb").read()
        torn_write(path, data, len(data) // 2)
        with pytest.raises(WireFormatError):
            SlidingWindowSBF.restore(str(tmp_path))

    def test_restore_rejects_inconsistent_buffer(self, tmp_path):
        window = SlidingWindowSBF(3, 128, 4, seed=1)
        window.extend(["x", "y"])
        from repro.core.serialize import dump_sbf
        frame = seal_frame(b"RSW1", {"window": 3, "method": "rm",
                                     "buffer": ["x", "y", "z"]},
                           dump_sbf(window.sbf))
        atomic_write_bytes(str(tmp_path / "window.ckpt"), frame)
        with pytest.raises(ValueError):
            SlidingWindowSBF.restore(str(tmp_path))

    def test_crash_mid_checkpoint_keeps_previous_checkpoint(self, tmp_path):
        window = SlidingWindowSBF(4, 128, 4, seed=2)
        window.extend(["a", "b"])
        window.checkpoint(str(tmp_path))
        window.extend(["c", "d"])
        io = CrashIO(crash_before_replace=1)
        with pytest.raises(SimulatedCrash):
            window.checkpoint(str(tmp_path), io=io)
        restored = SlidingWindowSBF.restore(str(tmp_path))
        assert list(restored._buffer) == ["a", "b"]


# ----------------------------------------------------------------------
# app wiring: summary cache warm restarts
# ----------------------------------------------------------------------
class TestSummaryPersistence:
    def _mesh(self, root):
        return build_mesh(["p1", "p2", "p3"], m=512, k=3, spectral=True,
                          summary_root=root)

    def test_summaries_survive_restart(self, tmp_path):
        mesh = self._mesh(str(tmp_path))
        mesh[0].store("obj-x")
        mesh[0].store("obj-x")
        mesh[1].store("obj-y")
        for proxy in mesh:
            proxy.publish()
        assert mesh[2].lookup("obj-x")[0] == "p1"

        # Restart: fresh proxies, same directories, no publishes yet.
        reborn = self._mesh(str(tmp_path))
        reborn[0].store("obj-x")
        reborn[0].store("obj-x")
        reborn[1].store("obj-y")
        assert sorted(reborn[2].summaries_recovered) == ["p1", "p2"]
        assert reborn[2].lookup("obj-x")[0] == "p1"
        assert reborn[2].summaries_rejected == 0

    def test_corrupt_persisted_summary_is_rejected_not_trusted(
            self, tmp_path):
        mesh = self._mesh(str(tmp_path))
        mesh[0].store("obj-x")
        for proxy in mesh:
            proxy.publish()
        victim = str(tmp_path / "p3" / "p1.summary")
        flip_bit(victim, 64)
        reborn = self._mesh(str(tmp_path))
        assert "p1" not in reborn[2].peer_summaries
        assert reborn[2].summaries_rejected >= 1

    def test_memory_only_by_default(self, tmp_path):
        mesh = build_mesh(["a", "b"], m=256, k=3)
        mesh[0].store("o")
        for proxy in mesh:
            proxy.publish()
        assert mesh[1].peer_summaries  # works without any directory
