"""Cross-module integration tests: realistic pipelines combining the SBF
methods, the §4 storage backends, the data generators and the §5 apps."""

import collections
import random

import pytest

from repro import SpectralBloomFilter
from repro.apps.iceberg import IcebergIndex
from repro.apps.bloomjoin import (
    exact_grouped_join_count,
    spectral_bloomjoin_count,
)
from repro.apps.range_query import RangeTreeSBF
from repro.apps.sliding_window import SlidingWindowSBF
from repro.data.forest import forest_cover_elevations
from repro.data.streams import (
    deletion_phase_workload,
    insertion_stream,
    stream_from_counts,
)
from repro.db.relation import Relation
from repro.db.site import two_sites


class TestCompactBackendPipelines:
    """The §4 storage layer must be a transparent drop-in everywhere."""

    def test_compact_rm_with_deletions_matches_array(self):
        ops = deletion_phase_workload(150, 3000, 0.8, seed=31)
        filters = {
            backend: SpectralBloomFilter(1200, 4, method="rm", seed=31,
                                         backend=backend)
            for backend in ("array", "compact")
        }
        for op, x in ops:
            for sbf in filters.values():
                if op == "insert":
                    sbf.insert(x)
                else:
                    sbf.delete(x)
        for x in range(150):
            assert (filters["array"].query(x)
                    == filters["compact"].query(x))

    def test_compact_iceberg_over_forest_data(self):
        counts = forest_cover_elevations(n_records=8000, n_distinct=400,
                                         seed=32)
        stream = stream_from_counts(counts, seed=32)
        index = IcebergIndex(m=3000, k=5, method="mi", seed=32)
        # Route the index's SBF through the compact backend.
        index.sbf = SpectralBloomFilter(3000, 5, method="mi", seed=32,
                                        backend="compact")
        index.consume(stream)
        threshold = 40
        reported = index.query(threshold)
        exact = {v for v, f in counts.items() if f >= threshold}
        assert exact <= set(reported)

    def test_compact_sliding_window(self):
        sw = SlidingWindowSBF(window=300, m=1500, method="rm", seed=33)
        sw.sbf = SpectralBloomFilter(1500, 5, method="rm", seed=33,
                                     backend="compact")
        stream = insertion_stream(80, 1500, 0.9, seed=33)
        sw._buffer.clear()
        for x in stream:
            sw.push(x)
        truth = collections.Counter(stream[-300:])
        for x, f in truth.items():
            assert sw.query(x) >= f


class TestDistributedPipelines:
    def test_three_site_union_then_query(self):
        """§2.2: a relation partitioned over sites is queried by shipping
        and adding SBFs."""
        rng = random.Random(34)
        partitions = [
            {x: rng.randrange(1, 20) for x in rng.sample(range(500), 150)}
            for _ in range(3)
        ]
        filters = []
        for part in partitions:
            sbf = SpectralBloomFilter(6000, 5, seed=34)
            sbf.update(part)
            filters.append(sbf)
        merged = filters[0] + filters[1] + filters[2]
        truth: dict[int, int] = {}
        for part in partitions:
            for x, f in part.items():
                truth[x] = truth.get(x, 0) + f
        errors = sum(1 for x, f in truth.items() if merged.query(x) != f)
        for x, f in truth.items():
            assert merged.query(x) >= f
        assert errors <= 0.05 * len(truth)

    def test_spectral_join_then_iceberg_threshold(self):
        """Pipeline: distributed grouped join, then an ad-hoc HAVING."""
        rng = random.Random(35)
        r = Relation("R", ("a", "x"),
                     [(rng.randrange(40), i) for i in range(300)])
        s = Relation("S", ("a", "y"),
                     [(rng.randrange(40), i) for i in range(600)])
        site1, site2, net = two_sites()
        site1.store(r)
        site2.store(s)
        counts = spectral_bloomjoin_count(site1, "R", site2, "S", "a",
                                          m=8192, seed=35)
        truth = exact_grouped_join_count(r, s, "a")
        for t in (50, 100, 200):
            reported = {v for v, c in counts.items() if c >= t}
            exact = {v for v, c in truth.items() if c >= t}
            assert exact <= reported
        assert net.rounds == 1


class TestEndToEndGuarantees:
    @pytest.mark.parametrize("backend", ["array", "compact"])
    @pytest.mark.parametrize("method", ["ms", "rm"])
    def test_insert_delete_insert_cycles(self, backend, method):
        """Long mixed workloads keep the one-sided invariant intact."""
        rng = random.Random(36)
        sbf = SpectralBloomFilter(900, 4, method=method, seed=36,
                                  backend=backend)
        truth: dict[int, int] = {}
        for _ in range(1500):
            x = rng.randrange(120)
            if truth.get(x, 0) > 0 and rng.random() < 0.35:
                sbf.delete(x)
                truth[x] -= 1
            else:
                sbf.insert(x)
                truth[x] = truth.get(x, 0) + 1
        for x, f in truth.items():
            assert sbf.query(x) >= f

    def test_range_tree_on_zipf_traffic(self):
        """Range tree + skewed data + deletions, all through one SBF."""
        tree = RangeTreeSBF(0, 255, m=60_000, k=4, method="ms", seed=37)
        stream = insertion_stream(256, 4000, 1.0, seed=37)
        live = collections.Counter()
        for i, v in enumerate(stream):
            tree.insert(v)
            live[v] += 1
            if i % 7 == 0 and live[v] > 1:
                tree.delete(v)
                live[v] -= 1
        for lo, hi in ((0, 255), (10, 60), (200, 240)):
            true_count = sum(f for v, f in live.items() if lo <= v <= hi)
            assert tree.range_count(lo, hi) >= true_count

    def test_storage_accounting_through_the_stack(self):
        """storage_bits flows from the SAI through backends to the SBF."""
        sbf = SpectralBloomFilter(512, 4, method="rm", seed=38,
                                  backend="compact")
        for x in range(200):
            sbf.insert(x, 1 + x % 5)
        total = sbf.storage_bits()
        primary = sbf.counters.storage_bits()
        secondary = sbf.method.secondary.storage_bits()
        marker = (sbf.method.marker.storage_bits()
                  if sbf.method.marker is not None else 0)
        assert total == primary + secondary + marker
        breakdown = sbf.counters.storage_breakdown()
        assert primary == sum(breakdown.values())
