"""Tests for vectorised hashing and bulk ingestion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SpectralBloomFilter
from repro.hashing import ModuloMultiplyFamily, MultiplyShiftFamily
from repro.hashing.keys import canonical_key
from repro.hashing.vectorized import (
    bulk_insert_ms,
    canonical_keys_array,
    indices_matrix,
)


class TestVectorisedHashing:
    @given(st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_canonical_keys_match_scalar(self, keys):
        vec = canonical_keys_array(np.array(keys, dtype=np.uint64))
        scalar = [canonical_key(k) for k in keys]
        assert vec.tolist() == scalar

    @pytest.mark.parametrize("cls", [ModuloMultiplyFamily,
                                     MultiplyShiftFamily])
    def test_indices_match_scalar(self, cls):
        fam = cls(m=7919, k=5, seed=11)
        keys = np.arange(2000, dtype=np.uint64)
        matrix = indices_matrix(fam, keys)
        for row, key in zip(matrix[:200], keys[:200]):
            assert tuple(row) == fam.indices(int(key))

    def test_indices_in_range(self):
        fam = ModuloMultiplyFamily(m=101, k=3, seed=1)
        matrix = indices_matrix(fam, np.arange(5000))
        assert matrix.min() >= 0
        assert matrix.max() < 101

    def test_unsupported_family_raises(self):
        from repro.hashing import TabulationFamily
        fam = TabulationFamily(m=100, k=2, seed=0)
        with pytest.raises(TypeError):
            indices_matrix(fam, np.arange(4))


class TestBulkInsert:
    def test_matches_scalar_inserts(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 500, size=5000)
        scalar = SpectralBloomFilter(3000, 5, seed=3)
        bulk = SpectralBloomFilter(3000, 5, seed=3)
        for x in keys:
            scalar.insert(int(x))
        bulk_insert_ms(bulk, keys)
        assert list(bulk) == list(scalar)
        assert bulk.total_count == scalar.total_count

    def test_queries_after_bulk(self):
        keys = np.repeat(np.arange(100), 7)
        sbf = SpectralBloomFilter(4000, 4, seed=4)
        bulk_insert_ms(sbf, keys)
        for x in range(100):
            assert sbf.query(x) >= 7

    def test_empty_stream(self):
        sbf = SpectralBloomFilter(100, 3, seed=5)
        bulk_insert_ms(sbf, np.array([], dtype=np.int64))
        assert sbf.total_count == 0

    def test_rejects_other_methods(self):
        sbf = SpectralBloomFilter(100, 3, method="mi", seed=6)
        with pytest.raises(TypeError):
            bulk_insert_ms(sbf, np.arange(4))

    def test_rejects_other_backends(self):
        sbf = SpectralBloomFilter(100, 3, seed=7, backend="compact")
        with pytest.raises(TypeError):
            bulk_insert_ms(sbf, np.arange(4))

    def test_speedup_is_real(self):
        """The whole point: bulk path is much faster than scalar."""
        import time
        keys = np.random.default_rng(8).integers(0, 2000, size=30_000)
        scalar = SpectralBloomFilter(10_000, 5, seed=8)
        bulk = SpectralBloomFilter(10_000, 5, seed=8)
        t0 = time.perf_counter()
        for x in keys:
            scalar.insert(int(x))
        scalar_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        bulk_insert_ms(bulk, keys)
        bulk_time = time.perf_counter() - t0
        assert list(bulk) == list(scalar)
        # Generous bound: the speedup is ~20x in isolation, but CI boxes
        # under load should still comfortably clear 2x.
        assert bulk_time < scalar_time / 2
