"""Tests for the String-Array Index (paper §4.3-4.7).

The key contract: the structure behaves exactly like a plain list of
non-negative integers under get/set/increment/decrement, while staying
internally consistent through pushes, chunk growth and rebuilds.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.succinct.string_array import StringArrayIndex


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StringArrayIndex([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StringArrayIndex([1, -2, 3])

    def test_initial_values_readable(self):
        values = [0, 1, 5, 1000, 3, 0, 77]
        sai = StringArrayIndex(values)
        assert sai.to_list() == values

    def test_len_and_iter(self):
        sai = StringArrayIndex([4, 2, 9])
        assert len(sai) == 3
        assert list(sai) == [4, 2, 9]

    def test_single_counter(self):
        sai = StringArrayIndex([42])
        assert sai.get(0) == 42

    def test_all_zeros(self):
        sai = StringArrayIndex([0] * 100)
        assert sai.to_list() == [0] * 100

    def test_large_values(self):
        values = [2**40, 1, 2**63 - 1, 0]
        sai = StringArrayIndex(values)
        assert sai.to_list() == values

    def test_index_out_of_range(self):
        sai = StringArrayIndex([1, 2, 3])
        with pytest.raises(IndexError):
            sai.get(3)
        with pytest.raises(IndexError):
            sai.get(-1)
        with pytest.raises(IndexError):
            sai.set(5, 1)
        with pytest.raises(IndexError):
            sai.width(17)


class TestPositions:
    def test_positions_are_increasing_within_chunks(self):
        sai = StringArrayIndex(list(range(1, 40)))
        positions = [sai.position(i) for i in range(len(sai))]
        assert positions == sorted(positions)

    def test_width_matches_bit_length(self):
        values = [0, 1, 2, 3, 255, 256]
        sai = StringArrayIndex(values)
        for i, v in enumerate(values):
            assert sai.width(i) == max(1, v.bit_length())

    def test_fields_do_not_overlap(self):
        values = [7, 130, 1, 0, 99, 2048, 5]
        sai = StringArrayIndex(values)
        spans = sorted((sai.position(i), sai.position(i) + sai.width(i))
                       for i in range(len(values)))
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestUpdates:
    def test_set_same_width(self):
        sai = StringArrayIndex([5, 5, 5])
        sai.set(1, 7)  # 5 and 7 are both 3 bits
        assert sai.to_list() == [5, 7, 5]

    def test_set_wider_pushes_neighbours(self):
        values = [1, 1, 1, 1, 1, 1]
        sai = StringArrayIndex(values)
        sai.set(2, 1000)
        assert sai.to_list() == [1, 1, 1000, 1, 1, 1]

    def test_set_narrower_keeps_field(self):
        sai = StringArrayIndex([1000, 1, 1])
        sai.set(0, 1)
        assert sai.get(0) == 1
        # §4.4: deletions don't move positions; the field stays wide.
        assert sai.width(0) >= 1

    def test_increment_returns_new_value(self):
        sai = StringArrayIndex([3, 0])
        assert sai.increment(0) == 4
        assert sai.increment(1, 10) == 10

    def test_decrement(self):
        sai = StringArrayIndex([5])
        assert sai.decrement(0) == 4
        assert sai.decrement(0, 4) == 0

    def test_decrement_below_zero_raises(self):
        sai = StringArrayIndex([1])
        with pytest.raises(ValueError):
            sai.decrement(0, 2)

    def test_negative_set_raises(self):
        sai = StringArrayIndex([1])
        with pytest.raises(ValueError):
            sai.set(0, -1)

    def test_dunder_setitem(self):
        sai = StringArrayIndex([1, 2])
        sai[0] = 9
        assert sai[0] == 9

    def test_repeated_expansion_of_one_counter(self):
        """§4.4's repeated-expansion analysis: a counter doubling many
        times stays correct and the rest of the array is untouched."""
        values = [1] * 30
        sai = StringArrayIndex(values)
        for power in range(1, 20):
            sai.set(13, 2**power)
            expected = [1] * 30
            expected[13] = 2**power
            assert sai.to_list() == expected

    def test_many_increments_force_rebuilds(self):
        sai = StringArrayIndex([0] * 50, chunk_slack=2, group_slack=4)
        for _ in range(40):
            for i in range(50):
                sai.increment(i)
        assert sai.to_list() == [40] * 50
        assert sai.rebuilds >= 1  # tight slack must have forced a refresh

    def test_rebuild_preserves_values_and_resets_waste(self):
        sai = StringArrayIndex([1000, 2000, 3000])
        sai.set(0, 1)
        sai.rebuild()
        assert sai.to_list() == [1, 2000, 3000]
        assert sai.width(0) == 1

    def test_deletion_heavy_workload_triggers_refresh(self):
        """A long sequence of deletions must eventually reclaim space."""
        sai = StringArrayIndex([10**6] * 64)
        for i in range(64):
            sai.set(i, 0)
        assert sai.to_list() == [0] * 64
        assert sai.rebuilds >= 1


class TestAgainstReferenceModel:
    """Randomised differential test against a plain Python list."""

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1), st.integers(5, 120),
           st.integers(50, 300))
    def test_random_ops_match_list(self, seed, m, n_ops):
        rng = random.Random(seed)
        reference = [rng.randrange(100) for _ in range(m)]
        sai = StringArrayIndex(list(reference), chunk_slack=4, group_slack=8)
        for _ in range(n_ops):
            i = rng.randrange(m)
            op = rng.random()
            if op < 0.45:
                delta = rng.randrange(1, 1000)
                reference[i] += delta
                sai.increment(i, delta)
            elif op < 0.65 and reference[i] > 0:
                delta = rng.randrange(1, reference[i] + 1)
                reference[i] -= delta
                sai.decrement(i, delta)
            elif op < 0.85:
                value = rng.randrange(2**rng.randrange(1, 24))
                reference[i] = value
                sai.set(i, value)
            else:
                assert sai.get(i) == reference[i]
        assert sai.to_list() == reference

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=200))
    def test_build_roundtrip(self, values):
        sai = StringArrayIndex(values)
        assert sai.to_list() == values


class TestStorageAccounting:
    def test_breakdown_keys(self):
        sai = StringArrayIndex([1] * 100)
        breakdown = sai.storage_breakdown()
        assert set(breakdown) == {
            "base_array", "l1_coarse", "l2_offsets", "l3_offsets",
            "lookup_table", "length_encodings", "flags",
        }
        assert all(v >= 0 for v in breakdown.values())

    def test_total_is_sum_of_breakdown(self):
        sai = StringArrayIndex(list(range(1, 200)))
        assert sai.total_bits() == sum(sai.storage_breakdown().values())

    def test_index_overhead_is_modest(self):
        """o(N) + O(m): for a reasonable array the index should not dwarf
        the base array (Figure 13 shows ~1.5-2x total vs raw)."""
        values = [random.Random(1).randrange(1, 1024) for _ in range(2000)]
        sai = StringArrayIndex(values)
        assert sai.index_bits() < 4 * sai.raw_bits()

    def test_raw_bits_equals_sum_of_widths(self):
        values = [0, 1, 7, 255]
        sai = StringArrayIndex(values)
        assert sai.raw_bits() == 1 + 1 + 3 + 8

    def test_base_includes_slack(self):
        sai = StringArrayIndex([1] * 32, chunk_slack=8)
        assert sai.storage_breakdown()["base_array"] > sai.raw_bits()

    def test_chunk_converts_to_offset_vector_when_heavy(self):
        """A chunk outgrowing T0 leaves the lookup table for a level-3
        offset vector (§4.3) and stays readable."""
        sai = StringArrayIndex([1] * 64)
        threshold = sai._table_threshold
        # Blow one counter up until its chunk exceeds the table threshold.
        sai.set(10, 1 << (threshold + 8))
        values = [1] * 64
        values[10] = 1 << (threshold + 8)
        assert sai.to_list() == values
        assert sai.storage_breakdown()["l3_offsets"] > 0

    def test_lookup_table_cleared_on_rebuild(self):
        sai = StringArrayIndex([3] * 64)
        for i in range(64):
            sai.get(i)
        assert len(sai._table) > 0
        sai.rebuild()
        assert len(sai._table) == 0

    def test_lookup_table_grows_lazily(self):
        sai = StringArrayIndex([1] * 64)
        before = sai.storage_breakdown()["lookup_table"]
        for i in range(64):
            sai.get(i)
        after = sai.storage_breakdown()["lookup_table"]
        assert after >= before


class TestStorageReduction:
    """The §4.6 reduction exponent: bigger groups, smaller index."""

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            StringArrayIndex([1], reduction_c=-0.5)

    def test_values_unaffected(self):
        values = list(range(1, 300))
        reduced = StringArrayIndex(values, reduction_c=1.0)
        assert reduced.to_list() == values
        reduced.increment(17, 500)
        assert reduced.get(17) == 18 + 500

    def test_index_shrinks_with_c(self):
        values = [random.Random(4).randrange(1, 200) for _ in range(4000)]
        overheads = []
        for c in (0.0, 0.5, 1.0):
            sai = StringArrayIndex(values, reduction_c=c)
            for i in range(0, len(values), 5):
                sai.get(i)   # realise the table entries readers pay for
            overheads.append(sai.index_bits())
        # Theorem 9's direction: reduction shrinks the index.  At toy
        # sizes the asymptotics only bind cleanly for moderate c (very
        # long chunks pay inline L(S'') costs the theorem amortises away);
        # the ablation benchmark records the full sweep at a larger size.
        assert overheads[1] < overheads[0]

    def test_updates_still_work_under_reduction(self):
        rng = random.Random(5)
        model = [rng.randrange(50) for _ in range(200)]
        sai = StringArrayIndex(list(model), reduction_c=1.0)
        for _ in range(400):
            i = rng.randrange(200)
            delta = rng.randrange(1, 100)
            model[i] += delta
            sai.increment(i, delta)
        assert sai.to_list() == model


class TestParameterOverrides:
    def test_custom_group_and_chunk_sizes(self):
        sai = StringArrayIndex(list(range(50)), group_items=10, chunk_items=3)
        assert sai.to_list() == list(range(50))

    def test_chunk_items_capped_by_group(self):
        sai = StringArrayIndex([1, 2, 3], group_items=2, chunk_items=10)
        assert sai.to_list() == [1, 2, 3]

    def test_heavy_group_gets_complete_offset_vector(self):
        """Groups above (log N)^3 bits use a complete level-2 vector."""
        values = [2**499] * 64 + [1] * 64
        sai = StringArrayIndex(values, group_items=8)
        assert sai.to_list() == values
        assert any(group.complete for group in sai._groups)
        breakdown = sai.storage_breakdown()
        assert breakdown["l2_offsets"] > 0
