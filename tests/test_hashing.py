"""Tests for key canonicalisation and the hash-function families."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing import (
    DoubleHashingFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
    TabulationFamily,
    canonical_key,
    make_family,
)

ALL_FAMILIES = [ModuloMultiplyFamily, MultiplyShiftFamily,
                TabulationFamily, DoubleHashingFamily]


class TestCanonicalKey:
    def test_deterministic(self):
        assert canonical_key("hello") == canonical_key("hello")
        assert canonical_key(42) == canonical_key(42)

    def test_types_do_not_collide_trivially(self):
        assert canonical_key("1") != canonical_key(1)
        assert canonical_key(b"1") != canonical_key("1")

    def test_small_ints_are_distinct(self):
        outputs = {canonical_key(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_bool_and_none(self):
        assert canonical_key(True) == canonical_key(1)
        assert isinstance(canonical_key(None), int)

    def test_tuples(self):
        assert canonical_key((1, "a")) == canonical_key((1, "a"))
        assert canonical_key((1, "a")) != canonical_key(("a", 1))

    def test_nested_tuples(self):
        assert canonical_key(((1, 2), 3)) != canonical_key((1, (2, 3)))

    def test_floats(self):
        assert canonical_key(1.5) == canonical_key(1.5)
        assert canonical_key(1.5) != canonical_key(2.5)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_key([1, 2])

    @given(st.integers())
    def test_output_is_64_bit(self, x):
        out = canonical_key(x)
        assert 0 <= out < 2**64


class TestFamilies:
    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_indices_in_range(self, cls):
        fam = cls(m=97, k=5, seed=7)
        for key in ["a", "b", 1, 2, (3, "x"), b"bytes"]:
            idx = fam.indices(key)
            assert len(idx) == 5
            assert all(0 <= i < 97 for i in idx)

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_deterministic_per_seed(self, cls):
        a = cls(m=101, k=3, seed=11)
        b = cls(m=101, k=3, seed=11)
        c = cls(m=101, k=3, seed=12)
        assert a.indices("key") == b.indices("key")
        assert any(a.indices(f"key{i}") != c.indices(f"key{i}")
                   for i in range(20))

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_distribution_is_roughly_uniform(self, cls):
        """Chi-square style sanity check: bucket loads near expectation."""
        m, k, n = 64, 1, 20_000
        fam = cls(m=m, k=k, seed=3)
        loads = [0] * m
        for key in range(n):
            loads[fam.indices(key)[0]] += 1
        expected = n / m
        assert all(0.5 * expected < load < 1.5 * expected for load in loads)

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_invalid_parameters(self, cls):
        with pytest.raises(ValueError):
            cls(m=0, k=5)
        with pytest.raises(ValueError):
            cls(m=10, k=0)

    def test_compatibility(self):
        a = ModuloMultiplyFamily(m=50, k=4, seed=1)
        b = ModuloMultiplyFamily(m=50, k=4, seed=1)
        c = ModuloMultiplyFamily(m=50, k=4, seed=2)
        d = MultiplyShiftFamily(m=50, k=4, seed=1)
        assert a.is_compatible(b)
        assert not a.is_compatible(c)
        assert not a.is_compatible(d)

    def test_spawn_changes_size_keeps_seed(self):
        a = ModuloMultiplyFamily(m=50, k=4, seed=9)
        b = a.spawn(m=25)
        assert b.m == 25 and b.k == 4 and b.seed == 9

    def test_m_of_one_always_maps_to_zero(self):
        fam = ModuloMultiplyFamily(m=1, k=3, seed=0)
        assert fam.indices("anything") == (0, 0, 0)

    def test_double_hashing_probes_distinct_for_prime_m(self):
        fam = DoubleHashingFamily(m=101, k=5, seed=0)
        for key in range(200):
            idx = fam.indices(key)
            assert len(set(idx)) == 5


class TestMakeFamily:
    def test_by_name(self):
        fam = make_family("modmul", 100, 5, seed=1)
        assert isinstance(fam, ModuloMultiplyFamily)

    def test_by_class(self):
        fam = make_family(TabulationFamily, 100, 5, seed=1)
        assert isinstance(fam, TabulationFamily)

    def test_instance_passthrough(self):
        original = MultiplyShiftFamily(100, 5, seed=1)
        assert make_family(original, 100, 5) is original

    def test_instance_size_mismatch_raises(self):
        original = MultiplyShiftFamily(100, 5, seed=1)
        with pytest.raises(ValueError):
            make_family(original, 99, 5)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_family("nope", 10, 2)
