"""Shared pytest configuration for the reproduction test suite."""

from hypothesis import settings, HealthCheck

# The string-array index tests drive fairly heavy stateful machinery; keep
# hypothesis deadlines off so slow CI boxes don't flake.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
