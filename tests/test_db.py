"""Tests for the relational / distributed substrate."""

import pytest

from repro.db.relation import Relation
from repro.db.site import Network, tuple_bits, two_sites


class TestRelation:
    def make(self):
        return Relation("R", ("a", "b"),
                        [(1, "x"), (2, "y"), (1, "z"), (3, "x")])

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            Relation("R", ())
        with pytest.raises(ValueError):
            Relation("R", ("a", "a"))
        r = self.make()
        with pytest.raises(ValueError):
            r.append((1,))
        with pytest.raises(KeyError):
            r.column_position("missing")

    def test_scan_and_len(self):
        r = self.make()
        assert len(r) == 4
        assert list(r.scan("a")) == [1, 2, 1, 3]

    def test_where(self):
        r = self.make()
        sel = r.where(lambda row: row[0] == 1)
        assert len(sel) == 2
        assert all(row[0] == 1 for row in sel)

    def test_project_bag_semantics(self):
        r = self.make()
        proj = r.project(["b"])
        assert list(proj.scan("b")) == ["x", "y", "z", "x"]

    def test_group_by_count(self):
        r = self.make()
        assert r.group_by_count("a") == {1: 2, 2: 1, 3: 1}

    def test_distinct(self):
        assert self.make().distinct("b") == {"x", "y", "z"}

    def test_join(self):
        r = self.make()
        s = Relation("S", ("a", "c"), [(1, 10), (1, 11), (3, 12), (9, 13)])
        j = r.join(s, "a")
        assert j.columns == ("a", "b", "c")
        # value 1: 2 rows in R x 2 rows in S = 4; value 3: 1 x 1.
        assert len(j) == 5
        assert all(row[0] in (1, 3) for row in j)

    def test_join_empty_intersection(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("a",), [(2,)])
        assert len(r.join(s, "a")) == 0

    def test_extend(self):
        r = Relation("R", ("a",))
        r.extend([(1,), (2,)])
        assert len(r) == 2


class TestNetwork:
    def test_traffic_accounting(self):
        net = Network()
        net.send("s1", "s2", "filter", object(), 1024)
        net.send("s2", "s1", "tuples", object(), 4096)
        assert net.total_bits == 5120
        assert net.rounds == 2
        assert net.breakdown() == {"filter": 1024, "tuples": 4096}

    def test_negative_size_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.send("a", "b", "x", None, -1)

    def test_reset(self):
        net = Network()
        net.send("a", "b", "x", None, 10)
        net.reset()
        assert net.total_bits == 0
        assert net.rounds == 0

    def test_tuple_bits(self):
        assert tuple_bits([(1, 2), (3, 4, 5)]) == 5 * 64
        assert tuple_bits([], 8) == 0


class TestSite:
    def test_store_and_fetch(self):
        s1, s2, _net = two_sites()
        r = Relation("R", ("a",), [(1,)])
        s1.store(r)
        assert s1.relation("R") is r
        with pytest.raises(KeyError):
            s2.relation("R")

    def test_send_tuples_charges_per_value(self):
        s1, s2, net = two_sites()
        rows = [(1, 2), (3, 4)]
        delivered = s1.send_tuples(s2, "tuples", rows)
        assert delivered == rows
        assert net.total_bits == 4 * 64

    def test_payload_passthrough(self):
        s1, s2, net = two_sites()
        payload = {"anything": True}
        assert s1.send(s2, "blob", payload, 7) is payload
        assert net.messages[0].sender == "site1"
        assert net.messages[0].recipient == "site2"
