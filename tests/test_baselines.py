"""The committed result baselines stay honest.

``benchmarks/results/*.json`` files are checked in so CI can diff a
fresh run against them.  A baseline that itself records a failure is
worse than no baseline — ``compare_to_baseline`` would happily report
"no regression" against an already-red document.  So: every committed
JSON that carries a ``pass`` verdict must carry ``pass: true``, be
parseable, and (for the scenario aggregate) keep its oracle counters
coherent.
"""

import json
import os

import pytest

from repro.scenario import SEED_NAMES
from repro.scenario.aggregator import AGGREGATE_VERSION, compare_to_baseline

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "results")

BASELINES = sorted(name for name in os.listdir(RESULTS_DIR)
                   if name.endswith(".json"))


def _load(name):
    with open(os.path.join(RESULTS_DIR, name), encoding="utf-8") as fh:
        return json.load(fh)


def test_there_are_committed_baselines():
    assert "scenarios.json" in BASELINES


@pytest.mark.parametrize("name", BASELINES)
def test_every_committed_baseline_passes(name):
    document = _load(name)
    if "pass" in document:
        assert document["pass"] is True, \
            f"{name} is committed with pass: false"


def test_scenario_baseline_is_coherent():
    document = _load("scenarios.json")
    assert document["meta"]["benchmark"] == "scenarios"
    assert document["meta"]["version"] == AGGREGATE_VERSION
    rows = {row["name"]: row for row in document["scenarios"]}
    assert set(rows) == set(SEED_NAMES)
    for name, row in rows.items():
        assert row["pass"], (name, row["failures"])
        assert row["wrong_answers"] == 0, name
        assert row["compared"] > 0, name
        assert row["faults_fired"] > 0, name
    # The baseline compared against itself is by definition clean.
    assert compare_to_baseline(document, document) == []
