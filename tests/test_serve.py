"""ShardedSBF router: transparent sharding, reshard, manifest.

The central claim (DESIGN.md §7): with the default blocked hash family,
hash partitioning is *invisible* — a routed query returns the identical
estimate an unsharded filter would, for any shard count, batched or not,
because keys and the counters they touch shard together.  These tests pin
that equivalence down with seeded workloads, then exercise the pre-split
resharding discipline and the wire manifest.
"""

import random

import pytest

from repro.core.serialize import WireFormatError
from repro.core.sbf import SpectralBloomFilter
from repro.persist import ConcurrentSBF
from repro.serve import MetricsRegistry, ShardBatcher, ShardedSBF

M, K, SEED = 4096, 4, 7
SHARD_COUNTS = [1, 2, 4, 8]


def make_reference() -> SpectralBloomFilter:
    return SpectralBloomFilter(M, K, seed=SEED, method="ms",
                               backend="array", hash_family="blocked")


def make_router(n_shards: int) -> ShardedSBF:
    return ShardedSBF.create(n_shards, M, K, seed=SEED, method="ms",
                             backend="array", hash_family="blocked")


def workload(n: int = 800) -> list:
    """Mixed int/str keys with skewed multiplicities."""
    rng = random.Random(SEED)
    keys = []
    for i in range(n):
        if i % 5 == 0:
            keys.append(f"user:{i % 97}")
        else:
            keys.append(rng.randrange(1 << 40))
    return keys


def probes(keys: list) -> list:
    """The inserted keys plus guaranteed-distinct miss probes."""
    return list(dict.fromkeys(keys)) \
        + [f"miss:{i}" for i in range(50)] \
        + [-(i + 1) for i in range(50)]


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_routed_query_equals_unsharded(n_shards):
    router, reference = make_router(n_shards), make_reference()
    keys = workload()
    for key in keys:
        router.insert(key)
        reference.insert(key)
    assert router.total_count == reference.total_count
    for key in probes(keys):
        assert router.query(key) == reference.query(key)
        assert router.contains(key, 2) == reference.contains(key, 2)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_batched_paths_equal_unsharded(n_shards):
    router, reference = make_router(n_shards), make_reference()
    batcher = ShardBatcher(router)
    int_keys = [key for key in workload() if isinstance(key, int)]
    batcher.insert_many(int_keys)          # vectorised scatter path
    for key in int_keys:
        reference.insert(key)
    targets = list(dict.fromkeys(int_keys)) + list(range(100))
    assert batcher.query_many(targets) \
        == [reference.query(key) for key in targets]
    # Mixed-verb batch against the same sequential reference.
    ops = [("query", key) for key in targets[:40]] \
        + [("contains", key, 2) for key in targets[:40]]
    expected = [reference.query(key) for key in targets[:40]] \
        + [reference.contains(key, 2) for key in targets[:40]]
    assert batcher.execute(ops) == expected


def test_mutating_batch_matches_scalar_path():
    router, reference = make_router(4), make_router(4)
    batcher = ShardBatcher(router)
    keys = workload(300)
    batcher.execute([("insert", key) for key in keys])
    batcher.execute([("delete", keys[0]), ("set", keys[1], 9)])
    for key in keys:
        reference.insert(key)
    reference.delete(keys[0])
    reference.set(keys[1], 9)
    for key in probes(keys):
        assert router.query(key) == reference.query(key)


def test_failed_op_lands_in_its_slot_and_batch_continues():
    batcher = ShardBatcher(make_router(4))
    results = batcher.execute([
        ("insert", "a"),
        ("delete", "never-inserted", 5),   # would drive counters negative
        ("query", "a"),
    ])
    assert results[0] is None
    assert isinstance(results[1], ValueError)
    assert results[2] >= 1
    with pytest.raises(ValueError, match="must start with"):
        batcher.execute([("frobnicate", "a")])


def test_shard_assignment_is_deterministic():
    first, second = make_router(8), make_router(8)
    keys = workload(200)
    assignments = [first.shard_of(key) for key in keys]
    assert assignments == [second.shard_of(key) for key in keys]
    assert assignments == first.shard_of_many(keys)
    int_keys = [key for key in keys if isinstance(key, int)]
    assert first.shard_of_many(int_keys) \
        == [first.shard_of(key) for key in int_keys]
    assert all(0 <= shard < 8 for shard in assignments)
    assert len(set(assignments)) > 1      # the workload actually spreads


def test_reshard_round_trip_is_counter_exact():
    router, reference = make_router(8), make_reference()
    keys = workload()
    for key in keys:
        router.insert(key)
        reference.insert(key)
    before = {key: router.query(key) for key in probes(keys)}
    for new_n in (4, 2, 1):
        assert router.reshard(new_n) is router
        assert router.n_shards == new_n
        assert router.total_count == reference.total_count
        for key, estimate in before.items():
            assert router.query(key) == estimate
    # Coalesced all the way down, the single shard IS the unsharded
    # filter, counter for counter.
    merged = router.shards[0].sbf
    assert list(merged.counters) == list(reference.counters)


def test_non_dividing_reshard_rolls_on_blocked_fleets():
    # Blocked fleets no longer need new_n to divide n: reshard() falls
    # through to a rolling block-range migration (test_reshard_rolling.py
    # exercises it in depth — this pins the dispatch).
    router, reference = make_router(8), make_reference()
    keys = workload(400)
    for key in keys:
        router.insert(key)
        reference.insert(key)
    assert router.reshard(3) is router
    assert router.n_shards == 3
    assert router.total_count == reference.total_count
    for key in probes(keys):
        assert router.query(key) == reference.query(key)
    with pytest.raises(ValueError, match=">= 1"):
        router.reshard(0)
    assert router.n_shards == 3           # refused reshard changed nothing


def test_non_dividing_reshard_still_refused_without_blocked_hashing():
    router = ShardedSBF.create(8, M, K, seed=SEED, method="ms",
                               backend="array", hash_family="modmul")
    with pytest.raises(ValueError, match="divide"):
        router.reshard(3)
    assert router.n_shards == 8           # refused reshard changed nothing


def test_reshard_refuses_durable_shards(tmp_path):
    router = ShardedSBF.create(2, M, K, seed=SEED,
                               durable_root=str(tmp_path))
    try:
        with pytest.raises(ValueError, match="manifest"):
            router.reshard(1)
    finally:
        for shard in router.shards:
            shard.raw.close()


def test_manifest_round_trip():
    router = make_router(4)
    keys = workload(400)
    for key in keys:
        router.insert(key)
    data = router.dump_manifest()
    clone = ShardedSBF.load_manifest(data)
    assert clone.n_shards == 4
    assert clone.total_count == router.total_count
    for key in probes(keys):
        assert clone.query(key) == router.query(key)
    assert [clone.shard_of(key) for key in keys] \
        == [router.shard_of(key) for key in keys]


def test_manifest_rejects_corruption():
    data = make_router(2).dump_manifest()
    with pytest.raises(WireFormatError):
        ShardedSBF.load_manifest(data[:-5])
    flipped = bytearray(data)
    flipped[len(flipped) // 2] ^= 0x40
    with pytest.raises(WireFormatError):
        ShardedSBF.load_manifest(bytes(flipped))


def test_shard_report_accounts_per_shard():
    router = make_router(4)
    keys = workload(400)
    for key in keys:
        router.insert(key)
    report = router.shard_report()
    assert [entry["shard"] for entry in report] == [0, 1, 2, 3]
    assert sum(entry["ops"] for entry in report) == len(keys)
    assert sum(entry["total_count"] for entry in report) == len(keys)
    distinct = len(set(keys))
    for entry in report:
        assert entry["m"] == M and entry["k"] == K
        assert 0.0 < entry["fill_ratio"] < 1.0
        assert 0.0 <= entry["expected_error"] <= 1.0
    # The occupancy estimator should land near the true distinct count.
    total_estimate = sum(e["distinct_estimate"] for e in report)
    assert total_estimate == pytest.approx(distinct, rel=0.35)


def test_incompatible_shards_are_rejected():
    a = ConcurrentSBF(SpectralBloomFilter(256, 4, seed=1))
    b = ConcurrentSBF(SpectralBloomFilter(256, 4, seed=2))
    with pytest.raises(ValueError, match="share parameters"):
        ShardedSBF([a, b])
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedSBF([])
    with pytest.raises(ValueError, match=">= 1"):
        ShardedSBF.create(0, M, K)


def test_router_metrics_flow_through_registry():
    registry = MetricsRegistry()
    router = ShardedSBF.create(2, M, K, seed=SEED, metrics=registry)
    for key in range(20):
        router.insert(key)
    for key in range(10):
        router.query(key)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["router.inserts"] == 20
    assert snapshot["counters"]["router.queries"] == 10
    assert snapshot["gauges"]["router.shards"] == 2
