"""Tests for the workload generators (Zipf, streams, forest cover)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.forest import forest_cover_elevations
from repro.data.streams import (
    apply_workload,
    deletion_phase_workload,
    insertion_stream,
    sliding_window_stream,
    stream_from_counts,
)
from repro.data.zipf import ZipfDistribution, zipf_frequencies, zipf_multiset


class TestZipfDistribution:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -0.5)

    def test_pmf_sums_to_one(self):
        dist = ZipfDistribution(500, 1.2)
        assert sum(dist.probabilities()) == pytest.approx(1.0)

    def test_pmf_decreasing_in_rank(self):
        dist = ZipfDistribution(100, 0.8)
        probs = dist.probabilities()
        assert all(probs[i] >= probs[i + 1] for i in range(99))

    def test_zero_skew_is_uniform(self):
        dist = ZipfDistribution(50, 0.0)
        assert dist.pmf(0) == pytest.approx(dist.pmf(49))

    def test_power_law_ratio(self):
        """p_i / p_j = (j/i)^z."""
        dist = ZipfDistribution(1000, 1.5)
        assert dist.pmf(0) / dist.pmf(9) == pytest.approx(10 ** 1.5,
                                                          rel=1e-9)

    def test_sample_deterministic_per_seed(self):
        dist = ZipfDistribution(100, 1.0)
        a = dist.sample(1000, seed=5)
        b = dist.sample(1000, seed=5)
        c = dist.sample(1000, seed=6)
        assert (a == b).all()
        assert not (a == c).all()

    def test_sample_range(self):
        dist = ZipfDistribution(30, 2.0)
        sample = dist.sample(5000, seed=1)
        assert sample.min() >= 0
        assert sample.max() < 30

    def test_sample_head_heavy(self):
        dist = ZipfDistribution(1000, 1.5)
        sample = dist.sample(20_000, seed=2)
        head_share = (sample < 10).mean()
        assert head_share > 0.5

    def test_expected_frequency(self):
        dist = ZipfDistribution(10, 1.0)
        assert dist.expected_frequency(0, 1000) == pytest.approx(
            1000 * dist.pmf(0))


class TestZipfHelpers:
    def test_frequencies_sum_exactly(self):
        freqs = zipf_frequencies(200, 10_000, 1.1)
        assert sum(freqs) == 10_000
        assert all(f >= 0 for f in freqs)
        assert freqs[0] == max(freqs)

    def test_multiset_total(self):
        counts = zipf_multiset(300, 5000, 0.9, seed=3)
        assert sum(counts.values()) == 5000
        assert len(counts) <= 300

    @given(st.integers(1, 300), st.integers(1, 3000),
           st.floats(0.0, 2.5))
    @settings(max_examples=20)
    def test_multiset_valid_for_any_parameters(self, n, total, z):
        counts = zipf_multiset(n, total, z, seed=1)
        assert sum(counts.values()) == total
        assert all(0 <= x < n for x in counts)


class TestStreams:
    def test_stream_from_counts(self):
        stream = stream_from_counts({"a": 3, "b": 1}, seed=1)
        assert sorted(stream) == ["a", "a", "a", "b"]

    def test_stream_from_counts_negative(self):
        with pytest.raises(ValueError):
            stream_from_counts({"a": -1})

    def test_insertion_stream_length(self):
        stream = insertion_stream(100, 2500, 1.0, seed=2)
        assert len(stream) == 2500
        assert all(0 <= x < 100 for x in stream)

    def test_deletion_phase_workload_shape(self):
        """Figure 8's protocol: deletions remove chosen items entirely."""
        ops = deletion_phase_workload(100, 2000, 0.5, phases=4,
                                      delete_fraction=0.05, seed=3)
        inserts = sum(1 for op, _ in ops if op == "insert")
        deletes = sum(1 for op, _ in ops if op == "delete")
        assert inserts == 2000
        assert deletes > 0
        # Replaying must never drive a count negative.
        live: dict[int, int] = {}
        for op, x in ops:
            live[x] = live.get(x, 0) + (1 if op == "insert" else -1)
            assert live[x] >= 0

    def test_deletion_phase_invalid(self):
        with pytest.raises(ValueError):
            deletion_phase_workload(10, 100, 0.5, delete_fraction=1.5)
        with pytest.raises(ValueError):
            deletion_phase_workload(10, 100, 0.5, phases=0)

    def test_sliding_window_stream_semantics(self):
        """Every insert beyond the window is preceded by the eviction of
        the oldest live item."""
        ops = list(sliding_window_stream(50, 600, 0.5, window=100, seed=4))
        inserts = [x for op, x in ops if op == "insert"]
        assert len(inserts) == 600
        live: list[int] = []
        for op, x in ops:
            if op == "insert":
                live.append(x)
                assert len(live) <= 100
            else:
                assert live[0] == x
                live.pop(0)
        assert len(live) == 100

    def test_sliding_window_invalid(self):
        with pytest.raises(ValueError):
            list(sliding_window_stream(10, 100, 0.5, window=0))

    def test_apply_workload(self):
        from repro import SpectralBloomFilter
        sbf = SpectralBloomFilter(500, 4, seed=1)
        truth = apply_workload(sbf, [("insert", 1), ("insert", 1),
                                     ("delete", 1)])
        assert truth == {1: 1}
        assert sbf.query(1) >= 1
        with pytest.raises(ValueError):
            apply_workload(sbf, [("upsert", 1)])


class TestForestCover:
    def test_default_statistics(self):
        """Scaled-down default keeps the paper's count statistics exact."""
        counts = forest_cover_elevations(n_records=58_101, n_distinct=1978,
                                         seed=1)
        assert sum(counts.values()) == 58_101
        assert len(counts) == 1978

    def test_multimodal_shape(self):
        """Figure 7a: a dominant central bulge, light tails."""
        counts = forest_cover_elevations(n_records=50_000, n_distinct=1000,
                                         seed=2)
        values = sorted(counts)
        span = values[-1] - values[0]
        mid = [v for v in values
               if values[0] + span * 0.4 <= v <= values[0] + span * 0.75]
        tail = [v for v in values if v >= values[0] + span * 0.95]
        mid_mass = sum(counts[v] for v in mid) / 50_000
        tail_mass = sum(counts[v] for v in tail) / 50_000
        assert mid_mass > 0.35
        assert tail_mass < 0.05

    def test_deterministic(self):
        a = forest_cover_elevations(n_records=5000, n_distinct=200, seed=3)
        b = forest_cover_elevations(n_records=5000, n_distinct=200, seed=3)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ValueError):
            forest_cover_elevations(n_records=0)
        with pytest.raises(ValueError):
            forest_cover_elevations(n_distinct=0)

    def test_elevation_values_plausible(self):
        counts = forest_cover_elevations(n_records=5000, n_distinct=300,
                                         seed=4)
        assert all(1800 <= v <= 4000 for v in counts)
