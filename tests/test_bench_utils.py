"""Tests for the experiment-harness utilities (metrics, tables, runner)."""

import os

import pytest

from repro.bench.metrics import (
    additive_error,
    error_ratio,
    evaluate_filter,
    false_negative_ratio,
)
from repro.bench.runner import average_trials, bench_scale, build_and_measure
from repro.bench.tables import format_table, write_results


class TestMetrics:
    def test_additive_error(self):
        truth = {"a": 10, "b": 5}
        estimates = {"a": 13, "b": 1}
        # sqrt((9 + 16) / 2)
        assert additive_error(estimates, truth) == pytest.approx(
            (25 / 2) ** 0.5)

    def test_perfect_estimates(self):
        truth = {"a": 1, "b": 2}
        assert additive_error(truth, truth) == 0.0
        assert error_ratio(truth, truth) == 0.0
        assert false_negative_ratio(truth, truth) == 0.0

    def test_error_ratio(self):
        truth = {"a": 1, "b": 2, "c": 3, "d": 4}
        estimates = {"a": 1, "b": 9, "c": 3, "d": 0}
        assert error_ratio(estimates, truth) == 0.5

    def test_false_negative_ratio(self):
        truth = {"a": 5, "b": 5, "c": 5}
        estimates = {"a": 9, "b": 2, "c": 5}
        # 2 errors, 1 negative.
        assert false_negative_ratio(estimates, truth) == 0.5

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            additive_error({}, {})
        with pytest.raises(ValueError):
            error_ratio({}, {})
        with pytest.raises(ValueError):
            false_negative_ratio({}, {})

    def test_evaluate_filter(self):
        from repro import SpectralBloomFilter
        sbf = SpectralBloomFilter(1000, 5, seed=1)
        truth = {i: 1 + i % 3 for i in range(50)}
        for x, f in truth.items():
            sbf.insert(x, f)
        result = evaluate_filter(sbf, truth)
        assert set(result) == {"additive_error", "error_ratio",
                               "false_negative_ratio"}
        assert result["false_negative_ratio"] == 0.0


class TestRunner:
    def test_average_trials(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return {"x": float(seed)}

        out = average_trials(run, trials=3, base_seed=10)
        assert seen == [10, 11, 12]
        assert out["x"] == pytest.approx(11.0)

    def test_average_trials_invalid(self):
        with pytest.raises(ValueError):
            average_trials(lambda s: {}, trials=0)

    def test_build_and_measure(self):
        out = build_and_measure("ms", n=200, total=2000, z=0.5,
                                m=2000, seed=1)
        assert out["error_ratio"] < 0.2
        assert out["false_negative_ratio"] == 0.0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0")
        with pytest.raises(ValueError):
            bench_scale()


class TestTables:
    def test_format_basic(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 0.5]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "bb" in lines[-1]

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.00012345], [12345.678], [0.25],
                                     [0.0]])
        assert "0.000123" in table
        assert "1.23e+04" in table
        assert "0.25" in table

    def test_write_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_results("unit_test", "hello\n")
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read() == "hello\n"

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        from repro.bench.tables import results_dir
        target = tmp_path / "deep" / "results"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        assert results_dir() == str(target)
        assert target.is_dir()  # created on demand

    def test_results_dir_default_is_in_repo(self, monkeypatch):
        from repro.bench.tables import results_dir
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        path = results_dir()
        assert path.endswith(os.path.join("benchmarks", "results"))
