"""Behavioural tests for the three maintenance methods (§2.2, §3.2, §3.3)
and the Trapping refinement (§3.3.1)."""

import random

import pytest

from repro import SpectralBloomFilter
from repro.core.methods import (
    MinimalIncrease,
    MinimumSelection,
    RecurringMinimum,
    make_method,
)
from repro.core.trapping import TrappingRecurringMinimum


def zipf_stream(n_distinct, total, skew, seed):
    """Small local Zipfian sampler for method comparisons."""
    rng = random.Random(seed)
    weights = [1.0 / (i ** skew) for i in range(1, n_distinct + 1)]
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc)
    out = []
    for _ in range(total):
        r = rng.random() * acc
        lo, hi = 0, n_distinct - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


def run_stream(method, stream, m=3500, k=5, seed=0, **options):
    sbf = SpectralBloomFilter(m, k, method=method, seed=seed,
                              method_options=options)
    truth: dict[int, int] = {}
    for x in stream:
        truth[x] = truth.get(x, 0) + 1
        sbf.insert(x)
    return sbf, truth


def error_ratio(sbf, truth):
    errors = sum(1 for x, f in truth.items() if sbf.query(x) != f)
    return errors / len(truth)


class TestMinimumSelection:
    def test_estimate_is_min_counter(self):
        sbf = SpectralBloomFilter(200, 4, method="ms", seed=1)
        sbf.insert("x", 7)
        assert sbf.query("x") == min(sbf.counter_values("x")) == 7

    def test_error_rate_matches_bloom_error(self):
        """Claim 1: P(m_x != f_x) ~= E_b."""
        stream = zipf_stream(1000, 20_000, 0.5, seed=4)
        sbf, truth = run_stream("ms", stream, m=7000, k=5, seed=4)
        observed = error_ratio(sbf, truth)
        predicted = sbf.expected_bloom_error(len(truth))
        # Loose band: a single run of one seed.
        assert observed <= 3 * predicted + 0.02


class TestMinimalIncrease:
    def test_counters_grow_minimally(self):
        """MI performs the minimal increases keeping m_x >= f_x."""
        ms = SpectralBloomFilter(300, 5, method="ms", seed=2)
        mi = SpectralBloomFilter(300, 5, method="mi", seed=2)
        stream = zipf_stream(100, 2000, 1.0, seed=2)
        for x in stream:
            ms.insert(x)
            mi.insert(x)
        assert sum(mi) <= sum(ms)

    def test_mi_never_worse_than_ms(self):
        """Claim 4: per-item MI error <= MS error on insert-only data."""
        stream = zipf_stream(800, 15_000, 0.8, seed=9)
        ms, truth = run_stream("ms", stream, m=4000, seed=9)
        mi, _ = run_stream("mi", stream, m=4000, seed=9)
        for x, f in truth.items():
            assert f <= mi.query(x) <= ms.query(x)

    def test_mi_significantly_better_overall(self):
        """§3.4: 'MI performs about 5 times better in terms of error ratio'
        — we assert a conservative >= 1.5x improvement for one seed."""
        stream = zipf_stream(1000, 20_000, 0.5, seed=6)
        ms, truth = run_stream("ms", stream, m=7000, seed=6)
        mi, _ = run_stream("mi", stream, m=7000, seed=6)
        ms_err = error_ratio(ms, truth)
        mi_err = error_ratio(mi, truth)
        assert mi_err <= ms_err / 1.5 + 1e-9

    def test_bulk_insert_matches_iterated(self):
        """§3.2: 'increase the smallest counter(s) by r, and update every
        other counter to the maximum of its old value and m_x + r'."""
        a = SpectralBloomFilter(150, 5, method="mi", seed=3)
        b = SpectralBloomFilter(150, 5, method="mi", seed=3)
        rng = random.Random(0)
        for _ in range(300):
            x = rng.randrange(40)
            a.insert(x, 3)
            for _ in range(3):
                b.insert(x)
        for x in range(40):
            assert a.query(x) == b.query(x)

    def test_supports_deletion_flag(self):
        sbf = SpectralBloomFilter(100, 3, method="mi")
        assert sbf.method.supports_deletion is False
        assert SpectralBloomFilter(100, 3, method="ms").method.supports_deletion


class TestRecurringMinimum:
    def test_default_secondary_is_half(self):
        sbf = SpectralBloomFilter(1000, 5, method="rm", seed=1)
        assert sbf.method.secondary_m == 500

    def test_secondary_options(self):
        sbf = SpectralBloomFilter(1000, 5, method="rm", seed=1,
                                  method_options={"secondary_m": 123,
                                                  "secondary_k": 3})
        assert sbf.method.secondary.m == 123
        assert sbf.method.secondary.k == 3

    def test_rm_beats_ms_on_skewed_stream(self):
        """§3.3/Table 1: with the primary at gamma ~= 0.7 and a secondary of
        m/2, RM's error ratio is well below MS's at the same primary size."""
        n = 1000
        stream = zipf_stream(n, 20_000, 0.5, seed=14)
        m = round(n * 5 / 0.7)
        ms, truth = run_stream("ms", stream, m=m, seed=14)
        rm, _ = run_stream("rm", stream, m=m, seed=14, secondary_m=m // 2)
        assert error_ratio(rm, truth) < error_ratio(ms, truth)

    def test_rm_recurring_minimum_fraction_matches_table1(self):
        """Table 1 at gamma = 0.7: P(Rx) ~= 0.81."""
        n = 1000
        stream = zipf_stream(n, 20_000, 0.5, seed=14)
        m = round(n * 5 / 0.7)
        rm, truth = run_stream("rm", stream, m=m, seed=14, secondary_m=m // 2)
        recurring = sum(
            1 for x in truth
            if rm.method._has_recurring_minimum(rm.counter_values(x)))
        assert recurring / len(truth) == pytest.approx(0.81, abs=0.08)

    def test_rm_supports_deletions_without_false_negatives(self):
        stream = zipf_stream(300, 6000, 0.7, seed=15)
        sbf, truth = run_stream("rm", stream, m=2500, seed=15)
        victims = list(truth)[::4]
        for x in victims:
            sbf.delete(x, truth[x])
            truth[x] = 0
        for x, f in truth.items():
            assert sbf.query(x) >= f

    def test_marker_filter_variant(self):
        stream = zipf_stream(500, 8000, 0.6, seed=16)
        sbf, truth = run_stream("rm", stream, m=3000, seed=16,
                                use_marker=True)
        assert sbf.method.marker is not None
        negatives = sum(1 for x, f in truth.items() if sbf.query(x) < f)
        assert negatives == 0

    def test_storage_bits_include_secondary(self):
        plain = SpectralBloomFilter(1000, 5, method="ms", seed=1)
        rm = SpectralBloomFilter(1000, 5, method="rm", seed=1)
        rm.insert("x", 100)
        plain.insert("x", 100)
        assert rm.storage_bits() > plain.storage_bits()

    def test_single_vs_recurring_minimum_detection(self):
        rm = SpectralBloomFilter(100, 4, method="rm", seed=1).method
        assert rm._has_recurring_minimum((2, 2, 3, 4))
        assert not rm._has_recurring_minimum((1, 2, 3, 4))
        assert rm._has_recurring_minimum((5, 5, 5, 5))

    def test_shadowed_item_estimate_from_secondary(self):
        """An item detected with a single minimum must be answerable from
        the secondary with its uncontaminated count."""
        sbf = SpectralBloomFilter(50, 3, method="rm", seed=2)
        # Flood the primary to force collisions.
        for x in range(200):
            sbf.insert(x)
        negatives = sum(1 for x in range(200) if sbf.query(x) < 1)
        assert negatives == 0


class TestTrappingRecurringMinimum:
    def test_trap_repairs_late_detection(self):
        """Construct the §3.3.1 scenario: x transferred with a contaminated
        value, the contaminator keeps arriving, the trap claws the
        contamination back."""
        # Find a pair of keys sharing exactly one counter.
        seed = 0
        probe = SpectralBloomFilter(64, 3, method="ms", seed=seed)
        pair = None
        keys = list(range(400))
        for a in keys:
            ia = set(probe.indices(a))
            for b in keys:
                if a == b:
                    continue
                shared = ia & set(probe.indices(b))
                if len(shared) == 1:
                    pair = (a, b)
                    break
            if pair:
                break
        assert pair is not None
        x, y = pair

        def run(method):
            sbf = SpectralBloomFilter(64, 3, method=method, seed=seed)
            # y contaminates first (10 arrivals), then x arrives once, then
            # y keeps arriving (late firing opportunities).
            for _ in range(10):
                sbf.insert(y)
            sbf.insert(x)
            for _ in range(10):
                sbf.insert(y)
            return sbf.query(x)

        rm_est = run("rm")
        trm_est = run("trm")
        assert trm_est <= rm_est
        assert trm_est >= 1  # never a false negative for this scenario

    def test_trap_fires_counted(self):
        stream = zipf_stream(300, 6000, 1.2, seed=17)
        sbf, truth = run_stream("trm", stream, m=900, seed=17)
        assert isinstance(sbf.method, TrappingRecurringMinimum)
        for x, f in truth.items():
            assert sbf.query(x) >= 0
        assert sbf.method.trap_fires >= 0

    def test_delete_clears_owned_traps(self):
        sbf = SpectralBloomFilter(64, 3, method="trm", seed=1)
        for x in range(100):
            sbf.insert(x, 2)
        owners = {t.owner for t in sbf.method._traps.values()}
        if owners:
            victim = next(iter(owners))
            sbf.delete(victim, 1)
            assert all(t.owner != victim
                       for t in sbf.method._traps.values())

    def test_storage_accounts_for_traps(self):
        trm = SpectralBloomFilter(512, 4, method="trm", seed=1)
        rm = SpectralBloomFilter(512, 4, method="rm", seed=1)
        assert trm.storage_bits() > rm.storage_bits()


class TestMakeMethod:
    def test_long_names(self):
        sbf = SpectralBloomFilter(100, 3)
        assert make_method("minimum-selection", sbf).name == "ms"
        assert make_method("minimal-increase", sbf).name == "mi"
        assert make_method("recurring-minimum", sbf).name == "rm"
        assert make_method("trapping", sbf).name == "trm"

    def test_classes(self):
        sbf = SpectralBloomFilter(100, 3)
        assert isinstance(make_method(MinimumSelection, sbf),
                          MinimumSelection)
        assert isinstance(make_method(MinimalIncrease, sbf), MinimalIncrease)
        assert isinstance(make_method(RecurringMinimum, sbf),
                          RecurringMinimum)

    def test_unknown(self):
        sbf = SpectralBloomFilter(100, 3)
        with pytest.raises(ValueError):
            make_method("bogus", sbf)
