"""Chaos suite: the distributed substrate under seeded fault schedules.

Every run is reproducible: fault policies and backoff jitter draw from
seeded RNGs, so a failing schedule can be replayed bit for bit.  The
acceptance bar (see ISSUE 1): under 10% drop / 5% duplicate / 5% corrupt,
Bloomjoin and Summary-Cache runs must complete with exact results via
retry + fallback, with *every* injected corrupt frame detected by
checksum — zero silent acceptances.
"""

import random

import pytest

from repro.apps.bloomjoin import (
    bloomjoin,
    exact_grouped_join_count,
    resilient_bloomjoin,
    resilient_spectral_bloomjoin_count,
    spectral_bloomjoin_count,
)
from repro.apps.summary_cache import build_mesh
from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import dump_sbf
from repro.db.faults import DROP, OK, FaultPolicy, FaultyNetwork
from repro.db.relation import Relation
from repro.db.site import Network, two_sites
from repro.db.transport import (
    DeliveryFailed,
    ReliableChannel,
    open_envelope,
    seal_envelope,
)
from repro.filters.bloom import BloomFilter
from repro.storage.backends import ArrayBackend, make_backend


def chaos_policy(seed):
    """The ISSUE 1 acceptance schedule: 10% drop, 5% dup, 5% corrupt."""
    return FaultPolicy(drop=0.10, duplicate=0.05, corrupt=0.05, seed=seed)


def make_relations(seed, n_left=120, n_right=150):
    rng = random.Random(seed)
    r1 = Relation("R1", ("a", "b"),
                  [(rng.randrange(40), i) for i in range(n_left)])
    r2 = Relation("R2", ("a", "c"),
                  [(rng.randrange(60), 1000 + i) for i in range(n_right)])
    return r1, r2


class TestFaultPolicy:
    def test_same_seed_same_schedule(self):
        a = FaultPolicy(drop=0.3, duplicate=0.2, corrupt=0.2, seed=17)
        b = FaultPolicy(drop=0.3, duplicate=0.2, corrupt=0.2, seed=17)
        assert [a.decide() for _ in range(200)] == \
            [b.decide() for _ in range(200)]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(drop=-0.1)
        with pytest.raises(ValueError):
            FaultPolicy(corrupt=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(drop=0.6, duplicate=0.6)

    def test_corrupt_flips_exactly_one_bit(self):
        policy = FaultPolicy(seed=3)
        frame = bytes(range(32))
        mutated = policy.corrupt_bytes(frame)
        assert len(mutated) == len(frame)
        diff = [a ^ b for a, b in zip(frame, mutated)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_all_ok_without_faults(self):
        policy = FaultPolicy(seed=5)
        assert all(policy.decide() == OK for _ in range(100))

    def test_certain_drop(self):
        policy = FaultPolicy(drop=1.0, seed=6)
        assert all(policy.decide() == DROP for _ in range(50))


class TestFaultyNetwork:
    def test_drop_in_replacement_without_policies(self):
        net = FaultyNetwork()
        arrivals = net.transmit("a", "b", "frame", b"hello")
        assert arrivals == [b"hello"]
        assert net.total_bits == len(b"hello") * 8
        assert all(count == 0 for count in net.faults.values())

    def test_drop(self):
        net = FaultyNetwork(FaultPolicy(drop=1.0, seed=1))
        assert net.transmit("a", "b", "frame", b"data") == []
        assert net.faults["drops"] == 1
        assert net.total_bits == 32  # the attempt still burned wire

    def test_duplicate_charges_both_copies(self):
        net = FaultyNetwork(FaultPolicy(duplicate=1.0, seed=1))
        arrivals = net.transmit("a", "b", "frame", b"data")
        assert arrivals == [b"data", b"data"]
        assert net.faults["duplicates"] == 1
        assert net.total_bits == 2 * 32

    def test_corrupt_delivers_damaged_frame(self):
        net = FaultyNetwork(FaultPolicy(corrupt=1.0, seed=2))
        original = bytes(64)
        (arrival,) = net.transmit("a", "b", "frame", original)
        assert arrival != original
        assert len(arrival) == len(original)
        assert net.faults["corruptions"] == 1

    def test_delay_reorders_frames(self):
        net = FaultyNetwork()
        net.set_policy("a", "b", FaultPolicy(delay=1.0, seed=3))
        assert net.transmit("a", "b", "frame", b"first") == []
        assert net.pending_delayed("a", "b") == 1
        net.set_policy("a", "b", None)
        arrivals = net.transmit("a", "b", "frame", b"second")
        assert arrivals == [b"second", b"first"]  # late and out of order

    def test_label_specific_policy(self):
        net = FaultyNetwork()
        net.set_policy("a", "b", FaultPolicy(drop=1.0, seed=4),
                       label="synopsis")
        assert net.transmit("a", "b", "synopsis", b"x") == []
        assert net.transmit("a", "b", "tuples", b"y") == [b"y"]

    def test_policies_are_per_direction(self):
        net = FaultyNetwork()
        net.set_policy("a", "b", FaultPolicy(drop=1.0, seed=5))
        assert net.transmit("a", "b", "frame", b"x") == []
        assert net.transmit("b", "a", "frame", b"y") == [b"y"]

    def test_non_bytes_frames_rejected(self):
        net = FaultyNetwork()
        with pytest.raises(TypeError):
            net.transmit("a", "b", "frame", {"not": "bytes"})


class TestEnvelope:
    def test_roundtrip(self):
        envelope = seal_envelope(7, b"payload")
        assert open_envelope(envelope) == (7, b"payload")

    def test_every_bitflip_detected(self):
        envelope = seal_envelope(1, bytes(range(64)))
        for position in range(len(envelope) * 8):
            mutated = bytearray(envelope)
            mutated[position // 8] ^= 1 << (position % 8)
            assert open_envelope(bytes(mutated)) is None

    def test_truncation_detected(self):
        envelope = seal_envelope(1, b"abcdef")
        for cut in range(len(envelope)):
            assert open_envelope(envelope[:cut]) is None


class TestReliableChannel:
    def test_clean_network_single_attempt(self):
        net = Network()
        channel = ReliableChannel(net, "a", "b", seed=1)
        assert channel.send("frame", b"payload") == b"payload"
        assert channel.stats.attempts == 1
        assert channel.stats.retries == 0
        assert channel.stats.delivered == 1

    def test_retries_through_losses(self):
        net = FaultyNetwork(FaultPolicy(drop=0.5, seed=11))
        channel = ReliableChannel(net, "a", "b", max_retries=20, seed=11)
        for i in range(20):
            payload = f"message {i}".encode()
            assert channel.send("frame", payload) == payload
        assert channel.stats.delivered == 20
        assert channel.stats.retries > 0
        assert channel.stats.timeouts == channel.stats.retries
        assert channel.stats.backoff_seconds > 0

    def test_backoff_sleep_hook_is_optional_and_deterministic(self):
        # Default sleep=None: backoff is simulated (accounted, never
        # slept) so chaos runs replay instantly and identically.  A real
        # deployment injects sleep=time.sleep; here a recorder proves the
        # hook receives exactly the accounted pauses — capped exponential
        # growth with seeded jitter.
        naps: list[float] = []
        net = FaultyNetwork(FaultPolicy(drop=0.5, seed=11))
        channel = ReliableChannel(net, "a", "b", max_retries=20, seed=11,
                                  sleep=naps.append)
        for i in range(20):
            payload = f"message {i}".encode()
            assert channel.send("frame", payload) == payload
        assert len(naps) == channel.stats.retries
        assert sum(naps) == pytest.approx(channel.stats.backoff_seconds)
        assert all(nap <= channel.max_backoff * 1.5 for nap in naps)
        # Same seeds, no hook: identical schedule, nothing slept.
        net2 = FaultyNetwork(FaultPolicy(drop=0.5, seed=11))
        silent = ReliableChannel(net2, "a", "b", max_retries=20, seed=11)
        for i in range(20):
            silent.send("frame", f"message {i}".encode())
        assert silent.stats.backoff_seconds == \
            pytest.approx(channel.stats.backoff_seconds)

    def test_corruption_always_detected_never_accepted(self):
        net = FaultyNetwork(FaultPolicy(corrupt=1.0, seed=12))
        channel = ReliableChannel(net, "a", "b", max_retries=3, seed=12)
        with pytest.raises(DeliveryFailed):
            channel.send("frame", b"precious")
        assert channel.stats.corrupt_detected == channel.stats.attempts == 4
        assert channel.stats.delivered == 0
        assert channel.stats.gave_up == 1

    def test_duplicates_deduplicated(self):
        net = FaultyNetwork(FaultPolicy(duplicate=1.0, seed=13))
        channel = ReliableChannel(net, "a", "b", seed=13)
        assert channel.send("frame", b"one") == b"one"
        assert channel.send("frame", b"two") == b"two"
        assert channel.stats.delivered == 2
        assert channel.stats.duplicates_ignored == 2

    def test_delayed_retry_copy_is_deduplicated(self):
        # delay=1.0: every attempt is held back and flushed during the
        # next transmit, so a retry receives the previous attempt's copy
        # (same sequence number) alongside its own held slot.
        net = FaultyNetwork()
        net.set_policy("a", "b", FaultPolicy(delay=1.0, seed=14))
        channel = ReliableChannel(net, "a", "b", max_retries=4, seed=14)
        assert channel.send("frame", b"first") == b"first"
        assert channel.stats.delivered == 1
        assert channel.stats.retries >= 1
        # The extra identical-seq copies were never double-processed.
        assert channel.stats.duplicates_ignored == 0
        assert channel.stats.stale_frames == 0

    def test_stale_copy_of_failed_send_counted(self):
        # seq 0's only attempt is held back and its send gives up; the
        # held copy then surfaces during seq 1's send and must be
        # recognised as stale, not delivered as seq 1's payload.
        net = FaultyNetwork()
        net.set_policy("a", "b", FaultPolicy(delay=1.0, seed=15))
        channel = ReliableChannel(net, "a", "b", max_retries=0, seed=15)
        with pytest.raises(DeliveryFailed):
            channel.send("frame", b"doomed")
        net.set_policy("a", "b", None)
        assert channel.send("frame", b"healthy") == b"healthy"
        assert channel.stats.stale_frames == 1

    def test_gave_up_raises_with_stats(self):
        net = FaultyNetwork(FaultPolicy(drop=1.0, seed=16))
        channel = ReliableChannel(net, "a", "b", max_retries=2, seed=16)
        with pytest.raises(DeliveryFailed) as excinfo:
            channel.send("frame", b"never")
        assert excinfo.value.stats.attempts == 3
        assert excinfo.value.stats.gave_up == 1

    def test_validator_rejection_retries(self):
        net = Network()
        channel = ReliableChannel(net, "a", "b", max_retries=2, seed=17)
        seen = []

        def picky(payload):
            seen.append(payload)
            if len(seen) == 1:
                raise ValueError("not convinced")

        assert channel.send("frame", b"data", validator=picky) == b"data"
        assert channel.stats.corrupt_detected == 1
        assert channel.stats.retries == 1
        assert channel.stats.delivered == 1

    def test_deterministic_replay(self):
        def run():
            net = FaultyNetwork(chaos_policy(21))
            channel = ReliableChannel(net, "a", "b", max_retries=10,
                                      seed=21)
            for i in range(30):
                channel.send("frame", f"m{i}".encode())
            return channel.stats.as_dict(), dict(net.faults)

        assert run() == run()

    def test_configuration_validation(self):
        net = Network()
        with pytest.raises(ValueError):
            ReliableChannel(net, "a", "b", max_retries=-1)
        with pytest.raises(ValueError):
            ReliableChannel(net, "a", "b", base_backoff=0)
        with pytest.raises(ValueError):
            ReliableChannel(net, "a", "b", jitter=-0.5)

    def test_backoff_is_capped(self):
        net = Network()
        channel = ReliableChannel(net, "a", "b", base_backoff=1.0,
                                  max_backoff=4.0, jitter=0.0, seed=1)
        assert channel._backoff(1) == 1.0
        assert channel._backoff(3) == 4.0
        assert channel._backoff(10) == 4.0


@pytest.mark.chaos
class TestChaosBloomjoin:
    """The acceptance-criteria schedule: exact answers despite chaos."""

    def run_join(self, *, channel_options=None):
        net = FaultyNetwork(chaos_policy(42))
        site1, site2, _ = two_sites(net)
        r1, r2 = make_relations(1)
        site1.store(r1)
        site2.store(r2)
        joined, report = resilient_bloomjoin(
            site1, "R1", site2, "R2", "a", m=2048, k=4, seed=3,
            channel_options=channel_options or {"max_retries": 10})
        return net, r1, r2, joined, report

    def test_exact_join_under_chaos(self):
        net, r1, r2, joined, report = self.run_join()
        expected = r1.join(r2, "a")
        assert sorted(joined.rows) == sorted(expected.rows)
        assert report["fallback"] is False
        # The schedule actually injected faults.
        assert sum(net.faults.values()) > 0

    def test_every_corrupt_frame_detected(self):
        # A single join ships only a couple of frames; run many joins over
        # one chaotic network so the 5% corruption rate actually fires.
        net = FaultyNetwork(chaos_policy(42))
        site1, site2, _ = two_sites(net)
        detected = 0
        for round_number in range(25):
            r1, r2 = make_relations(round_number)
            site1.relations.clear()
            site2.relations.clear()
            site1.store(r1)
            site2.store(r2)
            joined, report = resilient_bloomjoin(
                site1, "R1", site2, "R2", "a", m=2048, k=4,
                seed=round_number, channel_options={"max_retries": 10})
            assert sorted(joined.rows) == sorted(r1.join(r2, "a").rows)
            detected += (report["synopsis_channel"].corrupt_detected
                         + report["tuple_channel"].corrupt_detected)
        assert net.faults["corruptions"] > 0
        assert detected == net.faults["corruptions"]  # zero silent accepts

    def test_delivery_metrics_exposed(self):
        net, _r1, _r2, _joined, report = self.run_join()
        stats = report["synopsis_channel"].merge(report["tuple_channel"])
        assert stats.attempts >= 2
        assert stats.delivered == 2  # synopsis leg + tuple leg
        if net.faults["drops"] or net.faults["corruptions"]:
            assert stats.retries > 0

    def test_fallback_to_full_tuple_shipping(self):
        net = FaultyNetwork()
        net.set_policy("site1", "site2", FaultPolicy(drop=1.0, seed=7))
        site1, site2, _ = two_sites(net)
        r1, r2 = make_relations(2)
        site1.store(r1)
        site2.store(r2)
        joined, report = resilient_bloomjoin(
            site1, "R1", site2, "R2", "a", m=1024, k=4, seed=4,
            channel_options={"max_retries": 2})
        assert report["fallback"] is True
        assert report["synopsis_channel"].gave_up == 1
        # Correct answer, more traffic — and the traffic is visible.
        assert sorted(joined.rows) == sorted(r1.join(r2, "a").rows)
        assert net.breakdown().get("fallback-tuples", 0) > 0

    def test_matches_clean_network_run(self):
        _net, r1, r2, joined, _report = self.run_join()
        clean1, clean2, _ = two_sites()
        clean1.store(r1)
        clean2.store(r2)
        baseline = bloomjoin(clean1, "R1", clean2, "R2", "a", m=2048,
                             k=4, seed=3)
        assert sorted(joined.rows) == sorted(baseline.rows)


@pytest.mark.chaos
class TestChaosSpectralBloomjoin:
    def test_counts_match_clean_run_and_bound_truth(self):
        net = FaultyNetwork(chaos_policy(43))
        site1, site2, _ = two_sites(net)
        r1, r2 = make_relations(3)
        site1.store(r1)
        site2.store(r2)
        counts, report = resilient_spectral_bloomjoin_count(
            site1, "R1", site2, "R2", "a", m=4096, k=4, seed=5,
            channel_options={"max_retries": 10})
        assert report["fallback"] is False
        clean1, clean2, _ = two_sites()
        clean1.store(r1)
        clean2.store(r2)
        baseline = spectral_bloomjoin_count(clean1, "R1", clean2, "R2",
                                            "a", m=4096, k=4, seed=5)
        assert counts == baseline  # intact synopsis => identical estimates
        exact = exact_grouped_join_count(r1, r2, "a")
        for value, true_count in exact.items():
            assert counts.get(value, 0) >= true_count  # one-sided

    def test_fallback_gives_exact_counts(self):
        net = FaultyNetwork()
        net.set_policy("site2", "site1", FaultPolicy(drop=1.0, seed=8),
                       label="sbf")
        site1, site2, _ = two_sites(net)
        r1, r2 = make_relations(4)
        site1.store(r1)
        site2.store(r2)
        counts, report = resilient_spectral_bloomjoin_count(
            site1, "R1", site2, "R2", "a", m=2048, k=4, seed=6,
            channel_options={"max_retries": 1})
        assert report["fallback"] is True
        assert counts == exact_grouped_join_count(r1, r2, "a")
        assert net.breakdown().get("fallback-tuples", 0) > 0


@pytest.mark.chaos
class TestChaosSummaryCache:
    def build_chaos_mesh(self, seed=44, spectral=False):
        net = FaultyNetwork(chaos_policy(seed))
        proxies = build_mesh(["p1", "p2", "p3"], m=2048, k=4, seed=1,
                             spectral=spectral, network=net,
                             max_retries=10)
        p1, p2, p3 = proxies
        for i in range(50):
            p2.store(f"doc{i}")
        for i in range(40, 90):
            p3.store(f"doc{i}")
        for proxy in proxies:
            proxy.publish()
        return net, proxies

    def test_routing_correct_under_chaos(self):
        _net, (p1, _p2, _p3) = self.build_chaos_mesh()
        assert p1.lookup("doc10") == ("p2", "doc10")
        assert p1.lookup("doc80") == ("p3", "doc80")
        assert p1.lookup("nowhere") is None

    def test_every_corrupt_summary_frame_detected(self):
        # Keep the mesh publishing so the 5% corruption rate fires often.
        net, proxies = self.build_chaos_mesh(seed=45)
        for round_number in range(15):
            proxies[round_number % 3].store(f"extra{round_number}")
            for proxy in proxies:
                proxy.publish()
        detected = sum(stats.corrupt_detected
                       for proxy in proxies
                       for stats in proxy.channel_stats().values())
        assert net.faults["corruptions"] > 0
        assert detected == net.faults["corruptions"]

    def test_spectral_routing_under_chaos(self):
        net = FaultyNetwork(chaos_policy(46))
        proxies = build_mesh(["a", "b", "c"], m=4096, k=4, seed=3,
                             spectral=True, network=net, max_retries=10)
        a, b, c = proxies
        b.store("hot")
        for _ in range(10):
            c.store("hot")
        for proxy in proxies:
            proxy.publish()
        source, _obj = a.lookup("hot")
        assert source == "c"  # popularity-aware routing survived chaos

    def test_undeliverable_summary_serves_last_good(self):
        net = FaultyNetwork()
        proxies = build_mesh(["p1", "p2"], m=1024, k=3, seed=2,
                             network=net, max_retries=1)
        p1, p2 = proxies
        p2.store("old-doc")
        p2.publish()  # clean: p1 gets a good summary
        p2.store("new-doc")
        net.set_policy("p2", "p1", FaultPolicy(drop=1.0, seed=9))
        outcome = p2.publish()
        assert outcome["failed"] == 1
        assert p2.publish_failures == 1
        assert p1.staleness["p2"] == 1
        # Served from the last good summary: old doc still routable,
        # new doc invisible (missed remote hit, not an error).
        assert p1.lookup("old-doc") == ("p2", "old-doc")
        assert p1.lookup("new-doc") is None
        # Recovery: once the channel heals, staleness resets.
        net.set_policy("p2", "p1", None)
        p2.publish()
        assert p1.staleness["p2"] == 0
        assert p1.lookup("new-doc") == ("p2", "new-doc")

    def test_corrupt_summary_rejected_not_trusted(self):
        proxies = build_mesh(["p1", "p2"], m=512, k=3, seed=4)
        p1, p2 = proxies
        p2.store("thing")
        p2.publish()
        good = p1.peer_summaries["p2"]
        # Hand the receiver a bit-flipped Bloom frame directly.
        from repro.core.serialize import dump_bloom
        frame = bytearray(dump_bloom(p2.build_summary()))
        frame[len(frame) // 2] ^= 0x10
        assert p1.receive_summary("p2", bytes(frame)) is False
        assert p1.summaries_rejected == 1
        assert p1.staleness["p2"] == 1
        assert p1.peer_summaries["p2"] is good  # last good still serving


class TestIntegrityAudit:
    @pytest.mark.parametrize("method", ["ms", "mi", "rm", "trm"])
    def test_clean_filters_pass(self, method):
        sbf = SpectralBloomFilter(512, 4, method=method, seed=5)
        rng = random.Random(5)
        for _ in range(600):
            sbf.insert(rng.randrange(100))
        assert sbf.check_integrity() == []

    def test_clean_after_deletions(self):
        sbf = SpectralBloomFilter(512, 4, method="rm", seed=6)
        for x in range(100):
            sbf.insert(x, 3)
        for x in range(50):
            sbf.delete(x, 2)
        assert sbf.check_integrity() == []

    def test_tampered_total_count_flagged(self):
        sbf = SpectralBloomFilter(256, 3, seed=7)
        sbf.update({"a": 4, "b": 2})
        sbf.total_count += 5
        assert any("counter sum" in issue
                   for issue in sbf.check_integrity())

    def test_tampered_counters_flagged(self):
        sbf = SpectralBloomFilter(256, 3, method="rm", seed=8)
        for x in range(200):
            sbf.insert(x)
        # The audit tolerates a sub-k surplus (join products round their
        # total_count down to sum // k), so tamper beyond it.
        sbf.counters.set(17, sbf.counters.get(17) + sbf.k)
        assert any("primary counter sum" in issue
                   for issue in sbf.check_integrity())

    def test_deflated_counter_flagged_exactly(self):
        sbf = SpectralBloomFilter(256, 3, seed=8)
        for x in range(200):
            sbf.insert(x)
        lowered = next(i for i in range(sbf.m) if sbf.counters.get(i) > 0)
        sbf.counters.set(lowered, sbf.counters.get(lowered) - 1)
        assert any("counter sum" in issue
                   for issue in sbf.check_integrity())

    def test_tampered_secondary_flagged(self):
        sbf = SpectralBloomFilter(256, 3, method="rm", seed=9)
        for x in range(300):
            sbf.insert(x)
        sbf.method.secondary.total_count += 1
        assert any("rm secondary" in issue
                   for issue in sbf.check_integrity())

    def test_missing_marker_flagged(self):
        sbf = SpectralBloomFilter(128, 3, method="rm", seed=10)
        sbf.insert("x")
        sbf.method.marker = None
        assert any("marker" in issue for issue in sbf.check_integrity())

    def test_mismatched_marker_flagged(self):
        sbf = SpectralBloomFilter(128, 3, method="rm", seed=11)
        sbf.insert("x")
        sbf.method.marker = BloomFilter(64, 3, seed=11)
        assert any("marker" in issue for issue in sbf.check_integrity())

    def test_join_product_passes(self):
        a = SpectralBloomFilter(600, 4, seed=12)
        b = SpectralBloomFilter(600, 4, seed=12)
        a.update({"j1": 2, "j2": 3})
        b.update({"j1": 4, "zz": 1})
        assert (a * b).check_integrity() == []

    def test_union_passes(self):
        a = SpectralBloomFilter(400, 4, method="rm", seed=13)
        b = SpectralBloomFilter(400, 4, method="rm", seed=13)
        for x in range(100):
            a.insert(x)
            b.insert(x + 50)
        assert (a + b).check_integrity() == []


class TestMakeBackendValidation:
    def test_instance_with_options_is_loud(self):
        backend = ArrayBackend(64)
        with pytest.raises(ValueError, match="options"):
            make_backend(backend, 64, refresh_threshold=3)

    def test_instance_passthrough_still_works(self):
        backend = ArrayBackend(64)
        assert make_backend(backend, 64) is backend

    def test_wrong_size_instance_still_rejected(self):
        with pytest.raises(ValueError):
            make_backend(ArrayBackend(32), 64)
