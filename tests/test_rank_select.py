"""Tests for the rank/select directory against a naive reference."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.rank_select import RankDirectory


def naive_rank1(bits, pos):
    return sum(bits[: pos + 1])


def naive_select1(bits, j):
    seen = 0
    for i, b in enumerate(bits):
        seen += b
        if seen == j:
            return i
    raise ValueError


class TestRank:
    def test_empty_vector(self):
        d = RankDirectory(BitVector(0))
        assert d.total_ones == 0
        assert d.rank1(0) == 0

    def test_all_ones(self):
        bits = [1] * 200
        d = RankDirectory(BitVector.from_bits(bits))
        for pos in (0, 63, 64, 100, 199):
            assert d.rank1(pos) == pos + 1

    def test_rank_minus_one_is_zero(self):
        d = RankDirectory(BitVector.from_bits([1, 1]))
        assert d.rank1(-1) == 0

    def test_rank_past_end_counts_all(self):
        d = RankDirectory(BitVector.from_bits([1, 0, 1]))
        assert d.rank1(10_000) == 2

    def test_rank0_complements_rank1(self):
        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        d = RankDirectory(BitVector.from_bits(bits))
        for pos in range(len(bits)):
            assert d.rank0(pos) + d.rank1(pos) == pos + 1

    def test_paper_flag_translation(self):
        """§4.7.1: r_j = rank(F, j) maps subgroup j to its offset-vector slot."""
        flags = [0, 1, 0, 0, 1, 1, 0, 1]
        d = RankDirectory(BitVector.from_bits(flags))
        # Subgroup 4 is the 2nd flagged subgroup.
        assert d.rank1(4) == 2

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=700))
    def test_rank_matches_naive(self, bits):
        d = RankDirectory(BitVector.from_bits(bits))
        for pos in range(0, len(bits), max(1, len(bits) // 17)):
            assert d.rank1(pos) == naive_rank1(bits, pos)


class TestSelect:
    def test_select_out_of_range_raises(self):
        d = RankDirectory(BitVector.from_bits([1, 0, 1]))
        with pytest.raises(ValueError):
            d.select1(0)
        with pytest.raises(ValueError):
            d.select1(3)

    def test_select_simple(self):
        d = RankDirectory(BitVector.from_bits([0, 1, 0, 1, 1]))
        assert d.select1(1) == 1
        assert d.select1(2) == 3
        assert d.select1(3) == 4

    def test_select_across_superblocks(self):
        rng = random.Random(7)
        bits = [1 if rng.random() < 0.05 else 0 for _ in range(3000)]
        d = RankDirectory(BitVector.from_bits(bits))
        for j in range(1, sum(bits) + 1):
            assert d.select1(j) == naive_select1(bits, j)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=700))
    def test_select_inverts_rank(self, bits):
        d = RankDirectory(BitVector.from_bits(bits))
        for j in range(1, d.total_ones + 1):
            pos = d.select1(j)
            assert bits[pos] == 1
            assert d.rank1(pos) == j


class TestRebuild:
    def test_rebuild_after_mutation(self):
        vec = BitVector.from_bits([1, 0, 0, 0])
        d = RankDirectory(vec)
        assert d.total_ones == 1
        vec.set_bit(2)
        d.rebuild()
        assert d.total_ones == 2
        assert d.select1(2) == 2

    def test_size_is_sublinear(self):
        """The directory should cost far less than the vector it indexes."""
        bits = [1, 0] * 50_000
        vec = BitVector.from_bits(bits)
        d = RankDirectory(vec)
        assert d.size_bits() < len(vec)
