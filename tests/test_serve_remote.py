"""RemoteShard / ShardServer: serving across the faulty wire.

Chaos tests are seeded (policies and channels share fixed seeds), so the
fault schedules — and therefore every retry, duplicate, and checksum
rejection — replay identically on every run.
"""

import pytest

from repro.core.serialize import open_frame
from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    MetricsRegistry,
    ServingEngine,
    ShardBatcher,
    ShardedSBF,
    ShardServer,
    RemoteShard,
    run_requests,
)
from repro.serve.remote import RESPONSE_MAGIC

M, K, SEED = 1024, 4, 5


def make_handle() -> ConcurrentSBF:
    return ConcurrentSBF(SpectralBloomFilter(
        M, K, seed=SEED, method="ms", backend="array",
        hash_family="blocked"))


def make_remote(policy=None, *, max_retries: int = 6,
                metrics: MetricsRegistry | None = None,
                ) -> tuple[RemoteShard, FaultyNetwork]:
    network = FaultyNetwork(policy)
    server = ShardServer(make_handle())
    remote = RemoteShard(server, network, "client", "shard0",
                         channel_options={"max_retries": max_retries},
                         metrics=metrics)
    return remote, network


def test_remote_matches_local_on_a_clean_wire():
    remote, _ = make_remote()
    local = make_handle()
    keys = [f"key:{i % 37}" for i in range(200)] + list(range(100))
    for key in keys:
        remote.insert(key)
        local.insert(key)
    for key in keys + ["miss", -1]:
        assert remote.query(key) == local.query(key)
        assert remote.contains(key, 2) == local.contains(key, 2)
    assert remote.total_count == local.total_count
    remote.delete(keys[0])
    local.delete(keys[0])
    remote.set("key:0", 3)
    local.set("key:0", 3)
    assert remote.query(keys[0]) == local.query(keys[0])
    assert remote.query("key:0") == 3
    assert remote.params() == {"m": M, "k": K, "seed": SEED, "method": "ms"}


@pytest.mark.chaos
def test_remote_matches_local_under_seeded_chaos():
    registry = MetricsRegistry()
    remote, _ = make_remote(
        FaultPolicy(drop=0.2, duplicate=0.1, corrupt=0.15, seed=23),
        max_retries=12, metrics=registry)
    local = make_handle()
    keys = list(range(120)) + [f"s:{i}" for i in range(30)]
    for key in keys:
        remote.insert(key)
        local.insert(key)
    for key in keys:
        assert remote.query(key) == local.query(key)
    stats = remote.requests.stats
    assert stats.gave_up == 0               # the budget absorbed the chaos
    assert stats.retries > 0                # ...which was real
    assert stats.attempts > stats.delivered
    # Both legs' delivery metrics are scraped from the one registry.
    channels = registry.snapshot()["channels"]
    assert channels["remote.shard0.requests"]["delivered"] > 0
    assert channels["remote.shard0.responses"]["delivered"] > 0
    assert channels["remote.shard0.requests"]["corrupt_detected"] \
        + channels["remote.shard0.responses"]["corrupt_detected"] > 0


@pytest.mark.chaos
def test_exhausted_budget_raises_delivery_failed():
    remote, _ = make_remote(FaultPolicy(drop=1.0, seed=3), max_retries=2)
    with pytest.raises(DeliveryFailed):
        remote.insert("key")
    assert remote.requests.stats.gave_up == 1


def _mixed_fleet() -> tuple[ShardedSBF, FaultyNetwork]:
    """Shard 0 local, shard 1 behind the wire — same filter parameters."""
    network = FaultyNetwork()
    remote = RemoteShard(ShardServer(make_handle()), network,
                         "router", "shard1",
                         channel_options={"max_retries": 2})
    return ShardedSBF([make_handle(), remote]), network


@pytest.mark.chaos
def test_unreachable_shard_degrades_only_its_keys():
    fleet, network = _mixed_fleet()
    keys = list(range(40))
    for key in keys:
        fleet.insert(key)
    local_keys = [key for key in keys if fleet.shard_of(key) == 0]
    remote_keys = [key for key in keys if fleet.shard_of(key) == 1]
    assert local_keys and remote_keys
    before = {key: fleet.query(key) for key in keys}
    # Partition shard 1 away (both legs dead).
    network.set_policy("router", "shard1", FaultPolicy(drop=1.0, seed=7))
    network.set_policy("shard1", "router", FaultPolicy(drop=1.0, seed=8))
    for key in local_keys:
        assert fleet.query(key) == before[key]      # rest of fleet serves
    with pytest.raises(DeliveryFailed):
        fleet.query(remote_keys[0])
    # The batcher isolates the failure per result slot.
    results = ShardBatcher(fleet).execute([("query", key) for key in keys])
    for key, result in zip(keys, results):
        if key in set(local_keys):
            assert result == before[key]
        else:
            assert isinstance(result, DeliveryFailed)
    # ...and the engine maps those slots onto the affected futures only.
    engine = ServingEngine(fleet, max_queue=256)
    outcomes = run_requests(engine, [("query", key) for key in keys])
    for key, outcome in zip(keys, outcomes):
        if key in set(local_keys):
            assert outcome == before[key]
        else:
            assert isinstance(outcome, DeliveryFailed)
    # Healing the partition restores the whole keyspace.
    network.set_policy("router", "shard1", None)
    network.set_policy("shard1", "router", None)
    for key in keys:
        assert fleet.query(key) == before[key]


def test_server_side_errors_return_typed_failures():
    remote, _ = make_remote()
    with pytest.raises(ValueError, match="negative"):
        remote.delete("never-inserted", 5)
    with pytest.raises(TypeError, match="JSON scalars"):
        remote.insert((1, 2))
    assert remote.server.requests_failed == 1   # the tuple never left home
    # A garbage frame produces an ok=false response, not a server crash.
    response = remote.server.handle_frame(b"not a frame")
    meta, _ = open_frame(response, RESPONSE_MAGIC)
    assert meta["ok"] is False
    assert meta["kind"] == "WireFormatError"


def test_remote_checkpoint_round_trip():
    remote, _ = make_remote()
    remote.insert("x", 3)
    assert remote.checkpoint() is None      # memory shard: frame, no path
    assert remote.query("x") == 3


# -- bulk operations: structured partial failure --------------------------

def test_bulk_ops_match_local_on_a_clean_wire():
    remote, _ = make_remote()
    local = make_handle()
    keys = [f"key:{i % 23}" for i in range(80)] + list(range(40))
    counts = [1 + i % 3 for i in range(len(keys))]
    result = remote.insert_many(keys, counts)
    assert result.ok and result.applied == len(keys)
    local.insert_many(keys, counts)
    answers = remote.query_many(keys + ["miss"])
    assert answers.ok
    assert answers.values.tolist() == \
        local.query_many(keys + ["miss"]).tolist()
    removed = remote.delete_many(keys[:10])
    assert removed.ok
    local.delete_many(keys[:10])
    assert remote.total_count == local.total_count


def test_bulk_invalid_keys_fail_client_side_rest_applies():
    remote, _ = make_remote()
    keys = ["good:1", (1, 2), "good:2", ["bad"], "good:3"]
    result = remote.insert_many(keys)
    assert result.applied == 3
    assert [f.index for f in result.failures] == [1, 3]
    assert all(isinstance(f.error, TypeError) for f in result.failures)
    assert not any(f.retryable for f in result.failures)   # permanent
    assert result.retryable() == []
    with pytest.raises(TypeError):
        result.raise_first()
    for key in ("good:1", "good:2", "good:3"):
        assert remote.query(key) == 1
    assert remote.server.requests_failed == 0   # bad keys never left home


@pytest.mark.chaos
def test_dead_wire_fails_every_chunk_retryably():
    remote, _ = make_remote(FaultPolicy(drop=1.0, seed=9), max_retries=1)
    keys = [f"k:{i}" for i in range(10)]
    result = remote.insert_many(keys)
    assert result.applied == 0
    assert len(result.failures) == len(keys)
    assert all(f.retryable for f in result.failures)
    assert all(isinstance(f.error, DeliveryFailed)
               for f in result.failures)
    answers = remote.query_many(keys)
    assert len(answers.failures) == len(keys)
    assert answers.values.tolist() == [0] * len(keys)


@pytest.mark.chaos
def test_partial_failure_is_per_chunk_and_retry_converges():
    # A flaky wire with a small retry budget: some chunks give up, the
    # rest apply.  Retrying exactly the retryable failures (the
    # BulkResult contract) converges the shard to the full batch.
    network = FaultyNetwork()
    network.set_policy("client", "shard0", FaultPolicy(drop=0.55, seed=41))
    server = ShardServer(make_handle())
    remote = RemoteShard(server, network, "client", "shard0",
                         channel_options={"max_retries": 1},
                         bulk_chunk=4)
    keys = [f"k:{i}" for i in range(48)]
    result = remote.insert_many(keys)
    assert 0 < result.applied < len(keys)       # genuinely partial
    failed = {f.index for f in result.failures}
    # Chunked delivery: failures arrive in whole bulk_chunk-sized runs.
    for index in failed:
        assert (index // 4) * 4 in failed
    assert all(f.retryable for f in result.failures)
    network.set_policy("client", "shard0", None)
    retry_keys = [f.key for f in result.retryable()]
    retried = remote.insert_many(retry_keys)
    assert retried.ok
    # Every key applied at least once; keys whose response frame was
    # lost after the server applied them may count twice — the at-least-
    # once ambiguity hinted handoff and anti-entropy exist to fix.
    answers = remote.query_many(keys)
    assert answers.ok
    assert all(v >= 1 for v in answers.values.tolist())


def test_bulk_semantic_rejection_is_permanent():
    remote, _ = make_remote()
    remote.insert_many(["a", "b"], [1, 1])
    result = remote.delete_many(["a", "never-inserted", "b"], [1, 5, 1])
    # The server rejects the chunk atomically (delete below zero), so
    # every key in it fails with the semantic error, marked permanent.
    assert not result.ok
    assert all(not f.retryable for f in result.failures)
    assert all(isinstance(f.error, ValueError) for f in result.failures)


def test_bulk_count_validation():
    remote, _ = make_remote()
    with pytest.raises(ValueError, match="counts"):
        remote.insert_many(["a", "b"], [1])
    with pytest.raises(ValueError, match="bulk_chunk"):
        RemoteShard(ShardServer(make_handle()), FaultyNetwork(),
                    "c", "s", bulk_chunk=0)


def test_remote_repair_verbs_round_trip():
    from repro.serve import block_checksums, repair_replicas
    remote, _ = make_remote()
    local = make_handle()
    for i in range(60):
        local.insert(f"key:{i}", 1 + i % 4)
    # The remote replica is empty and diverged; repair copies the local
    # reference's counters over the wire, block by differing block.
    report = repair_replicas([local, remote], n_blocks=16)
    assert report.reference == 0
    assert report.converged
    assert report.copied.get(1)
    assert remote.total_count == local.total_count
    assert block_checksums(remote, 16) == block_checksums(local, 16)
    for i in range(60):
        assert remote.query(f"key:{i}") == local.query(f"key:{i}")
