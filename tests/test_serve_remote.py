"""RemoteShard / ShardServer: serving across the faulty wire.

Chaos tests are seeded (policies and channels share fixed seeds), so the
fault schedules — and therefore every retry, duplicate, and checksum
rejection — replay identically on every run.
"""

import pytest

from repro.core.serialize import open_frame
from repro.core.sbf import SpectralBloomFilter
from repro.db.faults import FaultPolicy, FaultyNetwork
from repro.db.transport import DeliveryFailed
from repro.persist import ConcurrentSBF
from repro.serve import (
    MetricsRegistry,
    ServingEngine,
    ShardBatcher,
    ShardedSBF,
    ShardServer,
    RemoteShard,
    run_requests,
)
from repro.serve.remote import RESPONSE_MAGIC

M, K, SEED = 1024, 4, 5


def make_handle() -> ConcurrentSBF:
    return ConcurrentSBF(SpectralBloomFilter(
        M, K, seed=SEED, method="ms", backend="array",
        hash_family="blocked"))


def make_remote(policy=None, *, max_retries: int = 6,
                metrics: MetricsRegistry | None = None,
                ) -> tuple[RemoteShard, FaultyNetwork]:
    network = FaultyNetwork(policy)
    server = ShardServer(make_handle())
    remote = RemoteShard(server, network, "client", "shard0",
                         channel_options={"max_retries": max_retries},
                         metrics=metrics)
    return remote, network


def test_remote_matches_local_on_a_clean_wire():
    remote, _ = make_remote()
    local = make_handle()
    keys = [f"key:{i % 37}" for i in range(200)] + list(range(100))
    for key in keys:
        remote.insert(key)
        local.insert(key)
    for key in keys + ["miss", -1]:
        assert remote.query(key) == local.query(key)
        assert remote.contains(key, 2) == local.contains(key, 2)
    assert remote.total_count == local.total_count
    remote.delete(keys[0])
    local.delete(keys[0])
    remote.set("key:0", 3)
    local.set("key:0", 3)
    assert remote.query(keys[0]) == local.query(keys[0])
    assert remote.query("key:0") == 3
    assert remote.params() == {"m": M, "k": K, "seed": SEED, "method": "ms"}


@pytest.mark.chaos
def test_remote_matches_local_under_seeded_chaos():
    registry = MetricsRegistry()
    remote, _ = make_remote(
        FaultPolicy(drop=0.2, duplicate=0.1, corrupt=0.15, seed=23),
        max_retries=12, metrics=registry)
    local = make_handle()
    keys = list(range(120)) + [f"s:{i}" for i in range(30)]
    for key in keys:
        remote.insert(key)
        local.insert(key)
    for key in keys:
        assert remote.query(key) == local.query(key)
    stats = remote.requests.stats
    assert stats.gave_up == 0               # the budget absorbed the chaos
    assert stats.retries > 0                # ...which was real
    assert stats.attempts > stats.delivered
    # Both legs' delivery metrics are scraped from the one registry.
    channels = registry.snapshot()["channels"]
    assert channels["remote.shard0.requests"]["delivered"] > 0
    assert channels["remote.shard0.responses"]["delivered"] > 0
    assert channels["remote.shard0.requests"]["corrupt_detected"] \
        + channels["remote.shard0.responses"]["corrupt_detected"] > 0


@pytest.mark.chaos
def test_exhausted_budget_raises_delivery_failed():
    remote, _ = make_remote(FaultPolicy(drop=1.0, seed=3), max_retries=2)
    with pytest.raises(DeliveryFailed):
        remote.insert("key")
    assert remote.requests.stats.gave_up == 1


def _mixed_fleet() -> tuple[ShardedSBF, FaultyNetwork]:
    """Shard 0 local, shard 1 behind the wire — same filter parameters."""
    network = FaultyNetwork()
    remote = RemoteShard(ShardServer(make_handle()), network,
                         "router", "shard1",
                         channel_options={"max_retries": 2})
    return ShardedSBF([make_handle(), remote]), network


@pytest.mark.chaos
def test_unreachable_shard_degrades_only_its_keys():
    fleet, network = _mixed_fleet()
    keys = list(range(40))
    for key in keys:
        fleet.insert(key)
    local_keys = [key for key in keys if fleet.shard_of(key) == 0]
    remote_keys = [key for key in keys if fleet.shard_of(key) == 1]
    assert local_keys and remote_keys
    before = {key: fleet.query(key) for key in keys}
    # Partition shard 1 away (both legs dead).
    network.set_policy("router", "shard1", FaultPolicy(drop=1.0, seed=7))
    network.set_policy("shard1", "router", FaultPolicy(drop=1.0, seed=8))
    for key in local_keys:
        assert fleet.query(key) == before[key]      # rest of fleet serves
    with pytest.raises(DeliveryFailed):
        fleet.query(remote_keys[0])
    # The batcher isolates the failure per result slot.
    results = ShardBatcher(fleet).execute([("query", key) for key in keys])
    for key, result in zip(keys, results):
        if key in set(local_keys):
            assert result == before[key]
        else:
            assert isinstance(result, DeliveryFailed)
    # ...and the engine maps those slots onto the affected futures only.
    engine = ServingEngine(fleet, max_queue=256)
    outcomes = run_requests(engine, [("query", key) for key in keys])
    for key, outcome in zip(keys, outcomes):
        if key in set(local_keys):
            assert outcome == before[key]
        else:
            assert isinstance(outcome, DeliveryFailed)
    # Healing the partition restores the whole keyspace.
    network.set_policy("router", "shard1", None)
    network.set_policy("shard1", "router", None)
    for key in keys:
        assert fleet.query(key) == before[key]


def test_server_side_errors_return_typed_failures():
    remote, _ = make_remote()
    with pytest.raises(ValueError, match="negative"):
        remote.delete("never-inserted", 5)
    with pytest.raises(TypeError, match="JSON scalars"):
        remote.insert((1, 2))
    assert remote.server.requests_failed == 1   # the tuple never left home
    # A garbage frame produces an ok=false response, not a server crash.
    response = remote.server.handle_frame(b"not a frame")
    meta, _ = open_frame(response, RESPONSE_MAGIC)
    assert meta["ok"] is False
    assert meta["kind"] == "WireFormatError"


def test_remote_checkpoint_round_trip():
    remote, _ = make_remote()
    remote.insert("x", 3)
    assert remote.checkpoint() is None      # memory shard: frame, no path
    assert remote.query("x") == 3
