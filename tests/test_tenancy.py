"""The multi-tenant fleet index: spectral Bloofi tree + TenantDirectory.

The invariants under test:

- **union** — every inner node's vector equals the counter-wise sum of
  its children's signatures, after any interleaving of insert / delete /
  mount / unmount (the hypothesis machine drives this);
- **exact pruning** — tree answers are bit-identical to scanning every
  mounted leaf, for every method mix (MS, MI, RM leaves in one tree);
- **shape** — leaves at one depth, occupancy within fanout bounds,
  rebalancing bounded per operation;
- **wire** — snapshot/restore round-trips the whole tree and rejects
  corrupted or structurally invalid manifests;
- **contract** — the TenantDirectory front serves the tree through the
  unchanged ServingEngine/ShardBatcher machinery, failing unknown
  tenants in their result slot.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.serialize import WireFormatError, family_name, seal_sections
from repro.core.sbf import SpectralBloomFilter
from repro.persist import ConcurrentSBF
from repro.persist.durable import DurableSBF
from repro.serve import ReplicaSet, ServingEngine, ShardBatcher
from repro.serve.remote import BulkResult
from repro.tenancy import (
    TREE_MAGIC,
    SpectralBloofiTree,
    TenantDirectory,
    UnknownTenant,
    load_tree,
)

M, K, SEED = 1024, 3, 5
METHODS = ("ms", "mi", "rm")


def make_tree(fanout: int = 4, **kwargs) -> SpectralBloofiTree:
    return SpectralBloofiTree(M, K, seed=SEED, fanout=fanout, **kwargs)


def populated_tree(n_tenants: int = 12, keys_per_tenant: int = 25,
                   fanout: int = 4) -> SpectralBloofiTree:
    """A tree with a method-diverse tenant population and fixed data."""
    tree = make_tree(fanout=fanout)
    rng = np.random.default_rng(17)
    for t in range(n_tenants):
        tree.mount(t, method=METHODS[t % len(METHODS)])
        for key in rng.integers(0, 120, size=keys_per_tenant).tolist():
            tree.insert(t, int(key))
        tree.insert(t, f"name-{t % 5}")
    return tree


def scan_oracle(tree: SpectralBloofiTree, key: object) -> dict:
    """What querying every mounted leaf directly would answer."""
    answers = {}
    for tenant in tree.tenants:
        estimate = tree.handle_of(tenant).query(key)
        if estimate > 0:
            answers[tenant] = estimate
    return answers


def probe_keys():
    return list(range(140)) + [f"name-{i}" for i in range(6)] + ["absent"]


# ----------------------------------------------------------------------
# construction and mounting
# ----------------------------------------------------------------------
class TestMounting:
    def test_fanout_bounds(self):
        with pytest.raises(ValueError, match="fanout"):
            SpectralBloofiTree(M, K, fanout=1)

    def test_tenant_ids_must_be_wire_scalars(self):
        tree = make_tree()
        for bad in (None, 1.5, ("a",), True):
            with pytest.raises(ValueError, match="tenant ids"):
                tree.mount(bad)

    def test_duplicate_mount_refused(self):
        tree = make_tree()
        tree.mount("a")
        with pytest.raises(ValueError, match="already mounted"):
            tree.mount("a")

    def test_incompatible_filter_refused(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="share the tree's"):
            tree.mount("a", SpectralBloomFilter(M, K, seed=SEED + 1))
        with pytest.raises(ValueError, match="share the tree's"):
            tree.mount("b", SpectralBloomFilter(M // 2, K, seed=SEED))

    def test_mount_prepopulated_filter_folds_counters_in(self):
        tree = make_tree()
        sbf = SpectralBloomFilter(M, K, seed=SEED)
        sbf.insert("hot", 7)
        tree.mount("t", sbf)
        tree.mount("other")
        assert tree.query("hot") == {"t": 7}
        assert tree.verify() == []

    def test_unmount_returns_live_handle(self):
        tree = populated_tree(6)
        handle = tree.handle_of(3)
        assert tree.unmount(3) is handle
        assert 3 not in tree.tenants
        assert tree.verify() == []
        with pytest.raises(UnknownTenant):
            tree.insert(3, 1)

    def test_explicit_signature_validated(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="shape"):
            tree.mount("t", SpectralBloomFilter(M, K, seed=SEED),
                       signature=np.zeros(3))
        with pytest.raises(ValueError, match=">= 0"):
            tree.mount("t", SpectralBloomFilter(M, K, seed=SEED),
                       signature=np.full(M, -1))


# ----------------------------------------------------------------------
# the core claim: bit-identical to scanning every leaf
# ----------------------------------------------------------------------
class TestQueryExactness:
    def test_point_queries_match_scan(self):
        tree = populated_tree()
        for key in probe_keys():
            assert tree.query(key) == scan_oracle(tree, key), key

    def test_query_many_matches_point_queries(self):
        tree = populated_tree()
        keys = probe_keys()
        assert tree.query_many(keys) == [tree.query(k) for k in keys]

    def test_query_many_empty(self):
        assert populated_tree(3).query_many([]) == []

    def test_single_tenant_routing(self):
        tree = populated_tree(5)
        for tenant in tree.tenants:
            for key in (0, 1, "name-0"):
                assert (tree.query_tenant(tenant, key)
                        == tree.handle_of(tenant).query(key))
        many = tree.query_tenant_many(2, [0, 1, "name-0"])
        assert many.tolist() == [tree.query_tenant(2, k)
                                 for k in (0, 1, "name-0")]

    def test_deep_tree_still_exact(self):
        # fanout 2 forces height ~log2(24): descent crosses many levels.
        tree = populated_tree(24, keys_per_tenant=10, fanout=2)
        assert tree.height >= 4
        for key in probe_keys():
            assert tree.query(key) == scan_oracle(tree, key), key
        assert tree.verify() == []


# ----------------------------------------------------------------------
# writes: propagation, failure atomicity, bulk parity
# ----------------------------------------------------------------------
class TestWrites:
    def test_insert_delete_roundtrip(self):
        tree = make_tree()
        tree.mount("t")
        tree.insert("t", "k", 5)
        assert tree.query("k") == {"t": 5}
        tree.delete("t", "k", 5)
        assert tree.query("k") == {}
        assert tree.verify() == []

    def test_failed_delete_leaves_tree_untouched(self):
        tree = populated_tree(6)
        before = {k: tree.query(k) for k in probe_keys()}
        with pytest.raises(ValueError, match="negative"):
            tree.delete(0, "never-inserted", 3)
        assert {k: tree.query(k) for k in probe_keys()} == before
        assert tree.verify() == []

    def test_set_count(self):
        tree = make_tree()
        tree.mount("t")
        tree.set_count("t", "k", 9)
        assert tree.query_tenant("t", "k") == 9
        tree.set_count("t", "k", 2)
        assert tree.query_tenant("t", "k") == 2
        assert tree.verify() == []

    @pytest.mark.parametrize("method", METHODS)
    def test_bulk_matches_point_path(self, method):
        point = make_tree()
        bulk = make_tree()
        for tree in (point, bulk):
            tree.mount("t", method=method)
            tree.mount("other", method=method)
        keys = [int(k) for k in
                np.random.default_rng(3).integers(0, 60, size=200)]
        counts = [(i % 3) + 1 for i in range(len(keys))]
        for key, count in zip(keys, counts):
            point.insert("t", key, count)
        bulk.insert_many("t", keys, np.asarray(counts))
        for key in range(60):
            assert point.query(key) == bulk.query(key), key
        dropped = keys[:40]
        for key in dropped:
            point.delete("t", key, 1)
        bulk.delete_many("t", dropped)
        for key in range(60):
            assert point.query(key) == bulk.query(key), key
        assert point.verify() == bulk.verify() == []

    def test_bulk_string_keys(self):
        tree = make_tree()
        tree.mount("t")
        tree.insert_many("t", [f"u{i % 9}" for i in range(50)])
        assert tree.verify() == []
        assert tree.query("u0") == {"t": tree.handle_of("t").query("u0")}

    def test_zero_and_negative_counts(self):
        tree = make_tree()
        tree.mount("t")
        tree.insert("t", "k", 0)
        assert tree.query("k") == {}
        with pytest.raises(ValueError):
            tree.insert("t", "k", -1)
        with pytest.raises(ValueError):
            tree.insert_many("t", ["a", "b"], [1, -2])
        tree.insert_many("t", ["a", "b"], [2, 0])  # zero entries dropped
        assert tree.query_tenant("t", "b") == 0
        assert tree.verify() == []


# ----------------------------------------------------------------------
# lifecycle: splits, merges, uniform depth under churn
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_split_and_collapse(self):
        tree = make_tree(fanout=2)
        for t in range(16):
            tree.mount(t)
        assert tree.metrics.counter("tenancy.splits").value > 0
        height_full = tree.height
        assert height_full >= 4
        for t in range(15):
            tree.unmount(t)
        assert tree.height < height_full
        assert tree.verify() == []

    def test_churn_preserves_invariants_and_answers(self):
        tree = make_tree(fanout=3)
        live = set()
        rng = np.random.default_rng(23)
        for step in range(160):
            action = rng.integers(0, 4)
            if action == 0 or not live:
                tenant = int(rng.integers(0, 40))
                if tenant not in live:
                    tree.mount(tenant,
                               method=METHODS[tenant % len(METHODS)])
                    live.add(tenant)
            elif action == 1 and len(live) > 1:
                tenant = int(rng.choice(sorted(live)))
                tree.unmount(tenant)
                live.remove(tenant)
            else:
                tenant = int(rng.choice(sorted(live)))
                tree.insert(tenant, int(rng.integers(0, 50)))
        assert tree.verify() == []
        for key in range(50):
            assert tree.query(key) == scan_oracle(tree, key), key

    def test_mount_during_traffic_is_immediately_queryable(self):
        tree = populated_tree(8)
        sbf = SpectralBloomFilter(M, K, seed=SEED)
        sbf.insert("mid-traffic", 2)
        tree.mount("late", sbf)
        assert tree.query("mid-traffic")["late"] == 2


# ----------------------------------------------------------------------
# the union invariant, property-tested under random interleavings
# ----------------------------------------------------------------------
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("mount"), st.integers(0, 11),
                  st.sampled_from(METHODS)),
        st.tuples(st.just("unmount"), st.integers(0, 11)),
        st.tuples(st.just("insert"), st.integers(0, 11),
                  st.integers(0, 30), st.integers(1, 4)),
        st.tuples(st.just("delete"), st.integers(0, 11),
                  st.integers(0, 30), st.integers(1, 4)),
        st.tuples(st.just("bulk"), st.integers(0, 11),
                  st.lists(st.integers(0, 30), min_size=1, max_size=8)),
    ),
    min_size=1, max_size=60)


class TestUnionInvariantProperty:
    @settings(max_examples=60)
    @given(OPS, st.integers(2, 5))
    def test_inner_nodes_equal_union_of_children(self, ops, fanout):
        """After ANY interleaving of mount/unmount/insert/delete/bulk,
        every inner node is the counter-wise union of its children and
        the tree answers bit-identically to scanning all leaves."""
        tree = SpectralBloofiTree(256, K, seed=SEED, fanout=fanout)
        mounted = set()
        for op in ops:
            kind, tenant = op[0], op[1]
            if kind == "mount":
                if tenant not in mounted:
                    tree.mount(tenant, method=op[2])
                    mounted.add(tenant)
            elif tenant not in mounted:
                continue
            elif kind == "unmount":
                tree.unmount(tenant)
                mounted.discard(tenant)
            elif kind == "insert":
                tree.insert(tenant, op[2], op[3])
            elif kind == "delete":
                if tree.query_tenant(tenant, op[2]) >= op[3] and \
                        tree.handle_of(tenant).min_counter(op[2]) >= op[3]:
                    tree.delete(tenant, op[2], op[3])
            elif kind == "bulk":
                tree.insert_many(tenant, op[2])
        assert tree.verify() == []
        keys = list(range(31))
        scans = [scan_oracle(tree, key) for key in keys]
        assert [tree.query(key) for key in keys] == scans
        assert tree.query_many(keys) == scans


# ----------------------------------------------------------------------
# snapshot / restore over the multi-section wire manifest
# ----------------------------------------------------------------------
class TestWire:
    def test_round_trip(self):
        tree = populated_tree()
        restored = load_tree(tree.dump_tree())
        assert restored.verify() == []
        assert sorted(map(str, restored.tenants)) \
            == sorted(map(str, tree.tenants))
        for key in probe_keys():
            assert restored.query(key) == tree.query(key), key

    def test_round_trip_preserves_methods(self):
        tree = populated_tree(6)
        restored = load_tree(tree.dump_tree())
        for tenant in tree.tenants:
            assert (restored.handle_of(tenant).method.name
                    == tree.handle_of(tenant).method.name)

    def test_corruption_detected(self):
        blob = bytearray(populated_tree(4).dump_tree())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(WireFormatError):
            load_tree(bytes(blob))

    def test_truncation_detected(self):
        blob = populated_tree(4).dump_tree()
        with pytest.raises(WireFormatError):
            load_tree(blob[:-10])

    def test_structural_garbage_rejected(self):
        from repro.core.serialize import dump_sbf
        section = dump_sbf(SpectralBloomFilter(M, K, seed=SEED))
        base = {"version": 1, "fanout": 4, "m": M, "k": K, "seed": SEED,
                "family": "modmul"}
        cases = [
            dict(base, tenants=["a", "a"], structure=[0, 1]),   # dup ids
            dict(base, tenants=["a"], structure=[0, 0]),        # reused slot
            dict(base, tenants=["a"], structure=0),             # leaf root
            dict(base, tenants=["a"], structure=[5]),           # bad index
            dict(base, tenants=["a"], structure=["x"]),         # non-index
            dict(base, tenants=[None], structure=[0]),          # bad id
            dict(base, tenants=["a"], structure=[0], m="big"),  # bad m
            dict(base, tenants=["a"], structure=[0], version=9),
        ]
        for meta in cases:
            n = len(meta["tenants"])
            blob = seal_sections(TREE_MAGIC, meta, [section] * n)
            with pytest.raises(WireFormatError):
                load_tree(blob)

    def test_mi_signature_rederived_on_load(self):
        tree = make_tree()
        tree.mount("mi-tenant", method="mi")
        for key in range(40):
            tree.insert("mi-tenant", key, (key % 3) + 1)
        restored = load_tree(tree.dump_tree())
        assert restored.verify() == []
        for key in range(40):
            assert restored.query(key) == tree.query(key)

    def test_family_name_round_trip(self):
        tree = make_tree()
        assert family_name(tree.family) == "modmul"
        restored = load_tree(tree.dump_tree())
        assert restored.family.is_compatible(tree.family)


# ----------------------------------------------------------------------
# serving-grade leaves: durable, concurrent, replicated
# ----------------------------------------------------------------------
class TestServingLeaves:
    def test_concurrent_leaf(self):
        tree = make_tree()
        tree.mount("c", ConcurrentSBF(SpectralBloomFilter(M, K, seed=SEED)))
        tree.insert("c", "k", 3)
        assert tree.query("k") == {"c": 3}
        assert tree.verify() == []

    def test_durable_leaf_survives_restart(self, tmp_path):
        tree = make_tree()
        durable = DurableSBF(SpectralBloomFilter(M, K, seed=SEED),
                             str(tmp_path / "t0"))
        tree.mount("d", durable)
        tree.insert("d", "persisted", 4)
        tree.insert_many("d", list(range(20)))
        assert tree.query("persisted") == {"d": 4}
        durable.checkpoint()
        durable.close()
        reopened = DurableSBF.open(
            str(tmp_path / "t0"),
            factory=lambda: SpectralBloomFilter(M, K, seed=SEED))
        tree2 = make_tree()
        tree2.mount("d", reopened)
        assert tree2.query("persisted") == {"d": 4}
        assert tree2.verify() == []
        reopened.close()

    def test_replica_set_leaf(self):
        replicas = [ConcurrentSBF(SpectralBloomFilter(M, K, seed=SEED))
                    for _ in range(3)]
        tree = make_tree()
        tree.mount("r", ReplicaSet(replicas, name="leaf-r"))
        tree.insert("r", "quorum-key", 2)
        tree.insert_many("r", list(range(10)))
        assert tree.query("quorum-key") == {"r": 2}
        assert tree.verify() == []
        # Replica leaves keep an explicit signature: dump needs local
        # state, which this set has.
        restored = load_tree(tree.dump_tree())
        assert restored.query("quorum-key") == {"r": 2}


# ----------------------------------------------------------------------
# the TenantDirectory front behind the unchanged serving stack
# ----------------------------------------------------------------------
class TestDirectory:
    def make(self):
        tree = make_tree()
        directory = TenantDirectory(tree)
        for tenant in ("alpha", "beta"):
            directory.mount(tenant)
        return tree, directory

    def test_point_verbs_route_to_owning_leaf(self):
        tree, directory = self.make()
        directory.insert(("alpha", "k"), 3)
        directory.set(("beta", "k"), 1)
        assert directory.query(("alpha", "k")) == 3
        assert directory.contains(("alpha", "k"), 3)
        assert directory.query_tenants("k") == {"alpha": 3, "beta": 1}
        directory.delete(("alpha", "k"), 2)
        assert directory.query(("alpha", "k")) == 1
        assert tree.verify() == []

    def test_malformed_and_unknown_keys(self):
        _, directory = self.make()
        assert directory.shard_of("not-a-pair") == 0
        assert directory.shard_of(("ghost", 1)) == 0
        with pytest.raises(UnknownTenant):
            directory.insert("not-a-pair")
        with pytest.raises(UnknownTenant):
            directory.query(("ghost", 1))

    def test_engine_serves_unchanged(self):
        _, directory = self.make()
        engine = ServingEngine(directory, max_queue=64)
        futures = [engine.submit("insert", ("alpha", 7)),
                   engine.submit("insert", ("alpha", 7)),
                   engine.submit("query", ("alpha", 7)),
                   engine.submit("query", ("ghost", 7)),
                   engine.submit("insert", "malformed")]
        engine.drain()
        assert futures[2].result() == 2
        assert isinstance(futures[3].exception(), UnknownTenant)
        assert isinstance(futures[4].exception(), UnknownTenant)

    def test_batcher_bulk_paths(self):
        _, directory = self.make()
        batcher = ShardBatcher(directory)
        outcome = batcher.insert_many(
            [("alpha", 1), ("beta", 1), ("ghost", 1), ("alpha", 2)])
        assert isinstance(outcome, BulkResult)
        assert [f.index for f in outcome.failures] == [2]
        assert isinstance(outcome.failures[0].error, UnknownTenant)
        results = batcher.query_many(
            [("alpha", 1), ("beta", 1), ("ghost", 1), ("alpha", 99)])
        assert results[0] == 1 and results[1] == 1 and results[3] == 0
        assert isinstance(results[2], UnknownTenant)

    def test_unmounted_tenant_fails_in_slot(self):
        _, directory = self.make()
        directory.insert(("alpha", 5))
        directory.unmount("alpha")
        batcher = ShardBatcher(directory)
        results = batcher.execute([("query", ("alpha", 5)),
                                   ("query", ("beta", 5))])
        assert isinstance(results[0], UnknownTenant)
        assert results[1] == 0

    def test_remount_reuses_slot(self):
        _, directory = self.make()
        slot = directory.shard_of(("alpha", 0))
        directory.unmount("alpha")
        directory.mount("alpha")
        assert directory.shard_of(("alpha", 0)) == slot
        directory.insert(("alpha", 3))
        assert directory.query(("alpha", 3)) == 1

    def test_engine_close_checkpoints_durable_leaf(self, tmp_path):
        tree = make_tree()
        directory = TenantDirectory(tree)
        durable = DurableSBF(SpectralBloomFilter(M, K, seed=SEED),
                             str(tmp_path / "leaf"))
        directory.mount("d", durable)
        engine = ServingEngine(directory)
        engine.submit("insert", ("d", "x"))
        report = engine.close()
        assert report["checkpointed"] == 1
        reopened = DurableSBF.open(
            str(tmp_path / "leaf"),
            factory=lambda: SpectralBloomFilter(M, K, seed=SEED))
        assert reopened.sbf.query("x") == 1
        reopened.close()


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_lifecycle_and_traffic_counters(self):
        tree = populated_tree(9, fanout=2)
        tree.unmount(0)
        tree.query(1)
        snapshot = tree.metrics.snapshot()["counters"]
        for name in ("tenancy.mounts", "tenancy.unmounts",
                     "tenancy.splits", "tenancy.inserts",
                     "tenancy.queries", "tenancy.nodes_visited"):
            assert snapshot[name] > 0, name
        gauges = tree.metrics.snapshot()["gauges"]
        assert gauges["tenancy.tenants"] == 8
        assert gauges["tenancy.height"] == tree.height

    def test_per_level_gauges(self):
        tree = populated_tree(9, fanout=2)
        report = tree.refresh_level_gauges()
        gauges = tree.metrics.snapshot()["gauges"]
        assert sum(level["nodes"] for level in report.values()) \
            == tree.n_nodes
        assert gauges["tenancy.level.0.nodes"] == 1
        # Levels linger at zero after the tree shrinks past them.
        for tenant in list(tree.tenants)[:-1]:
            tree.unmount(tenant)
        report = tree.refresh_level_gauges()
        assert report[max(report)] in ({"nodes": 0, "occupancy": 0.0},
                                       report[max(report)])
        assert tree.metrics.snapshot()["gauges"][
            f"tenancy.level.{max(report)}.nodes"] == report[max(report)]["nodes"]

    def test_pruning_visits_fewer_nodes_than_scan(self):
        tree = make_tree(fanout=4)
        for t in range(32):
            tree.mount(t)
            tree.insert(t, f"private-{t}")
        before = tree.metrics.counter("tenancy.nodes_visited").value
        tree.query("private-0")
        visited = tree.metrics.counter("tenancy.nodes_visited").value - before
        assert visited < tree.n_nodes
