"""Tests for the §3.1 probabilistic estimators."""

import random

import pytest

from repro import SpectralBloomFilter
from repro.core.unbiased import (
    HybridEstimator,
    MedianOfMeansEstimator,
    UnbiasedEstimator,
)


def build_filter(seed=0, m=4000, k=5, n=400, total=3000):
    rng = random.Random(seed)
    sbf = SpectralBloomFilter(m, k, seed=seed)
    truth: dict[int, int] = {}
    for _ in range(total):
        x = rng.randrange(n)
        truth[x] = truth.get(x, 0) + 1
        sbf.insert(x)
    return sbf, truth


class TestUnbiasedEstimator:
    def test_requires_k_less_than_m(self):
        sbf = SpectralBloomFilter(3, 3, seed=1)
        with pytest.raises(ValueError):
            UnbiasedEstimator(sbf)

    def test_mean_bias_is_small(self):
        """Lemma 3: E(f̄_x) = f_x — across many items the average error
        should hover near zero (unlike MS, which is positively biased)."""
        sbf, truth = build_filter(seed=2)
        est = UnbiasedEstimator(sbf)
        bias = sum(est.estimate(x) - f for x, f in truth.items()) / len(truth)
        avg_f = sum(truth.values()) / len(truth)
        assert abs(bias) < 0.25 * avg_f

    def test_less_biased_than_minimum_selection(self):
        sbf, truth = build_filter(seed=3, m=2000)
        est = UnbiasedEstimator(sbf)
        unbiased_bias = sum(est.estimate(x) - f
                            for x, f in truth.items()) / len(truth)
        ms_bias = sum(sbf.query(x) - f
                      for x, f in truth.items()) / len(truth)
        assert abs(unbiased_bias) < abs(ms_bias) + 1e-9
        assert ms_bias >= 0  # MS errors are one-sided upward

    def test_can_produce_false_negatives(self):
        """§3.1's drawback: the constant correction harms accurate items."""
        sbf, truth = build_filter(seed=4, m=1500)
        est = UnbiasedEstimator(sbf)
        negatives = sum(1 for x, f in truth.items() if est.estimate(x) < f)
        assert negatives > 0

    def test_clamped_is_non_negative(self):
        sbf, truth = build_filter(seed=5)
        est = UnbiasedEstimator(sbf)
        for x in list(truth)[:50]:
            assert est.estimate_clamped(x) >= 0

    def test_aggregate_count_close_to_truth(self):
        """The aggregate use-case: the sum over a group is accurate."""
        sbf, truth = build_filter(seed=6)
        est = UnbiasedEstimator(sbf)
        keys = list(truth)[:200]
        true_sum = sum(truth[x] for x in keys)
        approx = est.aggregate_count(keys)
        assert approx == pytest.approx(true_sum, rel=0.1)


class TestMedianOfMeans:
    def test_group_validation(self):
        sbf = SpectralBloomFilter(100, 4, seed=1)
        with pytest.raises(ValueError):
            MedianOfMeansEstimator(sbf, groups=0)
        with pytest.raises(ValueError):
            MedianOfMeansEstimator(sbf, groups=5)

    def test_estimates_are_finite(self):
        sbf, truth = build_filter(seed=7)
        est = MedianOfMeansEstimator(sbf, groups=3)
        for x in list(truth)[:50]:
            value = est.estimate(x)
            assert value == value  # not NaN
            assert est.estimate_clamped(x) >= 0

    def test_single_group_equals_unbiased(self):
        sbf, truth = build_filter(seed=8)
        mom = MedianOfMeansEstimator(sbf, groups=1)
        ub = UnbiasedEstimator(sbf)
        for x in list(truth)[:20]:
            assert mom.estimate(x) == pytest.approx(ub.estimate(x))


class TestHybrid:
    def test_recurring_minimum_trusted(self):
        """Items with recurring minimum get the (exact w.h.p.) minimum."""
        sbf = SpectralBloomFilter(5000, 5, seed=9)
        sbf.insert("solo", 7)
        hybrid = HybridEstimator(sbf)
        assert hybrid.estimate("solo") == 7.0

    def test_never_exceeds_minimum(self):
        """The hybrid keeps the one-sided upper bound m_x."""
        sbf, truth = build_filter(seed=10, m=1500)
        hybrid = HybridEstimator(sbf)
        for x in list(truth)[:100]:
            assert hybrid.estimate(x) <= sbf.query(x)

    def test_fewer_false_negatives_than_pure_unbiased(self):
        sbf, truth = build_filter(seed=11, m=1500)
        hybrid = HybridEstimator(sbf)
        unbiased = UnbiasedEstimator(sbf)
        hybrid_neg = sum(1 for x, f in truth.items()
                         if hybrid.estimate(x) < f)
        unbiased_neg = sum(1 for x, f in truth.items()
                           if unbiased.estimate(x) < f)
        assert hybrid_neg <= unbiased_neg

    def test_clamped(self):
        sbf, truth = build_filter(seed=12)
        hybrid = HybridEstimator(sbf)
        for x in list(truth)[:20]:
            assert hybrid.estimate_clamped(x) >= 0
