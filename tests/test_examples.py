"""Smoke tests: every example script runs to completion and prints the
headline it promises.  Keeps the examples/ directory honest as the library
evolves."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

CASES = [
    ("quickstart.py", "frequency queries"),
    ("network_heavy_hitters.py", "verified iceberg"),
    ("distributed_bloomjoin.py", "Spectral Bloomjoin"),
    ("warehouse_sliding_window.py", "false-neg"),
    ("elevation_range_index.py", "point query"),
    ("proxy_cache_mesh.py", "spectral summaries"),
    ("search_engine_hotlist.py", "differential file"),
    ("serving_engine.py", "admission control"),
    ("ha_failover.py", "anti-entropy repair"),
    ("gray_failure.py", "never correctness"),
    ("multi_tenant.py", "multi-set frequency"),
    ("scenario_replay.py", "zero wrong answers"),
]


@pytest.mark.parametrize("script,marker", CASES)
def test_example_runs(script, marker):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker.lower() in result.stdout.lower(), (
        f"{script} output missing {marker!r}:\n{result.stdout[:1000]}")


def test_every_example_is_covered():
    scripts = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == {script for script, _marker in CASES}
