"""Tests for the §5 applications."""

import collections
import random

import pytest

from repro.apps.aggregates import AggregateIndex
from repro.apps.bifocal import BifocalEstimator
from repro.apps.bloomjoin import (
    bloomjoin,
    exact_grouped_join_count,
    spectral_bloomjoin_count,
    spectral_bloomjoin_threshold,
)
from repro.apps.iceberg import IcebergIndex, MultiscanIceberg
from repro.apps.range_query import RangeTreeSBF
from repro.apps.sliding_window import SlidingWindowSBF
from repro.data.streams import insertion_stream
from repro.db.relation import Relation
from repro.db.site import two_sites


def make_relations(seed=0, n_r=400, n_s=700, domain_r=60, domain_s=90):
    rng = random.Random(seed)
    r = Relation("R", ("a", "payload"),
                 [(rng.randrange(domain_r), i) for i in range(n_r)])
    s = Relation("S", ("a", "other"),
                 [(rng.randrange(domain_s), i) for i in range(n_s)])
    return r, s


class TestAggregateIndex:
    def setup_method(self):
        self.r, _ = make_relations(seed=1)
        self.index = AggregateIndex(self.r, "a", seed=1)

    def test_count_one_sided(self):
        for value in self.r.distinct("a"):
            assert self.index.count(value) >= self.index.exact_count(value)

    def test_count_mostly_exact(self):
        wrong = sum(1 for v in self.r.distinct("a")
                    if self.index.count(v) != self.index.exact_count(v))
        assert wrong <= 2

    def test_count_many_and_sum(self):
        values = sorted(self.r.distinct("a"))[:10]
        exact_count = sum(self.index.exact_count(v) for v in values)
        exact_sum = sum(v * self.index.exact_count(v) for v in values)
        assert self.index.count_many(values) >= exact_count
        assert self.index.sum(values) >= exact_sum * 0.999

    def test_avg(self):
        values = sorted(self.r.distinct("a"))
        approx = self.index.avg(values)
        truths = list(self.r.scan("a"))
        exact = sum(truths) / len(truths)
        assert approx == pytest.approx(exact, rel=0.05)

    def test_max_present(self):
        assert self.index.max_present([10**9, -5]) is None or \
            self.index.max_present([10**9, -5]) == 10**9  # FP possible
        top = max(self.r.distinct("a"))
        assert self.index.max_present([top]) == top

    def test_insert_row_keeps_sync(self):
        before = self.index.count(7)
        self.index.insert_row((7, "new"))
        assert self.index.count(7) >= before + 1

    def test_delete_value(self):
        index = AggregateIndex(self.r, "a", method="rm", seed=2)
        value = next(iter(self.r.distinct("a")))
        before = index.count(value)
        index.delete_value(value)
        assert index.count(value) <= before

    def test_storage_bits(self):
        assert self.index.storage_bits() > 0


class TestIcebergIndex:
    def setup_method(self):
        self.stream = insertion_stream(300, 9000, 1.1, seed=3)
        self.truth = collections.Counter(self.stream)
        self.index = IcebergIndex(m=3000, seed=3)
        self.index.consume(self.stream)

    def test_no_false_negatives_any_threshold(self):
        """The ad-hoc property: thresholds chosen after the build."""
        for threshold in (2, 10, 50, 200):
            reported = set(self.index.query(threshold))
            true_iceberg = {x for x, c in self.truth.items()
                            if c >= threshold}
            assert true_iceberg <= reported

    def test_false_positive_rate_small(self):
        reported = set(self.index.query(50))
        true_iceberg = {x for x, c in self.truth.items() if c >= 50}
        extras = reported - true_iceberg
        assert len(extras) <= max(2, 0.05 * len(self.truth))

    def test_verified_query_is_exact(self):
        for threshold in (5, 50):
            verified = self.index.verified_query(threshold,
                                                 dict(self.truth))
            assert set(verified) == {x for x, c in self.truth.items()
                                     if c >= threshold}

    def test_scan_query(self):
        reported = list(self.index.scan_query(self.stream, 50))
        assert len(reported) == len(set(reported))
        true_iceberg = {x for x, c in self.truth.items() if c >= 50}
        assert true_iceberg <= set(reported)

    def test_passes(self):
        heavy = self.truth.most_common(1)[0][0]
        assert self.index.passes(heavy, self.truth[heavy])

    def test_without_key_tracking(self):
        index = IcebergIndex(m=3000, seed=3, track_keys=False)
        index.consume(self.stream)
        with pytest.raises(RuntimeError):
            index.query(5)
        assert set(index.scan_query(self.stream, 50))

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            self.index.query(0)
        with pytest.raises(ValueError):
            list(self.index.scan_query([], 0))

    def test_storage_bits(self):
        assert self.index.storage_bits() > 0


class TestMultiscanIceberg:
    def test_no_false_negatives(self):
        stream = insertion_stream(200, 6000, 1.2, seed=4)
        truth = collections.Counter(stream)
        cascade = MultiscanIceberg([400, 200], threshold=40, seed=4)
        candidates = cascade.run(stream)
        true_iceberg = {x for x, c in truth.items() if c >= 40}
        assert true_iceberg <= candidates
        assert cascade.scans_performed() == 2

    def test_stages_filter_progressively(self):
        """With reasonable stage sizes the candidate pool shrinks well
        below the distinct count."""
        stream = insertion_stream(500, 10_000, 1.3, seed=5)
        truth = collections.Counter(stream)
        cascade = MultiscanIceberg([1500, 800], threshold=100, seed=5)
        candidates = cascade.run(stream)
        assert len(candidates) < len(truth) / 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            MultiscanIceberg([], threshold=5)
        with pytest.raises(ValueError):
            MultiscanIceberg([100], threshold=0)


class TestBloomjoin:
    def setup_method(self):
        self.r, self.s = make_relations(seed=6)
        self.site1, self.site2, self.net = two_sites()
        self.site1.store(self.r)
        self.site2.store(self.s)

    def test_join_result_is_exact(self):
        """Bloomjoin never loses tuples (BF has no false negatives)."""
        joined = bloomjoin(self.site1, "R", self.site2, "S", "a",
                           m=2048, seed=6)
        exact = self.r.join(self.s, "a")
        assert sorted(joined.rows) == sorted(exact.rows)

    def test_traffic_savings_vs_shipping_everything(self):
        """The filter transmission must beat shipping all of S."""
        bloomjoin(self.site1, "R", self.site2, "S", "a", m=2048, seed=6)
        from repro.db.site import tuple_bits
        naive = tuple_bits(self.s.rows)
        assert self.net.total_bits < naive + 2048
        assert self.net.rounds == 2

    def test_spectral_count_one_round(self):
        counts = spectral_bloomjoin_count(self.site1, "R", self.site2,
                                          "S", "a", m=8192, seed=6)
        truth = exact_grouped_join_count(self.r, self.s, "a")
        assert self.net.rounds == 1
        for value, c in truth.items():
            assert counts.get(value, 0) >= c

    def test_spectral_count_mostly_exact(self):
        counts = spectral_bloomjoin_count(self.site1, "R", self.site2,
                                          "S", "a", m=8192, seed=6)
        truth = exact_grouped_join_count(self.r, self.s, "a")
        wrong = sum(1 for v, c in truth.items() if counts.get(v) != c)
        assert wrong <= max(1, 0.05 * len(truth))

    def test_spectral_threshold(self):
        truth = exact_grouped_join_count(self.r, self.s, "a")
        t = sorted(truth.values())[len(truth) // 2]
        result = spectral_bloomjoin_threshold(self.site1, "R", self.site2,
                                              "S", "a", t, m=8192, seed=6)
        true_pass = {v for v, c in truth.items() if c >= t}
        assert true_pass <= set(result)

    def test_spectral_threshold_invalid(self):
        with pytest.raises(ValueError):
            spectral_bloomjoin_threshold(self.site1, "R", self.site2, "S",
                                         "a", 0)


class TestBifocal:
    def test_exact_oracle_estimate_close(self):
        r, s = make_relations(seed=7, n_r=2000, n_s=3000)
        est = BifocalEstimator(r, s, "a", sample_size=800, use_sbf=False,
                               seed=7)
        assert est.relative_error() < 0.35

    def test_sbf_oracle_close_to_exact_oracle(self):
        """§5.4: replacing the t-index with an SBF adds only a small
        one-sided deviation."""
        r, s = make_relations(seed=8, n_r=2000, n_s=3000)
        exact_est = BifocalEstimator(r, s, "a", sample_size=800,
                                     use_sbf=False, seed=8).estimate()
        sbf_est = BifocalEstimator(r, s, "a", sample_size=800,
                                   use_sbf=True, seed=8).estimate()
        assert sbf_est == pytest.approx(exact_est, rel=0.15)

    def test_exact_join_size(self):
        r = Relation("R", ("a",), [(1,), (1,), (2,)])
        s = Relation("S", ("a",), [(1,), (2,), (2,)])
        est = BifocalEstimator(r, s, "a", sample_size=3, seed=1)
        assert est.exact() == 2 * 1 + 1 * 2

    def test_invalid_sample_size(self):
        r, s = make_relations(seed=9)
        with pytest.raises(ValueError):
            BifocalEstimator(r, s, "a", sample_size=0)


class TestRangeTree:
    def setup_method(self):
        self.tree = RangeTreeSBF(0, 127, m=30_000, k=4, seed=10)
        rng = random.Random(10)
        self.data = [rng.randrange(128) for _ in range(1500)]
        for v in self.data:
            self.tree.insert(v)

    def true_range(self, lo, hi):
        return sum(1 for v in self.data if lo <= v <= hi)

    def test_point_queries(self):
        counts = collections.Counter(self.data)
        wrong = sum(1 for v, c in counts.items()
                    if self.tree.count(v) != c)
        assert wrong <= 3

    def test_range_counts_one_sided(self):
        rng = random.Random(11)
        for _ in range(30):
            lo = rng.randrange(128)
            hi = rng.randrange(lo, 128)
            assert self.tree.range_count(lo, hi) >= self.true_range(lo, hi)

    def test_range_counts_mostly_exact(self):
        rng = random.Random(12)
        wrong = 0
        for _ in range(30):
            lo = rng.randrange(128)
            hi = rng.randrange(lo, 128)
            if self.tree.range_count(lo, hi) != self.true_range(lo, hi):
                wrong += 1
        assert wrong <= 4

    def test_full_domain(self):
        assert self.tree.range_count(0, 127) >= len(self.data)

    def test_probe_complexity(self):
        """Theorem 11: a range query needs O(p log|Q|) probes."""
        import math
        self.tree.range_count(13, 97)
        q = 97 - 13 + 1
        bound = 2 * self.tree.branching * (math.log2(q) + 2)
        assert self.tree.last_query_probes <= bound

    def test_deletions(self):
        tree = RangeTreeSBF(0, 63, m=20_000, k=4, seed=13)
        for v in (5, 5, 9, 20):
            tree.insert(v)
        tree.delete(5)
        assert tree.range_count(0, 10) >= 2
        assert tree.count(5) >= 1

    def test_empty_and_clipped_ranges(self):
        assert self.tree.range_count(100, 50) == 0
        assert self.tree.range_count(-50, 500) >= len(self.data)

    def test_out_of_domain_value(self):
        with pytest.raises(ValueError):
            self.tree.insert(128)
        with pytest.raises(ValueError):
            self.tree.count(-1)

    def test_pary_tree(self):
        tree = RangeTreeSBF(0, 63, m=30_000, k=4, branching=4, seed=14)
        data = [i % 64 for i in range(640)]
        for v in data:
            tree.insert(v)
        assert tree.range_count(0, 63) >= 640
        assert tree.range_count(10, 20) >= 110
        assert tree.tree_keys_per_item() < RangeTreeSBF(
            0, 63, m=100, branching=2).tree_keys_per_item()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RangeTreeSBF(10, 5, m=100)
        with pytest.raises(ValueError):
            RangeTreeSBF(0, 10, m=100, branching=1)


class TestSlidingWindow:
    def test_window_counts(self):
        sw = SlidingWindowSBF(window=200, m=3000, method="rm", seed=15)
        stream = insertion_stream(100, 1000, 0.8, seed=15)
        sw.extend(stream)
        assert len(sw) == 200
        assert sw.is_full
        window = stream[-200:]
        counts = collections.Counter(window)
        negatives = sum(1 for x, c in counts.items() if sw.query(x) < c)
        assert negatives == 0

    def test_expired_items_fade(self):
        sw = SlidingWindowSBF(window=50, m=2000, method="ms", seed=16)
        sw.extend(["old"] * 50)
        sw.extend(["new"] * 50)
        assert sw.query("old") == 0
        assert sw.query("new") >= 50

    def test_push_returns_evicted(self):
        sw = SlidingWindowSBF(window=2, m=100, method="ms", seed=17)
        assert sw.push("a") is None
        assert sw.push("b") is None
        assert sw.push("c") == "a"

    def test_true_count_and_contains(self):
        sw = SlidingWindowSBF(window=10, m=500, method="ms", seed=18)
        sw.extend(["x", "y", "x"])
        assert sw.true_count("x") == 2
        assert sw.contains("x", 2)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowSBF(window=0, m=100)

    def test_mi_unusable_under_window(self):
        """Figure 9: MI degrades badly in sliding windows."""
        stream = insertion_stream(80, 2000, 1.0, seed=19)
        mi = SlidingWindowSBF(window=400, m=1200, method="mi", seed=19)
        rm = SlidingWindowSBF(window=400, m=800, k=5, method="rm", seed=19)
        mi.extend(stream)
        rm.extend(stream)
        counts = collections.Counter(stream[-400:])
        mi_neg = sum(1 for x, c in counts.items() if mi.query(x) < c)
        rm_neg = sum(1 for x, c in counts.items() if rm.query(x) < c)
        assert rm_neg == 0
        assert mi_neg > 0
