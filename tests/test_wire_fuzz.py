"""Fuzz / property tests for the hardened wire format (serialize v2).

Two guarantees are exercised exhaustively with seeded randomness:

1. **Round-trip fidelity** — every method x hash-family combination dumps
   and loads back to an equivalent filter (same queries, same metadata).
2. **Corruption is always loud** — any truncation, bit flip, or junk
   input raises :class:`WireFormatError`.  Never a bare ``struct.error``
   or ``IndexError``, and never a silently wrong filter.
"""

from __future__ import annotations

import random

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    WireFormatError,
    dump_bloom,
    dump_sbf,
    load_bloom,
    load_sbf,
)
from repro.filters.bloom import BloomFilter

METHODS = ["ms", "mi", "rm", "trm"]
FAMILIES = ["modmul", "multiply-shift", "tabulation", "double", "blocked"]


def build_sbf(method: str, family: str, *, m: int = 128, k: int = 3,
              seed: int = 11, items: int = 80) -> SpectralBloomFilter:
    sbf = SpectralBloomFilter(m, k, method=method, seed=seed,
                              hash_family=family)
    rng = random.Random(seed)
    for _ in range(items):
        sbf.insert(rng.randrange(40))
    return sbf


def flip_bit(frame: bytes, position: int) -> bytes:
    mutated = bytearray(frame)
    mutated[position // 8] ^= 1 << (position % 8)
    return bytes(mutated)


class TestRoundTrips:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("method", METHODS)
    def test_sbf_round_trip_all_methods_and_families(self, method, family):
        sbf = build_sbf(method, family)
        restored = load_sbf(dump_sbf(sbf))
        assert restored.m == sbf.m and restored.k == sbf.k
        assert restored.total_count == sbf.total_count
        for x in range(50):
            assert restored.query(x) == sbf.query(x)
        assert restored.check_integrity() == []

    @pytest.mark.parametrize("family", FAMILIES)
    def test_bloom_round_trip_all_families(self, family):
        bf = BloomFilter(256, 4, seed=3, hash_family=family)
        for x in range(60):
            bf.add(x)
        restored = load_bloom(dump_bloom(bf))
        assert restored.m == bf.m and restored.k == bf.k
        assert restored.n_added == bf.n_added
        for x in range(120):
            assert (x in restored) == (x in bf)

    def test_empty_filters_round_trip(self):
        bf = BloomFilter(64, 2, seed=0)
        assert load_bloom(dump_bloom(bf)).n_added == 0
        sbf = SpectralBloomFilter(64, 2, seed=0)
        restored = load_sbf(dump_sbf(sbf))
        assert restored.total_count == 0
        assert restored.check_integrity() == []


class TestTruncationFuzz:
    """Every possible truncation point must raise WireFormatError."""

    def assert_all_truncations_fail(self, frame: bytes, loader) -> None:
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                loader(frame[:cut])

    def test_truncated_bloom_frames(self):
        bf = BloomFilter(64, 3, seed=5)
        for x in range(20):
            bf.add(x)
        self.assert_all_truncations_fail(dump_bloom(bf), load_bloom)

    def test_truncated_sbf_frames(self):
        sbf = build_sbf("rm", "modmul", m=64, k=3, items=30)
        self.assert_all_truncations_fail(dump_sbf(sbf), load_sbf)

    def test_trailing_garbage_rejected(self):
        frame = dump_bloom(BloomFilter(64, 3, seed=5))
        with pytest.raises(WireFormatError):
            load_bloom(frame + b"\x00")


class TestBitFlipFuzz:
    """A single flipped bit anywhere in the frame is always detected."""

    def assert_flips_detected(self, frame: bytes, loader, seed: int,
                              trials: int = 400) -> None:
        rng = random.Random(seed)
        for _ in range(trials):
            corrupted = flip_bit(frame, rng.randrange(len(frame) * 8))
            try:
                loader(corrupted)
            except WireFormatError:
                continue
            pytest.fail("bit-flipped frame decoded without error")

    def test_bloom_bit_flips(self):
        bf = BloomFilter(128, 4, seed=7)
        for x in range(40):
            bf.add(x)
        self.assert_flips_detected(dump_bloom(bf), load_bloom, seed=1)

    @pytest.mark.parametrize("method", METHODS)
    def test_sbf_bit_flips_all_methods(self, method):
        sbf = build_sbf(method, "modmul", m=64, k=3, items=40)
        self.assert_flips_detected(dump_sbf(sbf), load_sbf, seed=2,
                                   trials=250)

    def test_exhaustive_flips_on_small_frame(self):
        frame = dump_bloom(BloomFilter(16, 2, seed=9))
        for position in range(len(frame) * 8):
            with pytest.raises(WireFormatError):
                load_bloom(flip_bit(frame, position))


class TestJunkInputs:
    @pytest.mark.parametrize("loader", [load_bloom, load_sbf])
    def test_non_bytes_rejected(self, loader):
        for junk in [None, 42, "RBF2...", [1, 2, 3]]:
            with pytest.raises(WireFormatError):
                loader(junk)

    @pytest.mark.parametrize("loader", [load_bloom, load_sbf])
    def test_random_byte_blobs_rejected(self, loader):
        rng = random.Random(13)
        for _ in range(200):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 128)))
            with pytest.raises(WireFormatError):
                loader(blob)

    def test_legacy_magic_gets_clear_error(self):
        frame = bytearray(dump_bloom(BloomFilter(32, 2, seed=1)))
        frame[:4] = b"RBF1"
        with pytest.raises(WireFormatError, match="no longer supported"):
            load_bloom(bytes(frame))

    def test_cross_format_frames_rejected(self):
        bf_frame = dump_bloom(BloomFilter(32, 2, seed=1))
        sbf_frame = dump_sbf(SpectralBloomFilter(32, 2, seed=1))
        with pytest.raises(WireFormatError):
            load_sbf(bf_frame)
        with pytest.raises(WireFormatError):
            load_bloom(sbf_frame)
