"""Unit and property tests for the packed bit vector substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.succinct.bitvector import BitVector, BitReader, BitWriter


class TestBasics:
    def test_new_vector_is_zero(self):
        vec = BitVector(100)
        assert len(vec) == 100
        assert all(vec.get_bit(i) == 0 for i in range(100))

    def test_set_and_get_single_bits(self):
        vec = BitVector(10)
        vec.set_bit(3)
        vec.set_bit(7)
        assert [vec.get_bit(i) for i in range(10)] == [
            0, 0, 0, 1, 0, 0, 0, 1, 0, 0]

    def test_clear_bit(self):
        vec = BitVector(8)
        vec.set_bit(5)
        vec.set_bit(5, 0)
        assert vec.get_bit(5) == 0

    def test_grows_on_write_past_end(self):
        vec = BitVector(4)
        vec.set_bit(100)
        assert len(vec) == 101
        assert vec.get_bit(100) == 1

    def test_read_past_end_is_zero(self):
        vec = BitVector(4)
        assert vec.get_bit(1000) == 0
        assert vec.read(1000, 32) == 0

    def test_negative_position_raises(self):
        vec = BitVector(4)
        with pytest.raises(IndexError):
            vec.get_bit(-1)
        with pytest.raises(IndexError):
            vec.set_bit(-1)
        with pytest.raises(IndexError):
            vec.read(-1, 4)

    def test_value_too_wide_raises(self):
        vec = BitVector(8)
        with pytest.raises(ValueError):
            vec.write(0, 3, 8)

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        vec = BitVector.from_bits(bits)
        assert [vec.get_bit(i) for i in range(len(bits))] == bits

    def test_dunder_access(self):
        vec = BitVector(8)
        vec[2] = 1
        assert vec[2] == 1

    def test_equality(self):
        a = BitVector.from_bits([1, 0, 1])
        b = BitVector.from_bits([1, 0, 1])
        c = BitVector.from_bits([1, 1, 1])
        assert a == b
        assert a != c
        assert a != "not a vector"

    def test_copy_is_independent(self):
        a = BitVector.from_bits([1, 0, 1])
        b = a.copy()
        b.set_bit(1)
        assert a.get_bit(1) == 0
        assert b.get_bit(1) == 1

    def test_count_ones(self):
        vec = BitVector.from_bits([1, 0, 1, 1, 0])
        assert vec.count_ones() == 3

    def test_word_and_popcount_access(self):
        vec = BitVector(130)
        vec.write(0, 64, 0xF0F0)
        vec.set_bit(100)
        assert vec.word(0) == 0xF0F0
        assert vec.popcount_word(0) == 8
        assert vec.popcount_word(1) == 1
        # Past-the-end word reads are zero, not errors.
        assert vec.word(99) == 0
        assert vec.popcount_word(99) == 0


class TestFields:
    def test_write_read_word_aligned(self):
        vec = BitVector(128)
        vec.write(0, 64, 0xDEADBEEFCAFEF00D)
        assert vec.read(0, 64) == 0xDEADBEEFCAFEF00D

    def test_write_read_unaligned_crossing_words(self):
        vec = BitVector(256)
        vec.write(61, 40, 0xABCDE12345)
        assert vec.read(61, 40) == 0xABCDE12345

    def test_write_wider_than_word(self):
        vec = BitVector(512)
        big = (1 << 130) - 7
        vec.write(5, 131, big)
        assert vec.read(5, 131) == big

    def test_neighbouring_fields_do_not_clobber(self):
        vec = BitVector(64)
        vec.write(0, 5, 0b10101)
        vec.write(5, 5, 0b01010)
        vec.write(10, 5, 0b11111)
        assert vec.read(0, 5) == 0b10101
        assert vec.read(5, 5) == 0b01010
        assert vec.read(10, 5) == 0b11111

    def test_zero_width_read_write(self):
        vec = BitVector(8)
        vec.write(3, 0, 0)
        assert vec.read(3, 0) == 0

    @given(st.integers(0, 200), st.integers(1, 150),
           st.integers(min_value=0))
    def test_roundtrip_random_fields(self, pos, width, raw):
        value = raw & ((1 << width) - 1)
        vec = BitVector()
        vec.write(pos, width, value)
        assert vec.read(pos, width) == value

    @given(st.lists(st.integers(0, 2**20 - 1), min_size=1, max_size=30))
    def test_packed_sequence_roundtrip(self, values):
        """Packing fields back to back keeps every field intact."""
        widths = [max(1, v.bit_length()) for v in values]
        vec = BitVector()
        pos = 0
        for v, w in zip(values, widths):
            vec.write(pos, w, v)
            pos += w
        pos = 0
        for v, w in zip(values, widths):
            assert vec.read(pos, w) == v
            pos += w


class TestMoveRange:
    def test_move_right_no_overlap(self):
        vec = BitVector(64)
        vec.write(0, 8, 0xAB)
        vec.move_range(0, 8, 20)
        assert vec.read(20, 8) == 0xAB

    def test_move_right_overlapping(self):
        vec = BitVector(64)
        vec.write(0, 16, 0xBEEF)
        vec.move_range(0, 16, 4)
        assert vec.read(4, 16) == 0xBEEF

    def test_move_left_overlapping(self):
        vec = BitVector(64)
        vec.write(8, 16, 0xBEEF)
        vec.move_range(8, 16, 2)
        assert vec.read(2, 16) == 0xBEEF

    def test_move_zero_length_is_noop(self):
        vec = BitVector.from_bits([1, 0, 1])
        before = vec.copy()
        vec.move_range(0, 0, 2)
        assert vec == before

    def test_move_same_position_is_noop(self):
        vec = BitVector.from_bits([1, 0, 1, 1])
        before = vec.copy()
        vec.move_range(1, 2, 1)
        assert vec == before

    def test_negative_length_raises(self):
        vec = BitVector(8)
        with pytest.raises(ValueError):
            vec.move_range(0, -1, 4)

    @given(st.integers(0, 100), st.integers(0, 300), st.integers(0, 100),
           st.integers(min_value=0))
    def test_move_preserves_payload(self, src, length, dst, raw):
        payload = raw & ((1 << length) - 1) if length else 0
        vec = BitVector()
        vec.write(src, length, payload)
        vec.move_range(src, length, dst)
        assert vec.read(dst, length) == payload


class TestReaderWriter:
    def test_writer_then_reader_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b11, 2)
        reader = BitReader(writer.vector)
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(2) == 0b11

    def test_read_bit_sequence(self):
        vec = BitVector.from_bits([1, 0, 1, 1])
        reader = BitReader(vec)
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_writer_tracks_position(self):
        writer = BitWriter()
        writer.write_bits(0, 5)
        writer.write_bits(1, 1)
        assert writer.pos == 6
