"""Differential testing across the three counter backends.

The array, compact (String-Array Index), and stream (coded stream)
backends implement one contract with three very different mechanisms —
plain list ops vs. bit-packed variable-width fields vs. prefix-free
decode chains.  These tests drive *identical* seeded workloads through
all three and demand counter-for-counter equality, so any divergence in
``add`` / ``set`` / ``add_clamped`` semantics (clamping, width growth,
chunk rebuilds) surfaces as a concrete failing counter index.

Also pins the configuration-preservation fix: filters derived through
``union`` / ``_spawn_like`` (and Recurring Minimum's secondary) keep the
live backend's constructor options instead of reverting to defaults.
"""

import random

import pytest

from repro.core.sbf import SpectralBloomFilter
from repro.storage.backends import (
    ArrayBackend,
    CompactBackend,
    StreamBackend,
)

M, K = 256, 3

#: (backend name, backend_options) — deliberately non-default options so
#: "options dropped somewhere" cannot pass by accident.
BACKENDS = [
    ("array", {}),
    ("compact", {"chunk_slack": 2, "group_slack": 8}),
    ("stream", {"codec": "steps"}),
]

KEYS = [f"key-{i}" for i in range(48)]


def build(method, backend, options):
    return SpectralBloomFilter(M, K, method=method, seed=13,
                               backend=backend, backend_options=options)


def seeded_ops(seed, n_ops, allow_overdelete):
    """A deterministic mixed insert/delete schedule.

    Tracks true multiplicities so that, unless *allow_overdelete*, every
    delete removes only what was inserted (the MS/RM precondition).
    """
    rng = random.Random(seed)
    truth: dict[str, int] = {}
    ops = []
    for _ in range(n_ops):
        key = rng.choice(KEYS)
        if rng.random() < 0.35 and (allow_overdelete or truth.get(key, 0)):
            if allow_overdelete:
                count = rng.randint(1, 4)
            else:
                count = rng.randint(1, truth[key])
            truth[key] = max(0, truth.get(key, 0) - count)
            ops.append(("delete", key, count))
        else:
            count = rng.randint(1, 5)
            truth[key] = truth.get(key, 0) + count
            ops.append(("insert", key, count))
    return ops


def drive(sbf, ops):
    for op, key, count in ops:
        getattr(sbf, op)(key, count)
    return sbf


class TestBackendEquivalence:
    @pytest.mark.parametrize("method", ["ms", "mi", "rm"])
    def test_identical_workloads_identical_counters(self, method):
        # MI deletes clamp at zero (the add_clamped path), so feed it
        # overdeletes on purpose; MS/RM require legal deletes.
        ops = seeded_ops(seed=99, n_ops=400,
                         allow_overdelete=(method == "mi"))
        filters = [drive(build(method, name, opts), ops)
                   for name, opts in BACKENDS]
        reference = filters[0]
        for sbf, (name, _) in zip(filters[1:], BACKENDS[1:]):
            assert sbf.counters.to_list() == reference.counters.to_list(), (
                f"{name} backend diverged from array under method={method}")
            assert sbf.total_count == reference.total_count
            assert sbf.check_integrity() == []
            for key in KEYS:
                assert sbf.query(key) == reference.query(key), (
                    f"{name} query({key!r}) diverged under method={method}")

    def test_add_clamped_single_touch_matches_generic(self):
        """The overridden single-touch add_clamped implementations agree
        with the base get+set round trip on every (value, delta) edge."""
        cases = [(0, -1), (0, 3), (1, -1), (1, -5), (7, -7), (7, -8),
                 (7, 1), (255, 1), (256, -200), (300, -300), (5, 0)]
        for start, delta in cases:
            expected = max(0, start + delta)
            for cls, kwargs in [(ArrayBackend, {}),
                                (CompactBackend, {"chunk_slack": 2}),
                                (StreamBackend, {"codec": "steps"})]:
                backend = cls(8, **kwargs)
                backend.set(3, start)
                returned = backend.add_clamped(3, delta)
                assert returned == expected, (
                    f"{cls.__name__}.add_clamped({start}, {delta})")
                assert backend.get(3) == expected
                # Neighbours untouched (the single-touch paths edit
                # variable-width fields in place).
                assert [backend.get(i) for i in range(8) if i != 3] \
                    == [0] * 7

    def test_union_differential(self):
        left_ops = seeded_ops(seed=5, n_ops=150, allow_overdelete=False)
        right_ops = seeded_ops(seed=6, n_ops=150, allow_overdelete=False)
        merged = {}
        for name, opts in BACKENDS:
            left = drive(build("ms", name, opts), left_ops)
            right = drive(build("ms", name, opts), right_ops)
            union = left.union(right)
            assert union.check_integrity() == []
            merged[name] = union.counters.to_list()
        assert merged["compact"] == merged["array"]
        assert merged["stream"] == merged["array"]


class TestConfigurationPreservation:
    """The satellite fix: derived filters must keep backend options."""

    @pytest.mark.parametrize("name,opts", BACKENDS[1:])
    def test_union_preserves_backend_and_options(self, name, opts):
        left = build("ms", name, opts)
        right = build("ms", name, opts)
        left.insert("x", 2)
        right.insert("y", 3)
        union = left.union(right)
        assert type(union.counters) is type(left.counters)
        assert union.counters.options() == left.counters.options()
        for option, value in opts.items():
            assert union.counters.options()[option] == value
        assert union.query("x") >= 2 and union.query("y") >= 3

    def test_stream_union_keeps_codec(self):
        left = build("ms", "stream", {"codec": "steps"})
        right = build("ms", "stream", {"codec": "steps"})
        union = left.union(right)
        assert union.counters.options()["codec"] == "steps"

    def test_spawn_like_round_trips_options(self):
        for name, opts in BACKENDS:
            sbf = build("ms", name, opts)
            spawn = sbf._spawn_like()
            assert type(spawn.counters) is type(sbf.counters)
            assert spawn.counters.options() == sbf.counters.options()

    def test_rm_secondary_inherits_backend_options(self):
        sbf = build("rm", "stream", {"codec": "steps"})
        secondary = sbf.method.secondary
        assert type(secondary.counters) is StreamBackend
        assert secondary.counters.options()["codec"] == "steps"

    def test_already_constructed_backend_rejects_options(self):
        backend = ArrayBackend(M)
        with pytest.raises(ValueError):
            SpectralBloomFilter(M, K, backend=backend,
                                backend_options={"chunk_slack": 2})
