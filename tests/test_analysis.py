"""Tests for the closed-form analyses of §2.3 and §5.2."""

import pytest

from repro.analysis.iceberg_math import (
    figure4_curve,
    frequency_histogram,
    iceberg_error_rate,
)
from repro.analysis.zipf_errors import (
    double_stepover_probability,
    expected_relative_error,
    expected_relative_error_all_items,
    figure1_curves,
    optimal_skew,
    relative_error_tail_probability,
)


class TestExpectedRelativeError:
    def test_monotone_in_rank(self):
        """Figure 1: 'this function is rising monotonically as items are
        less frequent in the data set'."""
        values = [expected_relative_error(i, 10_000, 5, 1.0)
                  for i in (1, 100, 1000, 5000, 10_000)]
        assert values == sorted(values)

    def test_skew_crossover(self):
        """Figure 1: high skews start lower for frequent items but cross
        above low skews for rare items."""
        n, k = 10_000, 5
        # Frequent item: higher skew -> smaller expected error.
        assert (expected_relative_error(10, n, k, 2.0)
                < expected_relative_error(10, n, k, 0.2))
        # Rare item: the ordering flips.
        assert (expected_relative_error(10_000, n, k, 2.0)
                > expected_relative_error(10_000, n, k, 0.2))

    def test_figure1_magnitudes(self):
        """The Figure 1 y-axis tops out around 1.8 for these parameters."""
        curves = figure1_curves()
        peak = max(v for series in curves.values() for _i, v in series)
        assert 0.5 < peak < 4.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_relative_error(0, 100, 5, 1.0)
        with pytest.raises(ValueError):
            expected_relative_error(101, 100, 5, 1.0)
        with pytest.raises(ValueError):
            expected_relative_error(1, 4, 5, 1.0)
        with pytest.raises(ValueError):
            expected_relative_error(1, 100, 5, -1.0)


class TestAllItemsBound:
    def test_true_minimum_at_half_k_minus_one(self):
        """Erratum: the Equation (2) bound is minimised at z = (k-1)/2 (the
        paper states (k+1)/2; its derivative step has a sign slip)."""
        n, k = 1000, 5
        z_min = optimal_skew(k)
        assert z_min == 2.0
        at_min = expected_relative_error_all_items(n, k, z_min)
        for z in (0.5, 1.0, 1.5, 2.5, 3.0, 3.5, 4.0):
            assert at_min <= expected_relative_error_all_items(n, k, z) + 1e-12

    def test_paper_minimal_value_formula(self):
        """The paper's minimal-value expression
        4k(n+1)^(k+1) / (n (n-k)^k (k-1)(k+3)) equals the bound evaluated
        at its claimed z = (k+1)/2."""
        from repro.analysis.zipf_errors import paper_optimal_skew
        n, k = 1000, 5
        paper_bound = (4 * k * (n + 1) ** (k + 1)
                       / (n * (n - k) ** k * (k - 1) * (k + 3)))
        at_paper_z = expected_relative_error_all_items(
            n, k, paper_optimal_skew(k))
        assert at_paper_z == pytest.approx(paper_bound)
        # ... and the true minimum is strictly below it.
        assert expected_relative_error_all_items(
            n, k, optimal_skew(k)) < paper_bound

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_relative_error_all_items(100, 5, 5.0)
        with pytest.raises(ValueError):
            expected_relative_error_all_items(4, 5, 1.0)
        with pytest.raises(ValueError):
            optimal_skew(0)


class TestTailBound:
    def test_paper_worked_example(self):
        """§2.3: n=1000, k=5, z=1, T=0.5 gives 5*(i/497.5)^5, exceeding 1
        for i > 360."""
        p_360 = relative_error_tail_probability(360, 1000, 5, 1.0, 0.5)
        p_361 = relative_error_tail_probability(361, 1000, 5, 1.0, 0.5)
        assert p_360 == pytest.approx(5 * (360 / 497.5) ** 5)
        assert p_360 <= 1.0 < p_361 * 1.02  # the paper's i > 360 remark

    def test_monotone_in_threshold(self):
        p_small = relative_error_tail_probability(100, 1000, 5, 1.0, 0.1)
        p_large = relative_error_tail_probability(100, 1000, 5, 1.0, 2.0)
        assert p_large < p_small

    def test_invalid(self):
        with pytest.raises(ValueError):
            relative_error_tail_probability(1, 100, 5, 1.0, 0.0)
        with pytest.raises(ValueError):
            relative_error_tail_probability(1, 100, 5, 0.0, 0.5)
        with pytest.raises(ValueError):
            relative_error_tail_probability(0, 100, 5, 1.0, 0.5)


class TestDoubleStepover:
    def test_paper_magnitude(self):
        """§2.3: 'for gamma = 0.7 and k = 5 yields a probability of less
        than 1%' (the exact evaluation lands at 1.0004%, so we test the
        quoted magnitude rather than the strict inequality)."""
        p = double_stepover_probability(0.7, 10_000, 5)
        assert 0.0 < p < 0.0105

    def test_zero_load(self):
        assert double_stepover_probability(0.0, 100, 5) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            double_stepover_probability(0.7, 1, 5)
        with pytest.raises(ValueError):
            double_stepover_probability(-0.1, 100, 5)


class TestIcebergMath:
    def test_frequency_histogram(self):
        d = frequency_histogram({"a": 1, "b": 1, "c": 3})
        assert d == {1: pytest.approx(2 / 3), 3: pytest.approx(1 / 3)}
        with pytest.raises(ValueError):
            frequency_histogram({})

    def test_error_bounded_by_bloom_error(self):
        """§5.2: 'for iceberg queries purposes, the error is only a subset
        of the usual Bloom Error'."""
        from repro.core.params import bloom_error
        from repro.data.zipf import zipf_frequencies
        freqs = zipf_frequencies(500, 10_000, 0.8)
        counts = {i: f for i, f in enumerate(freqs) if f > 0}
        n = len(counts)
        k = 5
        m = n * k  # gamma = 1, the Figure 4 setting
        eb = bloom_error(n, k, m)
        for threshold in (2, 5, 20, 100):
            err = iceberg_error_rate(counts, threshold, m, k)
            assert 0.0 <= err <= eb + 1e-9

    def test_figure4_peak_shape(self):
        """Figure 4: for skewed data the error rises, peaks, then falls as
        the threshold grows; it never exceeds ~0.025 at gamma=1, k=5."""
        curve = figure4_curve(1000, 50_000, 1.0, thresholds=25)
        errors = [e for _pct, e in curve]
        assert max(errors) < 0.03
        peak = errors.index(max(errors))
        assert peak < len(errors) - 1          # it falls after the peak
        assert errors[-1] < max(errors) / 2    # clearly below the peak

    def test_invalid(self):
        with pytest.raises(ValueError):
            iceberg_error_rate({"a": 1}, 0, 100, 5)
        with pytest.raises(ValueError):
            iceberg_error_rate({"a": 1}, 1, 0, 5)
