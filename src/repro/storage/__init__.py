"""Counter-storage backends for the Spectral Bloom Filter.

The SBF's algorithms (Section 2-3 of the paper) are independent of how the
counter vector ``C`` is physically stored; §4 is entirely about making that
storage compact.  This package separates the two concerns: filters talk to a
small :class:`CounterBackend` interface, and the backend decides between a
plain word array (fast), the String-Array Index (the paper's N + o(N) + O(m)
bits structure) or the §4.5 coded stream.
"""

from repro.storage.backends import (
    ArrayBackend,
    CompactBackend,
    CounterBackend,
    NumpyBackend,
    StreamBackend,
    make_backend,
)

__all__ = [
    "CounterBackend",
    "ArrayBackend",
    "NumpyBackend",
    "CompactBackend",
    "StreamBackend",
    "make_backend",
]
