"""Counter-vector backends: plain array, String-Array Index, coded stream.

All backends store ``m`` non-negative integer counters and expose the same
interface; they differ in speed and in the bit budget they would occupy in a
packed implementation:

- :class:`ArrayBackend` — a plain Python list.  O(1) everything, and the
  default for experiments whose subject is the SBF's *accuracy*.  Its
  ``storage_bits`` reports the paper's ``N = sum(ceil(log C_i))`` model cost
  so accuracy experiments can still reason about size.
- :class:`CompactBackend` — counters live in a
  :class:`~repro.succinct.string_array.StringArrayIndex` (paper §4.3-4.4):
  the faithful N + o(N) + O(m) bits representation with O(1) access.
- :class:`StreamBackend` — counters live in a
  :class:`~repro.succinct.compact_stream.CompactCounterStream` (paper §4.5):
  smaller index, O(log log N)-step lookups.
- :class:`NumpyBackend` — counters in a numpy array with automatic dtype
  widening (uint8 → uint16 → uint32 → uint64).  The bulk-operation
  backend: ``get_many``/``add_many``/``set_many`` are single vectorised
  gathers/scatters, which is what makes
  :meth:`SpectralBloomFilter.insert_many` run at array speed.

Besides the scalar interface, every backend offers the *bulk hooks*
``get_many``/``add_many``/``set_many``.  The base class implements them as
loops over the scalar operations (in submission order, so compact
backends see exactly the operation sequence the scalar path would have
issued); array-shaped backends override them with aggregated vectorised
versions that produce identical counter values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro.succinct.compact_stream import CompactCounterStream
from repro.succinct.string_array import StringArrayIndex


class CounterBackend(ABC):
    """Abstract vector of ``m`` non-negative counters."""

    name: str = "abstract"

    @abstractmethod
    def get(self, i: int) -> int:
        """Value of counter *i*."""

    @abstractmethod
    def add(self, i: int, delta: int) -> int:
        """Add *delta* (possibly negative) to counter *i*; return new value.

        Raises:
            ValueError: if the counter would become negative.
        """

    @abstractmethod
    def set(self, i: int, value: int) -> None:
        """Set counter *i* to *value* (>= 0)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of counters ``m``."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Model size in bits of this representation."""

    def __iter__(self) -> Iterator[int]:
        for i in range(len(self)):
            yield self.get(i)

    def to_list(self) -> list[int]:
        """All counter values as a plain list."""
        return list(self)

    def add_clamped(self, i: int, delta: int) -> int:
        """Like :meth:`add` but floors the result at zero.

        Used by Minimal Increase deletions, which the paper shows produce
        false negatives — clamping keeps the structure well-defined anyway.

        This base implementation is a generic ``get`` + ``set`` round trip;
        backends whose element access is expensive (a locate in the
        String-Array Index, a subgroup decode in the coded stream) override
        it with a single-touch version.
        """
        value = self.get(i) + delta
        if value < 0:
            value = 0
        self.set(i, value)
        return value

    def options(self) -> dict:
        """Constructor options needed to rebuild an equivalent backend.

        Used by :meth:`SpectralBloomFilter._spawn_like` (and hence
        ``union``) so a derived filter preserves the live backend's
        configuration — codec choice, slack tuning, chunk sizes — instead
        of silently falling back to the defaults.
        """
        return {}

    # ------------------------------------------------------------------
    # bulk hooks (vectorised by array-shaped backends)
    # ------------------------------------------------------------------
    def get_many(self, indices) -> np.ndarray:
        """Counter values at *indices* (repeats allowed) as an int64 array.

        The base implementation loops over :meth:`get`; array backends
        override it with a single fancy-index gather.
        """
        idx = np.asarray(indices, dtype=np.int64)
        return np.fromiter((self.get(int(i)) for i in idx),
                           dtype=np.int64, count=idx.size)

    def add_many(self, indices, deltas) -> None:
        """Apply ``add(i, d)`` for every pair of *indices* / *deltas*.

        Repeated indices accumulate.  The base implementation performs the
        adds one by one in submission order — exactly the operation
        sequence the scalar path would issue, which matters for backends
        whose internal layout depends on operation history.  Aggregating
        overrides must produce the same final counter values and raise
        ``ValueError`` (before mutating anything) whenever the sequential
        application would have driven a counter negative; since all the
        bulk callers pass same-signed deltas, the two failure conditions
        coincide.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dts = np.asarray(deltas, dtype=np.int64)
        if idx.shape != dts.shape:
            raise ValueError(
                f"add_many needs matching shapes, got {idx.shape} indices "
                f"and {dts.shape} deltas")
        for i, d in zip(idx.tolist(), dts.tolist()):
            self.add(i, d)

    def set_many(self, indices, values) -> None:
        """Apply ``set(i, v)`` pairwise, in submission order.

        Repeated indices follow last-write-wins (the bulk kernels only
        repeat an index with an identical value, mirroring the scalar
        path's duplicate-probe writes).
        """
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if idx.shape != vals.shape:
            raise ValueError(
                f"set_many needs matching shapes, got {idx.shape} indices "
                f"and {vals.shape} values")
        for i, v in zip(idx.tolist(), vals.tolist()):
            self.set(i, v)


def _aggregate(indices: np.ndarray, deltas: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray]:
    """Sum *deltas* per distinct index; returns (unique_indices, sums)."""
    if indices.size < 2 or bool((indices[1:] > indices[:-1]).all()):
        # Already sorted and unique — the common case when the bulk
        # kernels pre-aggregate before calling add_many.
        return indices, deltas
    order = np.argsort(indices, kind="stable")
    si = indices[order]
    sd = deltas[order]
    starts = np.flatnonzero(np.r_[True, si[1:] != si[:-1]])
    return si[starts], np.add.reduceat(sd, starts)


class ArrayBackend(CounterBackend):
    """Plain word-per-counter array (the fast default)."""

    name = "array"

    def __init__(self, m: int):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._counts = [0] * m

    def get(self, i: int) -> int:
        return self._counts[i]

    def add(self, i: int, delta: int) -> int:
        value = self._counts[i] + delta
        if value < 0:
            raise ValueError(f"counter {i} would become negative ({value})")
        self._counts[i] = value
        return value

    def set(self, i: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        self._counts[i] = value

    def add_clamped(self, i: int, delta: int) -> int:
        value = self._counts[i] + delta
        if value < 0:
            value = 0
        self._counts[i] = value
        return value

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def storage_bits(self) -> int:
        """The paper's N = sum(ceil(log C_i)) with 1 bit per zero counter."""
        return sum(max(1, c.bit_length()) for c in self._counts)

    def get_many(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        counts = self._counts
        return np.fromiter((counts[i] for i in idx.tolist()),
                           dtype=np.int64, count=idx.size)

    def add_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        dts = np.asarray(deltas, dtype=np.int64)
        if idx.shape != dts.shape:
            raise ValueError(
                f"add_many needs matching shapes, got {idx.shape} indices "
                f"and {dts.shape} deltas")
        if idx.size == 0:
            return
        uniq, sums = _aggregate(idx, dts)
        counts = self._counts
        new = [counts[i] + d for i, d in zip(uniq.tolist(), sums.tolist())]
        if min(new) < 0:
            bad = uniq[new.index(min(new))]
            raise ValueError(
                f"counter {bad} would become negative ({min(new)})")
        for i, v in zip(uniq.tolist(), new):
            counts[i] = v

    def set_many(self, indices, values) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if idx.shape != vals.shape:
            raise ValueError(
                f"set_many needs matching shapes, got {idx.shape} indices "
                f"and {vals.shape} values")
        if vals.size and vals.min() < 0:
            raise ValueError(
                f"counter values must be >= 0, got {int(vals.min())}")
        counts = self._counts
        for i, v in zip(idx.tolist(), vals.tolist()):
            counts[i] = v


class NumpyBackend(CounterBackend):
    """Counters in a numpy array with automatic dtype widening.

    Starts at uint8 and widens (uint16 → uint32 → uint64) whenever a
    counter would overflow the current dtype, so a mostly-small filter
    stays one byte per counter.  Widening replaces the underlying array —
    code holding the zero-copy :attr:`raw` view must call
    :meth:`ensure_capacity` with an upper bound *before* taking the view
    (the bulk kernels pre-widen with ``max() + sum(counts)``).
    """

    name = "numpy"

    _LADDER = (np.uint8, np.uint16, np.uint32, np.uint64)

    def __init__(self, m: int, dtype=np.uint8):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        dt = np.dtype(dtype)
        if dt not in {np.dtype(d) for d in self._LADDER}:
            raise ValueError(
                f"dtype must be one of uint8/16/32/64, got {dt}")
        self._counts = np.zeros(m, dtype=dt)

    @property
    def raw(self) -> np.ndarray:
        """The live counter array (zero-copy; invalidated by widening)."""
        return self._counts

    def ensure_capacity(self, max_value: int) -> None:
        """Widen the dtype until *max_value* fits without overflow."""
        if max_value <= int(np.iinfo(self._counts.dtype).max):
            return
        for dt in self._LADDER:
            if max_value <= int(np.iinfo(dt).max):
                self._counts = self._counts.astype(dt)
                return
        raise OverflowError(
            f"counter value {max_value} exceeds uint64 capacity")

    def get(self, i: int) -> int:
        return int(self._counts[i])

    def add(self, i: int, delta: int) -> int:
        value = int(self._counts[i]) + delta
        if value < 0:
            raise ValueError(f"counter {i} would become negative ({value})")
        self.ensure_capacity(value)
        self._counts[i] = value
        return value

    def set(self, i: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        if i < 0 or i >= self._counts.size:
            raise IndexError(f"counter index {i} out of range")
        self.ensure_capacity(value)
        self._counts[i] = value

    def add_clamped(self, i: int, delta: int) -> int:
        value = int(self._counts[i]) + delta
        if value < 0:
            value = 0
        self.ensure_capacity(value)
        self._counts[i] = value
        return value

    def __len__(self) -> int:
        return int(self._counts.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts.tolist())

    def storage_bits(self) -> int:
        """The paper's N model cost, like :class:`ArrayBackend`.

        ``frexp``'s exponent equals ``bit_length`` exactly for values
        below 2**53; beyond that (never reached by realistic counts) fall
        back to the python loop.
        """
        counts = self._counts
        if int(counts.max(initial=0)) >= (1 << 53):
            return sum(max(1, v.bit_length()) for v in counts.tolist())
        _, exponents = np.frexp(counts.astype(np.float64))
        return int(np.maximum(exponents, 1).sum())

    def get_many(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return self._counts[idx].astype(np.int64)

    def add_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        dts = np.asarray(deltas, dtype=np.int64)
        if idx.shape != dts.shape:
            raise ValueError(
                f"add_many needs matching shapes, got {idx.shape} indices "
                f"and {dts.shape} deltas")
        if idx.size == 0:
            return
        uniq, sums = _aggregate(idx, dts)
        new = self._counts[uniq].astype(np.int64) + sums
        low = int(new.min())
        if low < 0:
            bad = int(uniq[int(np.argmin(new))])
            raise ValueError(f"counter {bad} would become negative ({low})")
        self.ensure_capacity(int(new.max()))
        self._counts[uniq] = new.astype(self._counts.dtype)

    def set_many(self, indices, values) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.int64)
        if idx.shape != vals.shape:
            raise ValueError(
                f"set_many needs matching shapes, got {idx.shape} indices "
                f"and {vals.shape} values")
        if vals.size == 0:
            return
        if int(vals.min()) < 0:
            raise ValueError(
                f"counter values must be >= 0, got {int(vals.min())}")
        self.ensure_capacity(int(vals.max()))
        self._counts[idx] = vals.astype(self._counts.dtype)


class CompactBackend(CounterBackend):
    """Counters stored in the String-Array Index (paper §4.3-4.4)."""

    name = "compact"

    def __init__(self, m: int, **sai_options):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._options = dict(sai_options)
        self.index = StringArrayIndex([0] * m, **sai_options)

    def get(self, i: int) -> int:
        return self.index.get(i)

    def add(self, i: int, delta: int) -> int:
        return self.index.increment(i, delta)

    def set(self, i: int, value: int) -> None:
        self.index.set(i, value)

    def add_clamped(self, i: int, delta: int) -> int:
        return self.index.increment_clamped(i, delta)

    def options(self) -> dict:
        return dict(self._options)

    def __len__(self) -> int:
        return len(self.index)

    def storage_bits(self) -> int:
        return self.index.total_bits()

    def storage_breakdown(self) -> dict[str, int]:
        """Per-component bits (see Figure 14)."""
        return self.index.storage_breakdown()


class StreamBackend(CounterBackend):
    """Counters stored in the §4.5 prefix-free coded stream."""

    name = "stream"

    def __init__(self, m: int, codec: object = "elias", **stream_options):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._options = {"codec": codec, **stream_options}
        self.stream = CompactCounterStream([0] * m, codec=codec,
                                           **stream_options)

    def get(self, i: int) -> int:
        return self.stream.get(i)

    def add(self, i: int, delta: int) -> int:
        return self.stream.increment(i, delta)

    def set(self, i: int, value: int) -> None:
        self.stream.set(i, value)

    def add_clamped(self, i: int, delta: int) -> int:
        return self.stream.increment_clamped(i, delta)

    def get_many(self, indices) -> np.ndarray:
        return self.stream.get_many(indices)

    def add_many(self, indices, deltas) -> None:
        self.stream.add_many(indices, deltas)

    def set_many(self, indices, values) -> None:
        self.stream.set_many(indices, values)

    def options(self) -> dict:
        return dict(self._options)

    def __len__(self) -> int:
        return len(self.stream)

    def storage_bits(self) -> int:
        return self.stream.total_bits()


_BACKENDS = {
    "array": ArrayBackend,
    "numpy": NumpyBackend,
    "compact": CompactBackend,
    "stream": StreamBackend,
}


def make_backend(backend: str | CounterBackend | type, m: int,
                 **options) -> CounterBackend:
    """Build a counter backend by short name, class, or pass through.

    Accepted names: ``"array"`` (default), ``"numpy"``, ``"compact"``,
    ``"stream"``.
    """
    if isinstance(backend, CounterBackend):
        if options:
            raise ValueError(
                f"backend options {sorted(options)} cannot be applied to an "
                f"already-constructed {type(backend).__name__}; pass the "
                f"class or short name instead"
            )
        if len(backend) != m:
            raise ValueError(
                f"backend has {len(backend)} counters but the filter needs {m}"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, CounterBackend):
        return backend(m, **options)
    try:
        cls = _BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return cls(m, **options)
