"""Counter-vector backends: plain array, String-Array Index, coded stream.

All backends store ``m`` non-negative integer counters and expose the same
interface; they differ in speed and in the bit budget they would occupy in a
packed implementation:

- :class:`ArrayBackend` — a plain Python list.  O(1) everything, and the
  default for experiments whose subject is the SBF's *accuracy*.  Its
  ``storage_bits`` reports the paper's ``N = sum(ceil(log C_i))`` model cost
  so accuracy experiments can still reason about size.
- :class:`CompactBackend` — counters live in a
  :class:`~repro.succinct.string_array.StringArrayIndex` (paper §4.3-4.4):
  the faithful N + o(N) + O(m) bits representation with O(1) access.
- :class:`StreamBackend` — counters live in a
  :class:`~repro.succinct.compact_stream.CompactCounterStream` (paper §4.5):
  smaller index, O(log log N)-step lookups.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.succinct.compact_stream import CompactCounterStream
from repro.succinct.string_array import StringArrayIndex


class CounterBackend(ABC):
    """Abstract vector of ``m`` non-negative counters."""

    name: str = "abstract"

    @abstractmethod
    def get(self, i: int) -> int:
        """Value of counter *i*."""

    @abstractmethod
    def add(self, i: int, delta: int) -> int:
        """Add *delta* (possibly negative) to counter *i*; return new value.

        Raises:
            ValueError: if the counter would become negative.
        """

    @abstractmethod
    def set(self, i: int, value: int) -> None:
        """Set counter *i* to *value* (>= 0)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of counters ``m``."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Model size in bits of this representation."""

    def __iter__(self) -> Iterator[int]:
        for i in range(len(self)):
            yield self.get(i)

    def to_list(self) -> list[int]:
        """All counter values as a plain list."""
        return list(self)

    def add_clamped(self, i: int, delta: int) -> int:
        """Like :meth:`add` but floors the result at zero.

        Used by Minimal Increase deletions, which the paper shows produce
        false negatives — clamping keeps the structure well-defined anyway.

        This base implementation is a generic ``get`` + ``set`` round trip;
        backends whose element access is expensive (a locate in the
        String-Array Index, a subgroup decode in the coded stream) override
        it with a single-touch version.
        """
        value = self.get(i) + delta
        if value < 0:
            value = 0
        self.set(i, value)
        return value

    def options(self) -> dict:
        """Constructor options needed to rebuild an equivalent backend.

        Used by :meth:`SpectralBloomFilter._spawn_like` (and hence
        ``union``) so a derived filter preserves the live backend's
        configuration — codec choice, slack tuning, chunk sizes — instead
        of silently falling back to the defaults.
        """
        return {}


class ArrayBackend(CounterBackend):
    """Plain word-per-counter array (the fast default)."""

    name = "array"

    def __init__(self, m: int):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._counts = [0] * m

    def get(self, i: int) -> int:
        return self._counts[i]

    def add(self, i: int, delta: int) -> int:
        value = self._counts[i] + delta
        if value < 0:
            raise ValueError(f"counter {i} would become negative ({value})")
        self._counts[i] = value
        return value

    def set(self, i: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"counter values must be >= 0, got {value}")
        self._counts[i] = value

    def add_clamped(self, i: int, delta: int) -> int:
        value = self._counts[i] + delta
        if value < 0:
            value = 0
        self._counts[i] = value
        return value

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def storage_bits(self) -> int:
        """The paper's N = sum(ceil(log C_i)) with 1 bit per zero counter."""
        return sum(max(1, c.bit_length()) for c in self._counts)


class CompactBackend(CounterBackend):
    """Counters stored in the String-Array Index (paper §4.3-4.4)."""

    name = "compact"

    def __init__(self, m: int, **sai_options):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._options = dict(sai_options)
        self.index = StringArrayIndex([0] * m, **sai_options)

    def get(self, i: int) -> int:
        return self.index.get(i)

    def add(self, i: int, delta: int) -> int:
        return self.index.increment(i, delta)

    def set(self, i: int, value: int) -> None:
        self.index.set(i, value)

    def add_clamped(self, i: int, delta: int) -> int:
        return self.index.increment_clamped(i, delta)

    def options(self) -> dict:
        return dict(self._options)

    def __len__(self) -> int:
        return len(self.index)

    def storage_bits(self) -> int:
        return self.index.total_bits()

    def storage_breakdown(self) -> dict[str, int]:
        """Per-component bits (see Figure 14)."""
        return self.index.storage_breakdown()


class StreamBackend(CounterBackend):
    """Counters stored in the §4.5 prefix-free coded stream."""

    name = "stream"

    def __init__(self, m: int, codec: object = "elias", **stream_options):
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self._options = {"codec": codec, **stream_options}
        self.stream = CompactCounterStream([0] * m, codec=codec,
                                           **stream_options)

    def get(self, i: int) -> int:
        return self.stream.get(i)

    def add(self, i: int, delta: int) -> int:
        return self.stream.increment(i, delta)

    def set(self, i: int, value: int) -> None:
        self.stream.set(i, value)

    def add_clamped(self, i: int, delta: int) -> int:
        return self.stream.increment_clamped(i, delta)

    def options(self) -> dict:
        return dict(self._options)

    def __len__(self) -> int:
        return len(self.stream)

    def storage_bits(self) -> int:
        return self.stream.total_bits()


_BACKENDS = {
    "array": ArrayBackend,
    "compact": CompactBackend,
    "stream": StreamBackend,
}


def make_backend(backend: str | CounterBackend | type, m: int,
                 **options) -> CounterBackend:
    """Build a counter backend by short name, class, or pass through.

    Accepted names: ``"array"`` (default), ``"compact"``, ``"stream"``.
    """
    if isinstance(backend, CounterBackend):
        if options:
            raise ValueError(
                f"backend options {sorted(options)} cannot be applied to an "
                f"already-constructed {type(backend).__name__}; pass the "
                f"class or short name instead"
            )
        if len(backend) != m:
            raise ValueError(
                f"backend has {len(backend)} counters but the filter needs {m}"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, CounterBackend):
        return backend(m, **options)
    try:
        cls = _BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return cls(m, **options)
