"""Summary Cache [FCAB98] over Bloom/Spectral filters (paper §1.1.1).

"Bloom Filters are proposed to be used within a hierarchy of proxy servers
to maintain a summary of the data stored in the [cache] of each proxy.
... the Bloom Filters are exchanged between nodes, creating an efficient
method of representing the full picture of the items stored in every proxy
among all proxies."

This module builds that protocol on our substrate:

- each :class:`Proxy` holds a local cache and periodically publishes a
  filter summary of its contents to its peers (traffic accounted through
  :class:`repro.db.site.Network`);
- a miss at one proxy consults the peers' summaries and forwards the
  request only to proxies whose summary claims the object — false
  positives cost a wasted forward, false negatives (from stale summaries)
  cost a missed inter-cache hit, exactly the trade-offs of the paper;
- with ``spectral=True`` the summaries are SBFs, upgrading the protocol:
  peers can pick the replica with the *highest reference count* (a
  popularity-aware routing decision a plain Bloom filter cannot support).

Fault tolerance: summaries travel as checksummed wire frames
(:func:`dump_bloom` / :func:`dump_sbf`) through per-peer
:class:`~repro.db.transport.ReliableChannel` instances, so dropped,
duplicated, and bit-corrupted frames are retried.  When a publish exhausts
its retry budget, the peer simply keeps serving from its *last good*
summary and the missed update is recorded in :attr:`Proxy.staleness` —
[FCAB98]'s staleness tolerance, extended to transport failures.  Received
frames that decode but fail the structural audit are rejected and counted
in :attr:`Proxy.summaries_rejected` (never silently trusted).

Crash tolerance: give a proxy a ``summary_dir`` and every accepted peer
summary is also persisted (atomically, via the persistence layer) so a
restarted proxy resumes routing from each peer's *last good* summary
instead of an empty view — the warm-restart behaviour a production cache
mesh needs.  Persisted frames are re-audited on load; anything torn or
corrupt on disk is dropped and counted, never trusted.
"""

from __future__ import annotations

import urllib.parse
import zlib
from typing import Hashable

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    WireFormatError,
    dump_bloom,
    dump_sbf,
    load_bloom,
    load_sbf,
)
from repro.db.site import Network
from repro.db.transport import DeliveryFailed, ReliableChannel
from repro.filters.bloom import BloomFilter


class Proxy:
    """One cache node participating in the summary-exchange protocol.

    Args:
        name: node identifier.
        network: shared traffic-accounting channel (may be a
            :class:`~repro.db.faults.FaultyNetwork`).
        m, k: summary filter parameters.
        spectral: publish SBF summaries (with reference counts) instead of
            plain Bloom filters.
        max_retries: per-publish retry budget of the reliable transport.
        summary_dir: directory in which accepted peer summaries are
            persisted (atomic writes); on construction, previously
            persisted summaries are reloaded, re-audited, and installed,
            so a restarted proxy routes from each peer's last good
            summary.  ``None`` (default) keeps summaries memory-only.
    """

    def __init__(self, name: str, network: Network, *, m: int = 4096,
                 k: int = 4, seed: int = 0, spectral: bool = False,
                 max_retries: int = 4, summary_dir: str | None = None):
        self.name = name
        self.network = network
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)
        self.spectral = bool(spectral)
        self.max_retries = int(max_retries)
        self.summary_dir = summary_dir
        self.cache: dict[Hashable, int] = {}   # object -> reference count
        self.peers: list["Proxy"] = []
        # Last summary *received* from each peer (name -> filter).
        self.peer_summaries: dict[str, object] = {}
        # Reliable channels to peers, created lazily (name -> channel).
        self._channels: dict[str, ReliableChannel] = {}
        # Diagnostics.
        self.forwards = 0
        self.wasted_forwards = 0
        self.remote_hits = 0
        # Fault-tolerance diagnostics.
        self.publish_failures = 0       # sender side: budgets exhausted
        self.summaries_rejected = 0     # receiver side: audit failures
        # Receiver side: consecutive missed updates per peer name; reset
        # to 0 when a fresh summary lands.
        self.staleness: dict[str, int] = {}
        # Warm restart: summaries recovered from disk (peer names), for
        # diagnostics and tests.
        self.summaries_recovered: list[str] = []
        if self.summary_dir is not None:
            self._load_persisted_summaries()

    # ------------------------------------------------------------------
    # local cache behaviour
    # ------------------------------------------------------------------
    def store(self, obj: Hashable) -> None:
        """Cache *obj* locally (or bump its reference count)."""
        self.cache[obj] = self.cache.get(obj, 0) + 1

    def evict(self, obj: Hashable) -> None:
        """Drop *obj* from the local cache (summaries go stale until the
        next publish — the staleness [FCAB98] tolerates by design)."""
        self.cache.pop(obj, None)

    def has_local(self, obj: Hashable) -> bool:
        return obj in self.cache

    # ------------------------------------------------------------------
    # the summary protocol
    # ------------------------------------------------------------------
    def build_summary(self):
        """Fresh filter over the current cache contents."""
        if self.spectral:
            summary = SpectralBloomFilter(self.m, self.k, method="ms",
                                          seed=self.seed)
            for obj, refs in self.cache.items():
                summary.insert(obj, refs)
        else:
            summary = BloomFilter(self.m, self.k, seed=self.seed)
            for obj in self.cache:
                summary.add(obj)
        return summary

    def _channel_to(self, peer: "Proxy") -> ReliableChannel:
        channel = self._channels.get(peer.name)
        if channel is None:
            jitter_seed = self.seed ^ zlib.crc32(
                f"{self.name}->{peer.name}".encode("utf-8"))
            channel = ReliableChannel(self.network, self.name, peer.name,
                                      max_retries=self.max_retries,
                                      seed=jitter_seed)
            self._channels[peer.name] = channel
        return channel

    def _decode_summary(self, frame: bytes):
        """Decode and audit a summary frame; WireFormatError on any doubt."""
        if self.spectral:
            summary = load_sbf(frame)
            issues = summary.check_integrity()
            if issues:
                raise WireFormatError(
                    "summary failed integrity audit: " + "; ".join(issues))
            return summary
        return load_bloom(frame)

    # ------------------------------------------------------------------
    # summary persistence (warm restarts)
    # ------------------------------------------------------------------
    def _summary_path(self, sender: str) -> str:
        quoted = urllib.parse.quote(sender, safe="")
        return f"{self.summary_dir}/{quoted}.summary"

    def _persist_summary(self, sender: str, frame: bytes) -> None:
        """Durably record *sender*'s last good frame (atomic replace)."""
        from repro.persist.crashsim import FileIO
        from repro.persist.snapshot import atomic_write_bytes
        FileIO().makedirs(self.summary_dir)
        atomic_write_bytes(self._summary_path(sender), frame)

    def _load_persisted_summaries(self) -> None:
        """Reload, re-audit, and install summaries persisted on disk.

        Frames that fail decoding or the structural audit (torn files, bit
        rot) are counted in :attr:`summaries_rejected` and skipped — a
        corrupt on-disk summary degrades to a cold view of that one peer.
        """
        import os
        if not os.path.isdir(self.summary_dir):
            return
        for filename in sorted(os.listdir(self.summary_dir)):
            if not filename.endswith(".summary"):
                continue
            sender = urllib.parse.unquote(filename[:-len(".summary")])
            try:
                with open(f"{self.summary_dir}/{filename}", "rb") as handle:
                    summary = self._decode_summary(handle.read())
            except (OSError, WireFormatError):
                self.summaries_rejected += 1
                continue
            self.peer_summaries[sender] = summary
            self.summaries_recovered.append(sender)

    def publish(self) -> dict:
        """Broadcast the current summary to every peer (accounted).

        Each peer receives a checksummed frame over a reliable channel.
        Undeliverable peers keep their last good summary and accrue
        staleness.  Returns ``{"delivered": ..., "failed": ...}`` counts.
        """
        summary = self.build_summary()
        if self.spectral:
            wire = dump_sbf(summary)
        else:
            wire = dump_bloom(summary)
        delivered = failed = 0
        for peer in self.peers:
            channel = self._channel_to(peer)
            try:
                frame = channel.send("summary", wire,
                                     validator=peer._decode_summary)
            except DeliveryFailed:
                self.publish_failures += 1
                peer.staleness[self.name] = \
                    peer.staleness.get(self.name, 0) + 1
                failed += 1
                continue
            if peer.receive_summary(self.name, frame):
                delivered += 1
            else:
                failed += 1
        return {"delivered": delivered, "failed": failed}

    def receive_summary(self, sender: str, frame: bytes) -> bool:
        """Install a peer's summary frame after decoding and auditing it.

        A frame that fails the audit is rejected — the proxy keeps routing
        from the sender's last good summary (graceful degradation) and the
        rejection is counted; corruption is never silently accepted.
        """
        try:
            summary = self._decode_summary(frame)
        except WireFormatError:
            self.summaries_rejected += 1
            self.staleness[sender] = self.staleness.get(sender, 0) + 1
            return False
        self.peer_summaries[sender] = summary
        self.staleness[sender] = 0
        if self.summary_dir is not None:
            self._persist_summary(sender, bytes(frame))
        return True

    def channel_stats(self) -> dict[str, object]:
        """Per-peer :class:`~repro.db.transport.ChannelStats` snapshots."""
        return {name: channel.stats
                for name, channel in self._channels.items()}

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def lookup(self, obj: Hashable) -> tuple[str, object] | None:
        """Resolve *obj*: local hit, else consult peer summaries.

        Returns ``(source_name, obj)`` if found anywhere, None on a global
        miss (the origin server would be contacted).  Forwards a probe to
        each peer whose summary claims the object, most-promising first
        (by claimed reference count, in spectral mode).  Summaries may be
        stale (evictions or failed publishes since the last good frame);
        as in [FCAB98] that costs a wasted forward or a missed remote hit,
        never an error.
        """
        if obj in self.cache:
            return (self.name, obj)
        candidates = []
        for peer in self.peers:
            summary = self.peer_summaries.get(peer.name)
            if summary is None:
                continue
            if self.spectral:
                claim = summary.query(obj)
                if claim > 0:
                    candidates.append((claim, peer))
            elif obj in summary:
                candidates.append((1, peer))
        candidates.sort(key=lambda pair: -pair[0])
        for _claim, peer in candidates:
            self.forwards += 1
            self.network.send(self.name, peer.name, "probe", obj, 64)
            if peer.has_local(obj):
                self.remote_hits += 1
                self.network.send(peer.name, self.name, "object", obj,
                                  8 * 1024)  # model object payload
                return (peer.name, obj)
            self.wasted_forwards += 1
        return None


def build_mesh(names: list[str], *, m: int = 4096, k: int = 4,
               seed: int = 0, spectral: bool = False,
               network: Network | None = None,
               max_retries: int = 4,
               summary_root: str | None = None) -> list[Proxy]:
    """A fully-connected proxy mesh (every node peers with every other).

    With *summary_root*, each proxy persists peer summaries under its own
    subdirectory, so a rebuilt mesh warm-starts from the last good
    summaries.
    """
    network = network if network is not None else Network()
    proxies = [Proxy(name, network, m=m, k=k, seed=seed, spectral=spectral,
                     max_retries=max_retries,
                     summary_dir=(None if summary_root is None else
                                  f"{summary_root}/"
                                  f"{urllib.parse.quote(name, safe='')}"))
               for name in names]
    for proxy in proxies:
        proxy.peers = [p for p in proxies if p is not proxy]
    return proxies
