"""Summary Cache [FCAB98] over Bloom/Spectral filters (paper §1.1.1).

"Bloom Filters are proposed to be used within a hierarchy of proxy servers
to maintain a summary of the data stored in the [cache] of each proxy.
... the Bloom Filters are exchanged between nodes, creating an efficient
method of representing the full picture of the items stored in every proxy
among all proxies."

This module builds that protocol on our substrate:

- each :class:`Proxy` holds a local cache and periodically publishes a
  filter summary of its contents to its peers (traffic accounted through
  :class:`repro.db.site.Network`);
- a miss at one proxy consults the peers' summaries and forwards the
  request only to proxies whose summary claims the object — false
  positives cost a wasted forward, false negatives (from stale summaries)
  cost a missed inter-cache hit, exactly the trade-offs of the paper;
- with ``spectral=True`` the summaries are SBFs, upgrading the protocol:
  peers can pick the replica with the *highest reference count* (a
  popularity-aware routing decision a plain Bloom filter cannot support).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import dump_bloom, dump_sbf
from repro.db.site import Network
from repro.filters.bloom import BloomFilter


class Proxy:
    """One cache node participating in the summary-exchange protocol.

    Args:
        name: node identifier.
        network: shared traffic-accounting channel.
        m, k: summary filter parameters.
        spectral: publish SBF summaries (with reference counts) instead of
            plain Bloom filters.
    """

    def __init__(self, name: str, network: Network, *, m: int = 4096,
                 k: int = 4, seed: int = 0, spectral: bool = False):
        self.name = name
        self.network = network
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)
        self.spectral = bool(spectral)
        self.cache: dict[Hashable, int] = {}   # object -> reference count
        self.peers: list["Proxy"] = []
        # Last summary *received* from each peer (name -> filter).
        self.peer_summaries: dict[str, object] = {}
        # Diagnostics.
        self.forwards = 0
        self.wasted_forwards = 0
        self.remote_hits = 0

    # ------------------------------------------------------------------
    # local cache behaviour
    # ------------------------------------------------------------------
    def store(self, obj: Hashable) -> None:
        """Cache *obj* locally (or bump its reference count)."""
        self.cache[obj] = self.cache.get(obj, 0) + 1

    def evict(self, obj: Hashable) -> None:
        """Drop *obj* from the local cache (summaries go stale until the
        next publish — the staleness [FCAB98] tolerates by design)."""
        self.cache.pop(obj, None)

    def has_local(self, obj: Hashable) -> bool:
        return obj in self.cache

    # ------------------------------------------------------------------
    # the summary protocol
    # ------------------------------------------------------------------
    def build_summary(self):
        """Fresh filter over the current cache contents."""
        if self.spectral:
            summary = SpectralBloomFilter(self.m, self.k, method="ms",
                                          seed=self.seed)
            for obj, refs in self.cache.items():
                summary.insert(obj, refs)
        else:
            summary = BloomFilter(self.m, self.k, seed=self.seed)
            for obj in self.cache:
                summary.add(obj)
        return summary

    def publish(self) -> None:
        """Broadcast the current summary to every peer (accounted)."""
        summary = self.build_summary()
        if self.spectral:
            wire = dump_sbf(summary)
        else:
            wire = dump_bloom(summary)
        for peer in self.peers:
            self.network.send(self.name, peer.name, "summary", summary,
                              len(wire) * 8)
            peer.peer_summaries[self.name] = summary

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def lookup(self, obj: Hashable) -> tuple[str, object] | None:
        """Resolve *obj*: local hit, else consult peer summaries.

        Returns ``(source_name, obj)`` if found anywhere, None on a global
        miss (the origin server would be contacted).  Forwards a probe to
        each peer whose summary claims the object, most-promising first
        (by claimed reference count, in spectral mode).
        """
        if obj in self.cache:
            return (self.name, obj)
        candidates = []
        for peer in self.peers:
            summary = self.peer_summaries.get(peer.name)
            if summary is None:
                continue
            if self.spectral:
                claim = summary.query(obj)
                if claim > 0:
                    candidates.append((claim, peer))
            elif obj in summary:
                candidates.append((1, peer))
        candidates.sort(key=lambda pair: -pair[0])
        for _claim, peer in candidates:
            self.forwards += 1
            self.network.send(self.name, peer.name, "probe", obj, 64)
            if peer.has_local(obj):
                self.remote_hits += 1
                self.network.send(peer.name, self.name, "object", obj,
                                  8 * 1024)  # model object payload
                return (peer.name, obj)
            self.wasted_forwards += 1
        return None


def build_mesh(names: list[str], *, m: int = 4096, k: int = 4,
               seed: int = 0, spectral: bool = False,
               network: Network | None = None) -> list[Proxy]:
    """A fully-connected proxy mesh (every node peers with every other)."""
    network = network if network is not None else Network()
    proxies = [Proxy(name, network, m=m, k=k, seed=seed, spectral=spectral)
               for name in names]
    for proxy in proxies:
        proxy.peers = [p for p in proxies if p is not proxy]
    return proxies
