"""Sliding-window multiset tracking over the SBF (paper §2.2, §6.2).

"In sliding windows scenarios, in cases data within the current window is
available (as is the case in data warehouse applications), the sliding
window can be maintained simply by performing deletions of the out-of-date
data."

:class:`SlidingWindowSBF` keeps the window buffer itself (the assumption
that expiring data is available) and pushes every expiry through
``sbf.delete``.  Figure 9 runs exactly this wrapper with MS/RM/MI methods;
MI's false negatives under deletion make it "practically unusable" here.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.sbf import SpectralBloomFilter


class SlidingWindowSBF:
    """An SBF over the most recent *window* stream items.

    Args:
        window: number of most-recent items tracked.
        m, k: SBF parameters.
        method: SBF method (use "ms" or "rm"; "mi" is allowed so the
            Figure 9 failure mode can be reproduced, but it will produce
            false negatives).
    """

    def __init__(self, window: int, m: int, k: int = 5, *,
                 method: str = "rm", seed: int = 0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        self._buffer: deque = deque()

    # ------------------------------------------------------------------
    def push(self, item: Hashable) -> Hashable | None:
        """Insert *item*; evict and return the expiring item, if any."""
        evicted = None
        if len(self._buffer) == self.window:
            evicted = self._buffer.popleft()
            self.sbf.delete(evicted)
        self._buffer.append(item)
        self.sbf.insert(item)
        return evicted

    def extend(self, stream) -> None:
        """Push a whole stream through the window."""
        for item in stream:
            self.push(item)

    # ------------------------------------------------------------------
    def query(self, item: Hashable) -> int:
        """Estimated frequency of *item* within the current window."""
        return self.sbf.query(item)

    def contains(self, item: Hashable, threshold: int = 1) -> bool:
        """Windowed spectral membership."""
        return self.sbf.contains(item, threshold)

    def true_count(self, item: Hashable) -> int:
        """Exact in-window frequency (from the buffer; for verification)."""
        return sum(1 for x in self._buffer if x == item)

    def __len__(self) -> int:
        """Current number of items in the window (<= window size)."""
        return len(self._buffer)

    @property
    def is_full(self) -> bool:
        """True once the window has reached capacity."""
        return len(self._buffer) == self.window

    def storage_bits(self) -> int:
        """Model size of the sketch (the buffer is the caller's data)."""
        return self.sbf.storage_bits()
