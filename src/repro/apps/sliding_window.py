"""Sliding-window multiset tracking over the SBF (paper §2.2, §6.2).

"In sliding windows scenarios, in cases data within the current window is
available (as is the case in data warehouse applications), the sliding
window can be maintained simply by performing deletions of the out-of-date
data."

:class:`SlidingWindowSBF` keeps the window buffer itself (the assumption
that expiring data is available) and pushes every expiry through
``sbf.delete``.  Figure 9 runs exactly this wrapper with MS/RM/MI methods;
MI's false negatives under deletion make it "practically unusable" here.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import dump_sbf, load_sbf, open_frame, seal_frame

#: magic of the sliding-window checkpoint frame
_MAGIC_WINDOW = b"RSW1"
#: checkpoint filename inside a durability directory
CHECKPOINT_NAME = "window.ckpt"


class SlidingWindowSBF:
    """An SBF over the most recent *window* stream items.

    Args:
        window: number of most-recent items tracked.
        m, k: SBF parameters.
        method: SBF method (use "ms" or "rm"; "mi" is allowed so the
            Figure 9 failure mode can be reproduced, but it will produce
            false negatives).
    """

    def __init__(self, window: int, m: int, k: int = 5, *,
                 method: str = "rm", seed: int = 0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        self._buffer: deque = deque()

    # ------------------------------------------------------------------
    def push(self, item: Hashable) -> Hashable | None:
        """Insert *item*; evict and return the expiring item, if any."""
        evicted = None
        if len(self._buffer) == self.window:
            evicted = self._buffer.popleft()
            self.sbf.delete(evicted)
        self._buffer.append(item)
        self.sbf.insert(item)
        return evicted

    def extend(self, stream) -> None:
        """Push a whole stream through the window."""
        for item in stream:
            self.push(item)

    # ------------------------------------------------------------------
    def query(self, item: Hashable) -> int:
        """Estimated frequency of *item* within the current window."""
        return self.sbf.query(item)

    def contains(self, item: Hashable, threshold: int = 1) -> bool:
        """Windowed spectral membership."""
        return self.sbf.contains(item, threshold)

    def true_count(self, item: Hashable) -> int:
        """Exact in-window frequency (from the buffer; for verification)."""
        return sum(1 for x in self._buffer if x == item)

    def __len__(self) -> int:
        """Current number of items in the window (<= window size)."""
        return len(self._buffer)

    @property
    def is_full(self) -> bool:
        """True once the window has reached capacity."""
        return len(self._buffer) == self.window

    def storage_bits(self) -> int:
        """Model size of the sketch (the buffer is the caller's data)."""
        return self.sbf.storage_bits()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str, *, io=None) -> str:
        """Atomically persist the window (sketch + buffer) to *directory*.

        The sketch and the buffer must stay mutually consistent (every
        buffered item is represented in the sketch exactly once), so both
        travel in a single checksummed frame written via the persist
        layer's write-temp → fsync → rename dance: a crash mid-checkpoint
        leaves the previous checkpoint untouched.  Buffer items must be
        JSON scalars, the persistence layer's key discipline — enforced
        here with the WAL's own whitelist, because a non-scalar item
        (e.g. a tuple) would serialize to a JSON list, restore without
        error, and only blow up later when the window evicts it.

        Returns the checkpoint path.

        Raises:
            TypeError: if any buffered item is not a JSON scalar.
        """
        from repro.persist.snapshot import atomic_write_bytes
        from repro.persist.wal import SCALAR_KEY_TYPES
        for item in self._buffer:
            if not isinstance(item, SCALAR_KEY_TYPES):
                raise TypeError(
                    f"window checkpoint items must be JSON scalars "
                    f"(str/int/float/bool/None), got "
                    f"{type(item).__name__}: {item!r}")
        meta = {
            "window": self.window,
            "method": self.sbf.method.name,
            "buffer": list(self._buffer),
        }
        frame = seal_frame(_MAGIC_WINDOW, meta, dump_sbf(self.sbf))
        path = f"{directory}/{CHECKPOINT_NAME}"
        atomic_write_bytes(path, frame, io=io)
        return path

    @classmethod
    def restore(cls, directory: str, *, io=None) -> "SlidingWindowSBF":
        """Rebuild a window persisted by :meth:`checkpoint`.

        Raises:
            WireFormatError: if the checkpoint is torn or corrupt.
            ValueError: if the sketch and buffer are inconsistent (the
                restored state is audited before it is served from).
        """
        from repro.persist.snapshot import read_frame_file
        path = f"{directory}/{CHECKPOINT_NAME}"
        meta, payload = read_frame_file(path, _MAGIC_WINDOW, io=io)
        window = meta.get("window")
        buffer = meta.get("buffer")
        if not isinstance(window, int) or window < 1 \
                or not isinstance(buffer, list):
            raise ValueError(f"malformed window checkpoint header: {meta!r}")
        if len(buffer) > window:
            raise ValueError(
                f"checkpoint buffer holds {len(buffer)} items but the "
                f"window is {window}")
        sbf = load_sbf(payload)
        issues = sbf.check_integrity()
        if issues:
            raise ValueError(
                "restored window sketch failed its integrity audit: "
                + "; ".join(issues))
        if sbf.total_count != len(buffer):
            raise ValueError(
                f"checkpoint sketch represents {sbf.total_count} items but "
                f"the buffer holds {len(buffer)}")
        restored = cls.__new__(cls)
        restored.window = window
        restored.sbf = sbf
        restored._buffer = deque(buffer)
        return restored
