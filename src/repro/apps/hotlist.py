"""Hot-list tracking of popular queries [Bro02, GM98] (paper §1.1.2).

"Broder et al used Bloom Filters in conjunction with hot list techniques
... to efficiently identify popular search queries in the Alta-Vista
search engine."  The pattern: a compact frequency sketch over the whole
stream feeds a small exact top-``capacity`` list, so memory stays O(hot
items) while the sketch absorbs the long tail.

:class:`HotList` implements that combination over the SBF: every arrival
is counted in the sketch; when an item's estimated count reaches the
current admission bar it enters (or re-ranks within) the exact list.
Because SBF errors are one-sided, the hot list may briefly admit an
over-estimated item, but it can never *miss* one — the same no-false-
negative contract as the iceberg queries of §5.2.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.sbf import SpectralBloomFilter


class HotList:
    """Streaming top-k tracker: SBF sketch + exact hot list.

    Args:
        capacity: number of hot items kept exactly.
        m, k: sketch parameters.
        method: SBF method ("mi" default — the stream is insert-only).
    """

    def __init__(self, capacity: int, m: int, k: int = 5, *,
                 method: str = "mi", seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.sketch = SpectralBloomFilter(m, k, method=method, seed=seed)
        # The exact list: item -> sketch estimate at last touch.
        self._hot: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    def _admission_bar(self) -> int:
        """Estimated count an item must reach to enter a full list."""
        if len(self._hot) < self.capacity:
            return 1
        return min(self._hot.values())

    def offer(self, item: Hashable, count: int = 1) -> None:
        """Feed one stream arrival."""
        self.sketch.insert(item, count)
        estimate = self.sketch.query(item)
        if item in self._hot:
            self._hot[item] = estimate
            return
        bar = self._admission_bar()
        if estimate >= bar:
            self._hot[item] = estimate
            if len(self._hot) > self.capacity:
                coldest = min(self._hot, key=self._hot.get)
                del self._hot[coldest]

    def consume(self, stream: Iterable) -> None:
        """Feed a whole stream."""
        for item in stream:
            self.offer(item)

    # ------------------------------------------------------------------
    def top(self, n: int | None = None) -> list[tuple[Hashable, int]]:
        """The hottest items as ``(item, estimated count)``, descending."""
        ranked = sorted(self._hot.items(), key=lambda kv: -kv[1])
        return ranked if n is None else ranked[:n]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._hot

    def __len__(self) -> int:
        return len(self._hot)

    def estimate(self, item: Hashable) -> int:
        """Sketch estimate for any item (hot or not)."""
        return self.sketch.query(item)

    def storage_bits(self) -> int:
        """Model size: sketch bits plus 2 words per hot entry."""
        return self.sketch.storage_bits() + 128 * len(self._hot)
