"""Bloomjoins and Spectral Bloomjoins over distributed sites (paper §5.3).

Classic Bloomjoin [ML86] between R1 (site 1) and R2 (site 2) on attribute a:

1. site 1 sends a Bloom filter over ``R1.a`` to site 2;
2. site 2 filters its tuples through the BF and ships the survivors back;
3. site 1 completes the join locally.

The Spectral Bloomjoin replaces the Bloom filter with an SBF; because the
SBF carries *multiplicities*, SBF multiplication answers grouped/aggregated
joins after a single synopsis transmission, eliminating the tuple
round-trip entirely:

    SELECT R.a, count(*) FROM R, S WHERE R.a = S.a GROUP BY R.a
    [HAVING count(*) >= T]

Every function returns both the answer and the traffic ledger so the
benchmarks can compare bytes and rounds.
"""

from __future__ import annotations

from repro.core.sbf import SpectralBloomFilter
from repro.db.relation import Relation
from repro.db.site import Site
from repro.filters.bloom import BloomFilter


def bloomjoin(site1: Site, r1_name: str, site2: Site, r2_name: str,
              attribute: str, *, m: int = 4096, k: int = 5,
              seed: int = 0) -> Relation:
    """Classic two-round Bloomjoin [ML86]; returns the joined relation.

    Traffic: one ``m``-bit filter site1 -> site2, then the filtered tuples
    site2 -> site1 (charged per attribute value).
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    bf = BloomFilter(m, k, seed=seed)
    for value in r1.scan(attribute):
        bf.add(value)
    # Round 1: the synopsis travels to site 2.
    site1.send(site2, "bloom-filter", bf, bf.storage_bits())
    # Site 2 filters its tuples; survivors travel back.
    pos = r2.column_position(attribute)
    survivors = [row for row in r2 if row[pos] in bf]
    site2.send_tuples(site1, "filtered-tuples", survivors)
    # Site 1 completes the join against the shipped survivors.
    shipped = Relation(r2.name, r2.columns, survivors)
    return r1.join(shipped, attribute)


def _build_sbf(relation: Relation, attribute: str, m: int, k: int,
               seed: int, method: str) -> SpectralBloomFilter:
    sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
    for value in relation.scan(attribute):
        sbf.insert(value)
    return sbf


def spectral_bloomjoin_count(site1: Site, r1_name: str, site2: Site,
                             r2_name: str, attribute: str, *,
                             m: int = 4096, k: int = 5, seed: int = 0,
                             method: str = "ms") -> dict:
    """One-round grouped join count via SBF multiplication (§5.3).

    Answers ``SELECT R.a, count(*) ... GROUP BY R.a`` with R at *site1*
    as the primary site: S's SBF travels to R's site, is multiplied with
    R's local SBF, and R is scanned against the product.  Only one synopsis
    crosses the network; no tuples move.

    Returns ``{value: estimated join count}`` — estimates are one-sided
    (>= true) for the MS method.
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    sbf1 = _build_sbf(r1, attribute, m, k, seed, method)
    sbf2 = _build_sbf(r2, attribute, m, k, seed, method)
    # One round: S's synopsis to the primary site.
    site2.send(site1, "sbf", sbf2, sbf2.storage_bits())
    product = sbf1 * sbf2
    result: dict = {}
    for value in r1.distinct(attribute):
        estimate = product.query(value)
        if estimate > 0:
            result[value] = estimate
    return result


def spectral_bloomjoin_threshold(site1: Site, r1_name: str, site2: Site,
                                 r2_name: str, attribute: str,
                                 threshold: int, *, m: int = 4096,
                                 k: int = 5, seed: int = 0) -> dict:
    """Grouped join with HAVING count(*) >= T in one round (§5.3).

    "Since the errors are one-sided, they can be eliminated by retrieving
    the accurate frequencies for the items in the result set" — callers
    holding the base data can verify the (few) reported items.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    counts = spectral_bloomjoin_count(site1, r1_name, site2, r2_name,
                                      attribute, m=m, k=k, seed=seed)
    return {value: est for value, est in counts.items() if est >= threshold}


def exact_grouped_join_count(r1: Relation, r2: Relation,
                             attribute: str) -> dict:
    """Ground truth for the grouped join count (for error measurement)."""
    left = r1.group_by_count(attribute)
    right = r2.group_by_count(attribute)
    return {value: left[value] * right[value]
            for value in left.keys() & right.keys()}
