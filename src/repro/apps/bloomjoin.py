"""Bloomjoins and Spectral Bloomjoins over distributed sites (paper §5.3).

Classic Bloomjoin [ML86] between R1 (site 1) and R2 (site 2) on attribute a:

1. site 1 sends a Bloom filter over ``R1.a`` to site 2;
2. site 2 filters its tuples through the BF and ships the survivors back;
3. site 1 completes the join locally.

The Spectral Bloomjoin replaces the Bloom filter with an SBF; because the
SBF carries *multiplicities*, SBF multiplication answers grouped/aggregated
joins after a single synopsis transmission, eliminating the tuple
round-trip entirely:

    SELECT R.a, count(*) FROM R, S WHERE R.a = S.a GROUP BY R.a
    [HAVING count(*) >= T]

Every function returns both the answer and the traffic ledger so the
benchmarks can compare bytes and rounds.
"""

from __future__ import annotations

import json
import zlib

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    WireFormatError,
    dump_bloom,
    dump_sbf,
    load_bloom,
    load_sbf,
)
from repro.db.relation import Relation
from repro.db.site import Site
from repro.db.transport import DeliveryFailed, ReliableChannel
from repro.filters.bloom import BloomFilter


def bloomjoin(site1: Site, r1_name: str, site2: Site, r2_name: str,
              attribute: str, *, m: int = 4096, k: int = 5,
              seed: int = 0) -> Relation:
    """Classic two-round Bloomjoin [ML86]; returns the joined relation.

    Traffic: one ``m``-bit filter site1 -> site2, then the filtered tuples
    site2 -> site1 (charged per attribute value).
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    bf = BloomFilter(m, k, seed=seed)
    for value in r1.scan(attribute):
        bf.add(value)
    # Round 1: the synopsis travels to site 2.
    site1.send(site2, "bloom-filter", bf, bf.storage_bits())
    # Site 2 filters its tuples; survivors travel back.
    pos = r2.column_position(attribute)
    survivors = [row for row in r2 if row[pos] in bf]
    site2.send_tuples(site1, "filtered-tuples", survivors)
    # Site 1 completes the join against the shipped survivors.
    shipped = Relation(r2.name, r2.columns, survivors)
    return r1.join(shipped, attribute)


def _build_sbf(relation: Relation, attribute: str, m: int, k: int,
               seed: int, method: str) -> SpectralBloomFilter:
    sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
    for value in relation.scan(attribute):
        sbf.insert(value)
    return sbf


def spectral_bloomjoin_count(site1: Site, r1_name: str, site2: Site,
                             r2_name: str, attribute: str, *,
                             m: int = 4096, k: int = 5, seed: int = 0,
                             method: str = "ms") -> dict:
    """One-round grouped join count via SBF multiplication (§5.3).

    Answers ``SELECT R.a, count(*) ... GROUP BY R.a`` with R at *site1*
    as the primary site: S's SBF travels to R's site, is multiplied with
    R's local SBF, and R is scanned against the product.  Only one synopsis
    crosses the network; no tuples move.

    Returns ``{value: estimated join count}`` — estimates are one-sided
    (>= true) for the MS method.
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    sbf1 = _build_sbf(r1, attribute, m, k, seed, method)
    sbf2 = _build_sbf(r2, attribute, m, k, seed, method)
    # One round: S's synopsis to the primary site.
    site2.send(site1, "sbf", sbf2, sbf2.storage_bits())
    product = sbf1 * sbf2
    result: dict = {}
    for value in r1.distinct(attribute):
        estimate = product.query(value)
        if estimate > 0:
            result[value] = estimate
    return result


def spectral_bloomjoin_threshold(site1: Site, r1_name: str, site2: Site,
                                 r2_name: str, attribute: str,
                                 threshold: int, *, m: int = 4096,
                                 k: int = 5, seed: int = 0) -> dict:
    """Grouped join with HAVING count(*) >= T in one round (§5.3).

    "Since the errors are one-sided, they can be eliminated by retrieving
    the accurate frequencies for the items in the result set" — callers
    holding the base data can verify the (few) reported items.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    counts = spectral_bloomjoin_count(site1, r1_name, site2, r2_name,
                                      attribute, m=m, k=k, seed=seed)
    return {value: est for value, est in counts.items() if est >= threshold}


def exact_grouped_join_count(r1: Relation, r2: Relation,
                             attribute: str) -> dict:
    """Ground truth for the grouped join count (for error measurement)."""
    left = r1.group_by_count(attribute)
    right = r2.group_by_count(attribute)
    return {value: left[value] * right[value]
            for value in left.keys() & right.keys()}


# ----------------------------------------------------------------------
# Fault-tolerant variants: checksummed frames, retries, graceful fallback
# ----------------------------------------------------------------------
def _tuples_to_frame(rows: list[tuple]) -> bytes:
    """Frame rows for the wire (JSON-scalar attributes only)."""
    return json.dumps([list(row) for row in rows]).encode("utf-8")


def _frame_to_tuples(frame: bytes) -> list[tuple]:
    try:
        rows = json.loads(frame.decode("utf-8"))
        return [tuple(row) for row in rows]
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(f"corrupt tuple frame: {exc}") from None


def _channel_seed(seed: int, sender: str, recipient: str) -> int:
    """Deterministic per-channel jitter seed for reproducible chaos runs."""
    return seed ^ zlib.crc32(f"{sender}->{recipient}".encode("utf-8"))


def _validated_sbf(payload: bytes) -> SpectralBloomFilter:
    """Decode an SBF frame and audit it before it is trusted (§5.3)."""
    sbf = load_sbf(payload)
    issues = sbf.check_integrity()
    if issues:
        raise WireFormatError(
            "received filter failed integrity audit: " + "; ".join(issues))
    return sbf


def resilient_bloomjoin(site1: Site, r1_name: str, site2: Site,
                        r2_name: str, attribute: str, *, m: int = 4096,
                        k: int = 5, seed: int = 0,
                        channel_options: dict | None = None,
                        ) -> tuple[Relation, dict]:
    """Bloomjoin over an unreliable network; returns ``(join, report)``.

    The synopsis travels as a checksummed :func:`dump_bloom` frame through
    a :class:`ReliableChannel` (timeouts, capped exponential backoff,
    duplicate suppression).  If the synopsis transfer exhausts its retry
    budget the protocol *degrades gracefully*: site 2 ships its entire
    relation instead (label ``"fallback-tuples"``), so the join is still
    exact — the extra traffic shows up in ``Network.breakdown()``.

    The report carries ``fallback`` plus the per-leg
    :class:`~repro.db.transport.ChannelStats` (``synopsis_channel`` /
    ``tuple_channel``).
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    options = dict(channel_options or {})
    network = site1.network
    forward = ReliableChannel(
        network, site1.name, site2.name,
        seed=_channel_seed(seed, site1.name, site2.name), **options)
    backward = ReliableChannel(
        network, site2.name, site1.name,
        seed=_channel_seed(seed, site2.name, site1.name), **options)
    report = {"fallback": False,
              "synopsis_channel": forward.stats,
              "tuple_channel": backward.stats}
    pos = r2.column_position(attribute)
    try:
        bf = BloomFilter(m, k, seed=seed)
        for value in r1.scan(attribute):
            bf.add(value)
        frame = forward.send("bloom-filter", dump_bloom(bf),
                             validator=load_bloom)
        received = load_bloom(frame)
        survivors = [row for row in r2 if row[pos] in received]
        label = "filtered-tuples"
    except DeliveryFailed:
        # Degraded mode: no synopsis made it across, so every tuple of R2
        # travels — correct answer, more traffic.
        report["fallback"] = True
        survivors = list(r2)
        label = "fallback-tuples"
    shipped_frame = backward.send(label, _tuples_to_frame(survivors),
                                  validator=_frame_to_tuples)
    shipped = Relation(r2.name, r2.columns, _frame_to_tuples(shipped_frame))
    return r1.join(shipped, attribute), report


def resilient_spectral_bloomjoin_count(site1: Site, r1_name: str,
                                       site2: Site, r2_name: str,
                                       attribute: str, *, m: int = 4096,
                                       k: int = 5, seed: int = 0,
                                       method: str = "ms",
                                       channel_options: dict | None = None,
                                       ) -> tuple[dict, dict]:
    """Spectral Bloomjoin count over an unreliable network.

    S's SBF travels as a checksummed :func:`dump_sbf` frame; the receiver
    audits it with :meth:`SpectralBloomFilter.check_integrity` before
    multiplying.  If the synopsis transfer exhausts its retry budget, the
    protocol falls back to shipping S's join-attribute values outright
    (label ``"fallback-tuples"``) and computes the grouped counts exactly
    at the primary site.

    Returns ``({value: join count}, report)`` with the same report shape
    as :func:`resilient_bloomjoin`.
    """
    r1 = site1.relation(r1_name)
    r2 = site2.relation(r2_name)
    options = dict(channel_options or {})
    network = site1.network
    channel = ReliableChannel(
        network, site2.name, site1.name,
        seed=_channel_seed(seed, site2.name, site1.name), **options)
    report = {"fallback": False, "synopsis_channel": channel.stats}
    try:
        sbf2 = _build_sbf(r2, attribute, m, k, seed, method)
        frame = channel.send("sbf", dump_sbf(sbf2),
                             validator=_validated_sbf)
        shipped = load_sbf(frame)
        sbf1 = _build_sbf(r1, attribute, m, k, seed, method)
        product = sbf1 * shipped
        result: dict = {}
        for value in r1.distinct(attribute):
            estimate = product.query(value)
            if estimate > 0:
                result[value] = estimate
        return result, report
    except DeliveryFailed:
        report["fallback"] = True
        rows = [(value,) for value in r2.scan(attribute)]
        frame = channel.send("fallback-tuples", _tuples_to_frame(rows),
                             validator=_frame_to_tuples)
        right: dict = {}
        for (value,) in _frame_to_tuples(frame):
            right[value] = right.get(value, 0) + 1
        left = r1.group_by_count(attribute)
        return ({value: left[value] * right[value]
                 for value in left.keys() & right.keys()}, report)
