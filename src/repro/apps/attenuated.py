"""Attenuated Bloom Filters for probabilistic routing [RK02] (§1.1.1).

"This structure is basically an array of simple Bloom Filters in which
component filters are labeled with their level in the array.  Each filter
summarizes the items that can be reached by performing a number of hops
from the originating node that is equal to the level of that filter."

We implement the structure over a ``networkx`` graph of peer nodes, each
holding a set of documents:

- :class:`AttenuatedFilter` — the per-edge array of ``depth`` Bloom
  filters (level d = documents reachable in exactly/at most d more hops
  through that neighbour);
- :func:`build_attenuated_tables` — flood the replica information through
  the graph (BFS per node, faithful to the aggregation semantics);
- :func:`route` — the [RK02] lookup: at each node, follow the edge whose
  filter array claims the document at the *shallowest* level; false
  positives cause bounded detours, attenuation prefers nearby replicas.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.filters.bloom import BloomFilter


class AttenuatedFilter:
    """An array of ``depth`` Bloom filters, one per hop distance.

    ``levels[d]`` summarises the documents whose nearest replica through
    this edge is exactly ``d + 1`` hops away.
    """

    def __init__(self, depth: int, m: int, k: int, seed: int = 0):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.levels = [BloomFilter(m, k, seed=seed + level)
                       for level in range(depth)]

    def add(self, doc: Hashable, distance: int) -> None:
        """Record a replica of *doc* at *distance* hops (1-based)."""
        if 1 <= distance <= self.depth:
            self.levels[distance - 1].add(doc)

    def claimed_distance(self, doc: Hashable) -> int | None:
        """Shallowest level claiming *doc* (1-based), or None."""
        for level, bf in enumerate(self.levels):
            if doc in bf:
                return level + 1
        return None

    def storage_bits(self) -> int:
        """Total bits across the level filters."""
        return sum(bf.storage_bits() for bf in self.levels)


def build_attenuated_tables(graph: nx.Graph, documents: dict,
                            *, depth: int = 3, m: int = 2048, k: int = 4,
                            seed: int = 0) -> dict:
    """Per-node routing tables: ``tables[node][neighbour]`` is the
    :class:`AttenuatedFilter` describing what lies through that edge.

    Args:
        graph: the overlay network.
        documents: ``{node: iterable of documents stored there}``.
        depth: attenuation depth (hops summarised).
    """
    tables: dict = {
        node: {
            neighbour: AttenuatedFilter(depth, m, k, seed=seed)
            for neighbour in graph.neighbors(node)
        }
        for node in graph.nodes
    }
    # For every replica, walk the BFS tree outwards and register it in the
    # filters of every (node, first-hop) pair within `depth` hops.
    for holder, docs in documents.items():
        docs = list(docs)
        if not docs:
            continue
        distances = nx.single_source_shortest_path_length(graph, holder,
                                                          cutoff=depth)
        for node, dist in distances.items():
            if node == holder:
                continue
            # The first hop from `node` towards `holder` is any neighbour
            # one step closer to the holder.
            for neighbour in graph.neighbors(node):
                neighbour_dist = distances.get(neighbour)
                if neighbour_dist is not None and neighbour_dist == dist - 1:
                    for doc in docs:
                        tables[node][neighbour].add(doc, dist)
    return tables


def route(graph: nx.Graph, tables: dict, documents: dict, start,
          doc: Hashable, *, max_hops: int = 12) -> tuple[bool, list]:
    """Route a request for *doc* from *start* using the attenuated tables.

    Greedy per-hop choice: follow the neighbour whose filter array claims
    the document at the shallowest attenuation level (ties broken by node
    order); gives up after *max_hops* or when no edge claims the document.

    Returns ``(found, path)`` where path includes the start node.
    """
    path = [start]
    node = start
    visited = {start}
    for _hop in range(max_hops):
        if doc in set(documents.get(node, ())):
            return True, path
        best = None
        for neighbour, filt in tables[node].items():
            if neighbour in visited:
                continue
            claim = filt.claimed_distance(doc)
            if claim is not None and (best is None or claim < best[0]):
                best = (claim, neighbour)
        if best is None:
            return False, path
        node = best[1]
        visited.add(node)
        path.append(node)
    return doc in set(documents.get(node, ())), path
