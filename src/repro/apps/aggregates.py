"""The SBF as an approximate aggregate index (paper §5.1).

"Spectral Bloom Filters hold mostly accurate information over each and
every item of the data set.  Therefore it can approximately answer any
(aggregate) query regarding a given subset of the items" — e.g.::

    SELECT count(a1) FROM R WHERE a1 = v

The :class:`AggregateIndex` wraps an SBF built over one attribute of a
relation and answers COUNT/SUM/AVG/MAX over arbitrary item subsets, "very
much like a histogram where each item has its own bucket".
"""

from __future__ import annotations

from typing import Iterable

from repro.core.sbf import SpectralBloomFilter
from repro.db.relation import Relation


class AggregateIndex:
    """Approximate per-item aggregate index over one relation attribute.

    Args:
        relation: the indexed relation.
        attribute: the column the SBF summarises.
        m, k: SBF parameters (defaults size for the relation's distinct
            count at 1% error).
        method: SBF method; MI is the paper's recommendation when the index
            is append-only, RM when rows are also deleted.
    """

    def __init__(self, relation: Relation, attribute: str, *,
                 m: int | None = None, k: int = 5, method: str = "mi",
                 seed: int = 0):
        self.relation = relation
        self.attribute = attribute
        if m is None:
            from repro.core.params import optimal_m
            n = max(1, len(relation.distinct(attribute)))
            m = optimal_m(n, 0.01)
        self.sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        for value in relation.scan(attribute):
            self.sbf.insert(value)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_row(self, row) -> None:
        """Keep the index in sync with an appended row."""
        self.relation.append(row)
        value = row[self.relation.column_position(self.attribute)]
        self.sbf.insert(value)

    def delete_value(self, value, count: int = 1) -> None:
        """Reflect deletion of rows carrying *value* (RM/MS methods only)."""
        self.sbf.delete(value, count)

    # ------------------------------------------------------------------
    # queries (all approximate with one-sided error for MS/RM)
    # ------------------------------------------------------------------
    def count(self, value) -> int:
        """``SELECT count(*) WHERE attr = value``."""
        return self.sbf.query(value)

    def count_many(self, values: Iterable) -> int:
        """``SELECT count(*) WHERE attr IN (...)``."""
        return sum(self.sbf.query(v) for v in values)

    def sum(self, values: Iterable) -> float:
        """``SELECT sum(attr) WHERE attr IN (...)`` (value * frequency)."""
        return float(sum(v * self.sbf.query(v) for v in values))

    def avg(self, values: Iterable) -> float:
        """``SELECT avg(attr) WHERE attr IN (...)``.

        Raises:
            ZeroDivisionError: if no value in the subset has any mass.
        """
        values = list(values)
        total = self.count_many(values)
        return self.sum(values) / total

    def max_present(self, values: Iterable):
        """Largest value of the subset with a non-zero estimate, or None."""
        present = [v for v in values if self.sbf.query(v) > 0]
        return max(present) if present else None

    def exact_count(self, value) -> int:
        """Ground truth from the relation (for error measurements)."""
        return sum(1 for v in self.relation.scan(self.attribute)
                   if v == value)

    def storage_bits(self) -> int:
        """Model size of the index."""
        return self.sbf.storage_bits()
