"""Ad-hoc iceberg queries over the SBF (paper §5.2).

An iceberg query reports the items whose frequency passes a threshold::

    SELECT t, count(rest) FROM R GROUP BY t HAVING count(rest) >= T

Prior techniques [FSGM+98, MM02, EV02] need ``T`` *before* scanning the
data; the SBF keeps per-item information for the whole multiset, so ``T``
can be chosen — and changed — at query time.  False positives only (items
below T that sneak in because their counters were stepped over by heavy
items); no false negatives, and the optional verification pass removes the
false positives with one extra scan.

:class:`MultiscanIceberg` reproduces the MULTISCAN-SHARED-style cascade:
several small SBFs applied in passes, each pass only rescanning the
survivors of the previous one — the memory-starved regime where the
threshold must be known up front.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.core.sbf import SpectralBloomFilter


class IcebergIndex:
    """A streaming iceberg index with query-time thresholds.

    Args:
        m, k: SBF parameters.
        method: SBF method ("mi" default — iceberg streams are insert-only).
        track_keys: also remember the distinct keys seen (needed to
            enumerate results without re-scanning; costs O(n) keys).  With
            ``track_keys=False`` the index answers membership-style
            ``passes(item, T)`` probes and scan-based queries only.
    """

    def __init__(self, m: int, k: int = 5, *, method: str = "mi",
                 seed: int = 0, track_keys: bool = True):
        self.sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        self._keys: set | None = set() if track_keys else None

    # ------------------------------------------------------------------
    def insert(self, item: Hashable, count: int = 1) -> None:
        """Feed one stream item."""
        self.sbf.insert(item, count)
        if self._keys is not None:
            self._keys.add(item)

    def consume(self, stream: Iterable) -> None:
        """Feed a whole stream."""
        for item in stream:
            self.insert(item)

    # ------------------------------------------------------------------
    def passes(self, item: Hashable, threshold: int) -> bool:
        """Does *item* (appear to) reach *threshold*?  One-sided."""
        return self.sbf.contains(item, threshold)

    def query(self, threshold: int) -> dict:
        """All items whose estimate reaches *threshold* (ad hoc!).

        Requires ``track_keys=True``.  Returns ``{item: estimate}``; the
        result is a superset of the true iceberg (false positives possible,
        no false negatives).
        """
        if self._keys is None:
            raise RuntimeError(
                "query() needs track_keys=True; use scan_query() to drive "
                "the index from a data rescan instead")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        return {item: est for item in self._keys
                if (est := self.sbf.query(item)) >= threshold}

    def scan_query(self, data: Iterable, threshold: int) -> Iterator:
        """§5.2's non-streaming form: scan *data*, emit passing items once.

        "For non-streaming data hashed into an SBF, a single scan of the
        data is performed.  Each item ... is checked within the SBF for its
        frequency, if it exceeds the threshold, the item is reported."
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        reported = set()
        for item in data:
            if item not in reported and self.sbf.contains(item, threshold):
                reported.add(item)
                yield item

    def verified_query(self, threshold: int,
                       true_counts: dict) -> dict:
        """Iceberg with the §5.2 verification rescan: exact result.

        *true_counts* plays the role of the available base data; the rescan
        removes every false positive, so the output is the exact iceberg.
        """
        candidates = self.query(threshold)
        return {item: true_counts[item] for item in candidates
                if true_counts.get(item, 0) >= threshold}

    def storage_bits(self) -> int:
        """Model size of the sketch (excludes the optional key set)."""
        return self.sbf.storage_bits()


class MultiscanIceberg:
    """Progressive multi-pass filtering (the MULTISCAN-SHARED analogue).

    Pass ``j`` builds a small "lossy" SBF over only the items that survived
    pass ``j-1``; an item is reported iff it hashes to heavy cells in every
    pass.  The threshold must be fixed up front — exactly the restriction
    the ad-hoc :class:`IcebergIndex` removes — but memory can be a tiny
    fraction of the distinct count (§5.2 suggests ~1% of n per stage).

    Args:
        stage_sizes: counter-array size of each pass's SBF.
        threshold: the fixed iceberg threshold T.
    """

    def __init__(self, stage_sizes: list[int], threshold: int, *,
                 k: int = 3, seed: int = 0):
        if not stage_sizes:
            raise ValueError("at least one stage is required")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.stage_sizes = list(stage_sizes)
        self.threshold = int(threshold)
        self.k = int(k)
        self.seed = int(seed)

    def run(self, data: list) -> set:
        """Execute all passes over *data*; return the candidate set.

        The result is a superset of the true iceberg (no false negatives);
        each stage shrinks the candidate pool the next stage must track.
        """
        candidates: set | None = None
        for stage, m in enumerate(self.stage_sizes):
            sbf = SpectralBloomFilter(m, self.k, method="mi",
                                      seed=self.seed + stage)
            for item in data:
                if candidates is None or item in candidates:
                    sbf.insert(item)
            survivors = set()
            for item in data:
                if candidates is not None and item not in candidates:
                    continue
                if item not in survivors and sbf.contains(item,
                                                          self.threshold):
                    survivors.add(item)
            candidates = survivors
        return candidates if candidates is not None else set()

    def scans_performed(self) -> int:
        """Number of data scans the cascade needs (one per stage)."""
        return len(self.stage_sizes)
