"""Bifocal sampling with an SBF t-index (paper §5.4).

Bifocal sampling [GGMS96] estimates the size of an equi-join ``|R ⋈ S|``
without computing it, by classifying each relation's join values as *dense*
(frequency >= threshold) or *sparse* and combining two estimators:

- **dense-dense**: from a sample of R, for each dense value, scale by the
  partner's (estimated) multiplicity;
- **sparse-any**: for each sampled tuple of one relation, probe the *other*
  relation's multiplicity of the join value (the "t-index" probe
  [HNSS93]) and scale.

The paper's §5.4 point: the expensive exact t-index can be replaced with an
SBF — multiplicities come back approximate with one-sided error, which
perturbs the estimate by at most a ``(1 + gamma)`` factor in expectation
(``A_s <= E(Â_s) <= A_s (1 + gamma)``).

This module implements the estimator against a pluggable multiplicity
oracle so the exact-index and SBF-index variants can be compared directly.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.core.sbf import SpectralBloomFilter
from repro.db.relation import Relation


class BifocalEstimator:
    """Join-size estimation via bifocal sampling over two relations.

    Args:
        r, s: the two relations.
        attribute: the join attribute.
        sample_size: tuples sampled from each relation.
        dense_threshold: frequency separating dense from sparse values;
            the classical choice is ``~sqrt(n/m2)``-style, here explicit.
        use_sbf: probe multiplicities through SBFs (the §5.4 variant)
            instead of exact group-by counts.
        method: SBF method when ``use_sbf`` ("mi" recommended — §5.4: the
            deviation "can be very small if using the MI method").
    """

    def __init__(self, r: Relation, s: Relation, attribute: str, *,
                 sample_size: int = 200, dense_threshold: int | None = None,
                 use_sbf: bool = True, m: int | None = None, k: int = 5,
                 method: str = "mi", seed: int = 0):
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.r = r
        self.s = s
        self.attribute = attribute
        self.sample_size = int(sample_size)
        self.seed = int(seed)
        if dense_threshold is None:
            dense_threshold = max(2, int(math.sqrt(max(len(r), len(s)))))
        self.dense_threshold = int(dense_threshold)
        self._mult_r = self._make_oracle(r, use_sbf, m, k, method, seed)
        self._mult_s = self._make_oracle(s, use_sbf, m, k, method,
                                         seed + 1)

    def _make_oracle(self, relation: Relation, use_sbf: bool,
                     m: int | None, k: int, method: str,
                     seed: int) -> Callable[[object], int]:
        """Multiplicity oracle: exact dict or SBF-backed (the t-index)."""
        if not use_sbf:
            counts = relation.group_by_count(self.attribute)
            return lambda v: counts.get(v, 0)
        if m is None:
            from repro.core.params import optimal_m
            n = max(1, len(relation.distinct(self.attribute)))
            m = optimal_m(n, 0.01)
        sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        for value in relation.scan(self.attribute):
            sbf.insert(value)
        return sbf.query

    # ------------------------------------------------------------------
    def _sample(self, relation: Relation, seed: int) -> list:
        rng = random.Random(seed)
        pos = relation.column_position(self.attribute)
        size = min(self.sample_size, len(relation))
        rows = rng.sample(relation.rows, size) if size else []
        return [row[pos] for row in rows]

    def estimate(self) -> float:
        """Estimated join size ``|R ⋈ S|`` on *attribute*.

        The join mass ``sum_v fR(v) * fS(v)`` is split by whether v is
        *dense in R*: R-dense values are covered by R's sample (each
        sampled tuple contributes its partner multiplicity ``fS(v)``,
        scaled by ``|R|/|sample|``), and R-sparse values are covered by S's
        sample (each sampled tuple contributes the t-index probe ``fR(v)``,
        scaled by ``|S|/|sample|``).  Both halves are Horvitz-Thompson
        unbiased given exact multiplicities; the SBF t-index adds the §5.4
        one-sided ``(1 + gamma)`` perturbation.
        """
        t = self.dense_threshold
        sample_r = self._sample(self.r, self.seed + 10)
        sample_s = self._sample(self.s, self.seed + 11)
        scale_r = len(self.r) / max(1, len(sample_r))
        scale_s = len(self.s) / max(1, len(sample_s))
        dense_side = 0.0
        for value in sample_r:
            if self._mult_r(value) >= t:
                dense_side += self._mult_s(value)
        sparse_side = 0.0
        for value in sample_s:
            if self._mult_r(value) < t:
                sparse_side += self._mult_r(value)
        return dense_side * scale_r + sparse_side * scale_s

    def exact(self) -> int:
        """Ground-truth join size (for error measurement)."""
        left = self.r.group_by_count(self.attribute)
        right = self.s.group_by_count(self.attribute)
        return sum(left[v] * right[v] for v in left.keys() & right.keys())

    def relative_error(self) -> float:
        """``|estimate - exact| / exact`` (0 when the join is empty)."""
        exact = self.exact()
        if exact == 0:
            return abs(self.estimate())
        return abs(self.estimate() - exact) / exact
