"""Applications of the Spectral Bloom Filter (paper §5).

- :mod:`repro.apps.aggregates` — the SBF as an approximate aggregate index
  (§5.1: per-item COUNT, and SUM/AVG/MAX over specified item sets);
- :mod:`repro.apps.iceberg` — ad-hoc iceberg queries with query-time
  thresholds, plus the MULTISCAN-SHARED-style progressive filter (§5.2);
- :mod:`repro.apps.bloomjoin` — classic Bloomjoins and Spectral Bloomjoins
  over simulated distributed sites (§5.3);
- :mod:`repro.apps.bifocal` — bifocal-sampling join-size estimation with an
  SBF standing in for the t-index (§5.4);
- :mod:`repro.apps.range_query` — Range-Tree Hashing for range counts
  (§5.5, Theorem 11);
- :mod:`repro.apps.sliding_window` — windowed multiset tracking (§2.2).

Plus the classic Bloom-filter systems §1.1 surveys, rebuilt on this
substrate so their spectral upgrades can be demonstrated:

- :mod:`repro.apps.summary_cache` — Summary Cache proxy meshes [FCAB98];
- :mod:`repro.apps.attenuated` — Attenuated Bloom Filter routing [RK02];
- :mod:`repro.apps.differential` — differential-file filtering [Gre82];
- :mod:`repro.apps.hotlist` — hot lists of popular queries [Bro02, GM98].
"""

from repro.apps.aggregates import AggregateIndex
from repro.apps.iceberg import IcebergIndex, MultiscanIceberg
from repro.apps.bloomjoin import (
    bloomjoin,
    spectral_bloomjoin_count,
    spectral_bloomjoin_threshold,
)
from repro.apps.bifocal import BifocalEstimator
from repro.apps.range_query import RangeTreeSBF
from repro.apps.sliding_window import SlidingWindowSBF
from repro.apps.summary_cache import Proxy, build_mesh
from repro.apps.attenuated import (
    AttenuatedFilter,
    build_attenuated_tables,
    route,
)
from repro.apps.differential import DifferentialStore
from repro.apps.hotlist import HotList

__all__ = [
    "AggregateIndex",
    "IcebergIndex",
    "MultiscanIceberg",
    "bloomjoin",
    "spectral_bloomjoin_count",
    "spectral_bloomjoin_threshold",
    "BifocalEstimator",
    "RangeTreeSBF",
    "SlidingWindowSBF",
    "Proxy",
    "build_mesh",
    "AttenuatedFilter",
    "build_attenuated_tables",
    "route",
    "DifferentialStore",
    "HotList",
]
