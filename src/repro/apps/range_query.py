"""Range-Tree Hashing: range count queries over an SBF (paper §5.5).

The SBF answers point queries only; Theorem 11 extends it to range counts
by hashing, alongside every item, one synthetic key per ancestor node of a
p-ary tree over the attribute domain.  A range query is decomposed into
O(log |Q|) canonical tree nodes, each answered with a single SBF probe::

    SELECT count(a) FROM R WHERE a > L AND a < U

Costs (Theorem 11): insert/delete do ``log_p(r)`` SBF updates for a domain
of size r; a range of size |Q| needs at most ``p * log_p|Q|`` probes (2
per level for the binary tree).  Space grows to cover the <= ``n log r``
synthetic tree keys (Claim 12).  Errors stay one-sided: every probe
over-estimates, so the range count never under-counts.
"""

from __future__ import annotations

from repro.core.sbf import SpectralBloomFilter


class RangeTreeSBF:
    """SBF with dyadic range support over an integer domain.

    Args:
        low, high: inclusive integer domain bounds ``[low, high]``.
        m, k: parameters of the underlying SBF.
        branching: tree arity p (2 = the binary tree of the proof).
        method: SBF method; must support deletion for deletes ("ms"/"rm").

    Tree keys are tuples ``("range", level, index)`` which cannot collide
    with integer item keys thanks to typed canonicalisation.
    """

    def __init__(self, low: int, high: int, m: int, k: int = 5, *,
                 branching: int = 2, method: str = "ms", seed: int = 0):
        if high < low:
            raise ValueError(f"empty domain [{low}, {high}]")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.low = int(low)
        self.high = int(high)
        self.branching = int(branching)
        self.sbf = SpectralBloomFilter(m, k, method=method, seed=seed)
        # Number of levels: leaves are single values; level L spans p^L.
        span = self.high - self.low + 1
        self.levels = 1
        width = 1
        while width < span:
            width *= self.branching
            self.levels += 1
        #: probes issued by the last range_count call (cost diagnostics)
        self.last_query_probes = 0

    # ------------------------------------------------------------------
    def _check_value(self, value: int) -> None:
        if not self.low <= value <= self.high:
            raise ValueError(
                f"value {value} outside domain [{self.low}, {self.high}]")

    def _node_key(self, level: int, index: int) -> tuple:
        return ("range", level, index)

    def _ancestors(self, value: int) -> list[tuple]:
        """Tree keys of every ancestor node of the leaf for *value*."""
        offset = value - self.low
        keys = []
        for level in range(1, self.levels):
            offset //= self.branching
            keys.append(self._node_key(level, offset))
        return keys

    # ------------------------------------------------------------------
    def insert(self, value: int, count: int = 1) -> None:
        """Insert *count* occurrences of *value* (log_p(r) SBF updates)."""
        self._check_value(value)
        self.sbf.insert(value, count)
        for key in self._ancestors(value):
            self.sbf.insert(key, count)

    def delete(self, value: int, count: int = 1) -> None:
        """Delete *count* occurrences of *value*."""
        self._check_value(value)
        self.sbf.delete(value, count)
        for key in self._ancestors(value):
            self.sbf.delete(key, count)

    def count(self, value: int) -> int:
        """Point query — one SBF probe, same accuracy as a plain SBF."""
        self._check_value(value)
        return self.sbf.query(value)

    # ------------------------------------------------------------------
    def range_count(self, low: int, high: int) -> int:
        """``count(a) WHERE low <= a <= high`` via canonical decomposition.

        One-sided: the estimate is >= the true range count w.h.p.
        """
        low = max(low, self.low)
        high = min(high, self.high)
        if high < low:
            return 0
        self.last_query_probes = 0
        return self._count_node(0, self.levels - 1,
                                low - self.low, high - self.low)

    def _node_span(self, level: int) -> int:
        return self.branching ** level

    def _count_node(self, index: int, level: int, lo: int, hi: int) -> int:
        """Sum over the subtree rooted at (level, index), clipped to
        offsets [lo, hi] (domain offsets, inclusive)."""
        span = self._node_span(level)
        node_lo = index * span
        node_hi = node_lo + span - 1
        if node_hi < lo or node_lo > hi:
            return 0
        if lo <= node_lo and node_hi <= hi:
            # Fully covered: one probe answers the whole subtree.
            self.last_query_probes += 1
            if level == 0:
                value = self.low + node_lo
                if value > self.high:
                    return 0
                return self.sbf.query(value)
            return self.sbf.query(self._node_key(level, index))
        # Partial overlap: recurse into the children.
        total = 0
        for child in range(self.branching):
            total += self._count_node(index * self.branching + child,
                                      level - 1, lo, hi)
        return total

    # ------------------------------------------------------------------
    def tree_keys_per_item(self) -> int:
        """Updates per insert (= tree depth - 1 + the leaf itself)."""
        return self.levels

    def storage_bits(self) -> int:
        """Model size of the underlying SBF (Claim 12: domain grows to
        <= n log r extra keys, so size expands accordingly)."""
        return self.sbf.storage_bits()
