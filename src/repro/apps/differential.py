"""Differential-file access filtering [Gre82] (paper §1.1.2).

"A differential file stores changes in a database until they are executed
as a batch ... when using a differential file, its contents must be taken
into account when performing queries ... A Bloom Filter is used to
identify data items which have entries within the differential file, thus
saving unnecessary access to the differential file itself."

:class:`DifferentialStore` wraps a base table plus a differential file of
pending updates.  Every read first consults a filter over the keys present
in the differential file; only claimed keys pay the (modelled) extra file
probe.  With ``spectral=True`` the filter is an SBF, which additionally
answers *how many* pending updates a key has — letting a reader skip the
differential file when the claimed count is below an interest threshold
(e.g. "only reconcile rows with two or more pending deltas").
"""

from __future__ import annotations

from typing import Hashable

from repro.core.sbf import SpectralBloomFilter
from repro.filters.bloom import BloomFilter


class DifferentialStore:
    """Base table + differential file + access filter [Gre82].

    Args:
        base: initial committed data ``{key: value}``.
        m, k: filter parameters.
        spectral: use an SBF (counts pending updates per key; supports
            removal on flush-by-key) instead of a plain Bloom filter.
    """

    def __init__(self, base: dict, *, m: int = 4096, k: int = 4,
                 seed: int = 0, spectral: bool = False):
        self.base = dict(base)
        self.spectral = bool(spectral)
        if spectral:
            self.filter = SpectralBloomFilter(m, k, method="ms", seed=seed)
        else:
            self.filter = BloomFilter(m, k, seed=seed)
        # The differential file: key -> list of pending new values.
        self.diff: dict[Hashable, list] = {}
        #: number of (modelled) differential-file probes performed
        self.file_probes = 0
        #: probes that found nothing (filter false positives)
        self.wasted_probes = 0

    # ------------------------------------------------------------------
    def update(self, key: Hashable, value) -> None:
        """Queue an update in the differential file."""
        self.diff.setdefault(key, []).append(value)
        if self.spectral:
            self.filter.insert(key)
        else:
            self.filter.add(key)

    def pending_updates(self, key: Hashable) -> int:
        """Claimed number of pending updates (exact 0 means none for
        sure; positive values are one-sided estimates in spectral mode)."""
        if self.spectral:
            return self.filter.query(key)
        return 1 if key in self.filter else 0

    def read(self, key: Hashable, *, min_pending: int = 1):
        """Read *key*, reconciling the differential file only when the
        filter claims at least *min_pending* pending updates.

        The classic [Gre82] behaviour is ``min_pending=1``; the spectral
        upgrade allows higher thresholds (stale-tolerant readers).
        """
        claimed = self.pending_updates(key)
        if claimed >= min_pending:
            self.file_probes += 1
            pending = self.diff.get(key)
            if pending:
                return pending[-1]
            self.wasted_probes += 1
        return self.base.get(key)

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Apply the whole differential file to the base table.

        Returns the number of keys applied.  The filter is reset (classic
        protocol: a fresh filter accompanies a fresh differential file).
        """
        applied = 0
        for key, values in self.diff.items():
            self.base[key] = values[-1]
            applied += 1
        self.diff.clear()
        if self.spectral:
            self.filter = SpectralBloomFilter(self.filter.m, self.filter.k,
                                              method="ms",
                                              seed=self.filter.seed)
        else:
            self.filter = BloomFilter(self.filter.m, self.filter.k,
                                      seed=self.filter.seed)
        return applied

    def flush_key(self, key: Hashable) -> bool:
        """Apply and remove one key's pending updates (spectral only —
        the SBF supports deletion, a plain Bloom filter does not).

        Returns True if the key had pending updates.
        """
        if not self.spectral:
            raise RuntimeError(
                "per-key flush needs spectral=True (Bloom filters cannot "
                "delete); use flush() instead")
        pending = self.diff.pop(key, None)
        if pending is None:
            return False
        self.base[key] = pending[-1]
        self.filter.delete(key, len(pending))
        return True
