"""Hash-partitioned shard routing for spectral filters (Bloofi's lesson).

Scaling Bloom-filter serving past one filter is a routing problem in its
own right (Crainiceanu & Lemire's *Bloofi* solves it with a filter tree).
For spectral filters we use the flat variant production key-value systems
converged on: **hash partitioning with pre-split shards** — made exact by
the paper's own blocked hashing (§1.1.3 / [MW94]).

- with the default :class:`~repro.hashing.blocked.BlockedHashFamily`,
  every probe of a key lands inside one block, and the router assigns
  ``shard_of(key) = block_of(key) % n_shards``.  Keys and the counters
  they touch shard *together*: a shard's counter vector is exactly the
  slice of the one big filter covering its blocks, so a routed query
  reads the identical counters an unsharded deployment would — sharding
  is **transparent**, answer for answer, at any load (the seeded
  equivalence tests pin this down);
- with an unblocked family (``hash_family="modmul"`` etc.) the router
  falls back to ``canonical_key(key) % n_shards``.  Still deterministic
  and union-exact, but each shard then hashes its keys over all ``m``
  counters — per-shard estimates carry *less* collision noise than one
  big filter, so answers are one-sided-correct yet not bit-identical;
- each shard is an independently lockable serving handle — a
  :class:`~repro.persist.ConcurrentSBF` over a plain or
  :class:`~repro.persist.DurableSBF` filter — so disjoint-shard traffic
  never contends;
- all shards share one parameter set ``(m, k, seed, family)``, which
  makes them *unionable*: the multiset union of all shards is exactly the
  filter an unsharded deployment would have built (counter for counter),
  the property resharding and the manifest exploit.

Resharding comes in two disciplines:

- **union reshard** (``new_n`` divides ``n``): new shard ``j`` is the
  union of old shards ``{i : i % new_n == j}`` — because assignment is
  ``h % n``, every key routed to old shard ``i`` routes to new shard
  ``i % new_n``, so the union *is* the reshard.  The rebuild freezes
  every shard simultaneously (a snapshot-consistent cut), works for any
  method and hash family, and is what :meth:`ShardedSBF.reshard` uses
  when the divisibility holds;
- **rolling reshard** (any ``new_n``, blocked MS fleets): blocked
  hashing makes counter vectors *splittable* — a shard's state is the
  disjoint union of its blocks' counter spans, and each span can be
  copied independently.  :class:`RollingReshard` migrates old shards one
  at a time (each under only *its own* exclusive lock — no full-fleet
  freeze) into a parallel fleet of ``new_n`` shards, with **dual
  routing** in between: keys of already-migrated old shards are served
  by the new topology (reads from the new shard, writes applied to both
  fleets, old first), keys of un-migrated shards by the old.  The old
  fleet receives *every* write throughout, so it stays fully
  authoritative: :meth:`RollingReshard.abort` simply drops the new
  fleet, and answers are bit-identical to an unsharded filter at every
  instant of the migration (the dual-routing equivalence tests pin this
  down).  This lifts the ``new_n % n == 0`` restriction — 4 shards roll
  to 6 under live traffic.

The shard **manifest** (:meth:`dump_manifest` / :func:`load_manifest`)
frames the fleet for the wire: one :func:`~repro.core.serialize.seal_sections`
frame whose sections are the shards' v2 filter frames, carrying the shard
count so a receiver rebuilds an identical router.
"""

from __future__ import annotations

import math
import threading
from contextlib import ExitStack
from typing import Callable, Sequence

import numpy as np

from repro.core.params import bloom_error
from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    dump_sbf,
    load_sbf,
    open_sections,
    seal_sections,
)
from repro.hashing.blocked import BlockedHashFamily
from repro.hashing.keys import canonical_key
from repro.hashing.vectorized import indices_matrix
from repro.persist import ConcurrentSBF, DurableSBF
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import current_deadline

#: shard-manifest frame magic ("Repro Shard Manifest v1")
MANIFEST_MAGIC = b"RSM1"


class ShardedSBF:
    """A hash-partitioned fleet of spectral-filter shards.

    Args:
        shards: the serving handles, one per shard.  Anything with the
            shard surface works (``insert`` / ``delete`` / ``set`` /
            ``query`` / ``contains`` / ``total_count``) — in practice
            :class:`~repro.persist.ConcurrentSBF` handles locally and
            :class:`~repro.serve.remote.RemoteShard` adapters for shards
            living behind a :class:`~repro.db.transport.ReliableChannel`.
        metrics: registry to report through (one is created if omitted).
    """

    def __init__(self, shards: Sequence[object], *,
                 metrics: MetricsRegistry | None = None,
                 family: object = None):
        shards = list(shards)
        if not shards:
            raise ValueError("a ShardedSBF needs at least one shard")
        self._shards = shards
        self.metrics = metrics or MetricsRegistry()
        self._ops_lock = threading.Lock()
        self._shard_ops = [0] * len(shards)
        self._migration: _Migration | None = None
        self.metrics.gauge("router.shards").set(len(shards))
        self._check_compatible()
        # Routing family: an explicit *family* wins (the only way a
        # remote-only fleet can route blocked — it has no local filter to
        # introspect); otherwise the first local shard's.  Fleets with
        # neither fall back to canonical-key assignment, which the data
        # plane must have used to place the keys in the first place.
        local = [s.sbf for s in shards if hasattr(s, "sbf")]
        if family is None:
            family = local[0].family if local else None
        elif not isinstance(family, BlockedHashFamily):
            raise ValueError(
                "the router's explicit family must be a BlockedHashFamily "
                f"(blocked routing is what it buys), got {family!r}")
        elif local and not local[0].family.is_compatible(family):
            raise ValueError(
                f"explicit routing family {family!r} is incompatible with "
                f"the shards' own family {local[0].family!r}")
        self._family = family if isinstance(family, BlockedHashFamily) \
            else None

    # -- construction ------------------------------------------------------
    @classmethod
    def create(cls, n_shards: int, m: int, k: int, *, seed: int = 0,
               method: object = "ms", backend: object = "array",
               hash_family: object = "blocked",
               stripes: int = 16, timeout: float = 5.0,
               durable_root: str | None = None, fsync: object = "always",
               metrics: MetricsRegistry | None = None) -> "ShardedSBF":
        """Build a fresh fleet of *n_shards* identically-parameterised shards.

        The default ``hash_family="blocked"`` gives transparent sharding
        (see module docstring); pass another family name to trade that
        for its hashing characteristics.  With *durable_root*, shard *i*
        persists under ``<durable_root>/shard-<i>`` (recovering whatever
        a previous process left there); without it, shards are in-memory
        filters.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        shards = []
        for i in range(n_shards):
            factory = _shard_factory(m, k, seed, method, backend,
                                     hash_family)
            if durable_root is not None:
                handle = DurableSBF.open(f"{durable_root}/shard-{i}",
                                         factory=factory, fsync=fsync)
            else:
                handle = factory()
            shards.append(ConcurrentSBF(handle, stripes=stripes,
                                        timeout=timeout))
        return cls(shards, metrics=metrics)

    def _check_compatible(self) -> None:
        """All local shards must share (m, k, seed, family) — the property
        that makes union, reshard, and the manifest meaningful."""
        local = [s.sbf for s in self._shards if hasattr(s, "sbf")]
        for other in local[1:]:
            if not local[0].is_compatible(other):
                raise ValueError(
                    "shards must share parameters and hash functions "
                    f"(m, k, seed, family); got {local[0].family!r} vs "
                    f"{other.family!r}")

    # -- routing -----------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple:
        """The shard handles, indexed by shard id (read-only view)."""
        return tuple(self._shards)

    @property
    def migrating(self) -> bool:
        """True while a :class:`RollingReshard` is in flight (the batcher
        and the fleet moments check this)."""
        return self._migration is not None

    def shard_of(self, key: object) -> int:
        """Deterministic owner shard of *key* (stable across processes).

        Blocked fleets route by owning block, so a key and its counters
        live on the same shard; unblocked fleets route by canonical key.
        During a rolling reshard, keys of already-migrated old shards
        report their *new* owner, offset by the old shard count (the two
        topologies share one index space: old ids ``[0, n)``, new ids
        ``[n, n + new_n)``).
        """
        migration = self._migration
        if migration is not None:
            block = self._family.block_of(key)
            old_id = block % migration.old_n
            if migration.migrated[old_id]:
                return migration.old_n + block % migration.new_n
            return old_id
        if self._family is not None:
            return self._family.block_of(key) % len(self._shards)
        return canonical_key(key) % len(self._shards)

    def shard_of_many(self, keys: Sequence[object]) -> list[int]:
        """Owner shards for a key batch (vectorised for integer keys on a
        blocked fleet; elementwise :meth:`shard_of` otherwise)."""
        if self._migration is None and self._family is not None and keys \
                and all(type(key) is int and 0 <= key < (1 << 63)
                        for key in keys):
            blocks = indices_matrix(self._family._selector,
                                    np.asarray(keys, dtype=np.uint64))[:, 0]
            return (blocks % len(self._shards)).tolist()
        return [self.shard_of(key) for key in keys]

    def _route(self, key: object) -> tuple[int, object]:
        shard_id = self.shard_of(key)
        self.note_shard_ops(shard_id, 1)
        return shard_id, self._shards[shard_id]

    def note_shard_ops(self, shard_id: int, n: int) -> None:
        """Credit *n* operations to shard *shard_id*'s accounting (used by
        the batch executor, which bypasses :meth:`_route`)."""
        with self._ops_lock:
            self._shard_ops[shard_id] += n

    # -- the serving surface ----------------------------------------------
    def insert(self, key: object, count: int = 1) -> None:
        self._write("insert", key, count)
        self.metrics.counter("router.inserts").inc()

    def delete(self, key: object, count: int = 1) -> None:
        self._write("delete", key, count)
        self.metrics.counter("router.deletes").inc()

    def set(self, key: object, count: int) -> None:
        self._write("set", key, count)
        self.metrics.counter("router.sets").inc()

    def _write(self, verb: str, key: object, count: int) -> None:
        self._refuse_if_expired(verb)
        migration = self._migration
        if migration is None:
            _, shard = self._route(key)
            getattr(shard, verb)(key, count)
            return
        block = self._family.block_of(key)
        old_id = block % migration.old_n
        old_shard = self._shards[old_id]
        self.note_shard_ops(old_id, 1)
        if not migration.migrated[old_id]:
            # The old shard still owns the key — but a migration step may
            # be copying it right now.  Freeze the shard and re-check the
            # flag inside the section: the step flips it under this same
            # lock, so the write provably lands either before the copy
            # (and is copied) or after (and takes the dual path below).
            from repro.serve.batch import _apply
            with old_shard.exclusive() as raw:
                if not migration.migrated[old_id]:
                    _apply(raw, (verb, key, count))
                    old_shard.add_operations(1)
                    return
        # Dual write, old fleet first (it stays fully authoritative —
        # abort must lose nothing).  The new shard's copy of this key's
        # block is complete, so both applications see the same counters.
        new_shard = migration.new_shards[block % migration.new_n]
        getattr(old_shard, verb)(key, count)
        getattr(new_shard, verb)(key, count)
        migration.note_new_ops(block % migration.new_n, 1)

    def query(self, key: object) -> int:
        self._refuse_if_expired("query")
        self.metrics.counter("router.queries").inc()
        migration = self._migration
        if migration is None:
            _, shard = self._route(key)
            return shard.query(key)
        block = self._family.block_of(key)
        old_id = block % migration.old_n
        self.note_shard_ops(old_id, 1)
        if migration.migrated[old_id]:
            # Serve from the new topology: its copy of the block plus the
            # dual writes since the flip are exactly the old shard's
            # counters for this block.  (A flip racing this read is
            # harmless either way — the old shard also has everything.)
            migration.note_new_ops(block % migration.new_n, 1)
            return migration.new_shards[block % migration.new_n].query(key)
        return self._shards[old_id].query(key)

    def contains(self, key: object, threshold: int = 1) -> bool:
        return self.query(key) >= threshold

    def _refuse_if_expired(self, what: str) -> None:
        """Refuse point work whose ambient deadline already passed —
        the cheapest place to stop a request that nobody is waiting for
        (before shard routing, locks, or replica fan-out)."""
        deadline = current_deadline()
        if deadline is not None and deadline.expired:
            self.metrics.counter("router.deadline_refusals").inc()
            deadline.check(what, unexecuted=True)

    @property
    def total_count(self) -> int:
        # During a rolling reshard the old fleet receives every write, so
        # summing it alone stays exact (the new fleet would double count).
        return sum(shard.total_count for shard in self._shards)

    # -- accounting --------------------------------------------------------
    def shard_report(self) -> list[dict]:
        """Per-shard parameters and error accounting, one dict per shard.

        ``distinct_estimate`` inverts the expected fill ratio
        (``n̂ = -(m/k) · ln(1 - fill)``, the standard Bloom occupancy
        estimator) and ``expected_error`` is the Bloom error ``E_b`` at
        that load — so overload shows up *per shard*, not averaged away
        across the fleet.
        """
        report = []
        for i, shard in enumerate(self._shards):
            entry = {"shard": i, "ops": self._shard_ops[i],
                     "total_count": shard.total_count}
            sbf = getattr(shard, "sbf", None)
            if sbf is not None:
                fill = sbf.fill_ratio()
                if fill >= 1.0:
                    distinct = float("inf")
                elif fill <= 0.0:
                    distinct = 0.0
                else:
                    distinct = -(sbf.m / sbf.k) * math.log(1.0 - fill)
                entry.update({
                    "m": sbf.m, "k": sbf.k, "method": sbf.method.name,
                    "fill_ratio": fill,
                    "distinct_estimate": distinct,
                    "expected_error": bloom_error(
                        max(1, int(round(distinct))), sbf.k, sbf.m),
                })
            report.append(entry)
        return report

    # -- whole-fleet moments ----------------------------------------------
    def _local_shards(self, operation: str) -> list[ConcurrentSBF]:
        for shard in self._shards:
            if not (hasattr(shard, "exclusive") and hasattr(shard, "sbf")):
                raise ValueError(
                    f"{operation} requires local (lockable) shards; shard "
                    f"{self._shards.index(shard)} is {type(shard).__name__}")
        return list(self._shards)

    def _frozen(self, operation: str, stack: ExitStack,
                timeout: float | None) -> list[ConcurrentSBF]:
        """Enter every shard's exclusive section (in shard order, so two
        concurrent fleet-wide moments cannot deadlock) and return the
        shards; the caller's ExitStack releases them."""
        shards = self._local_shards(operation)
        for shard in shards:
            stack.enter_context(shard.exclusive(timeout))
        return shards

    def checkpoint(self) -> list:
        """Checkpoint every shard; returns the per-shard results
        (snapshot paths for durable shards, v2 frames for memory shards)."""
        self._no_migration("checkpoint")
        results = [shard.checkpoint() for shard in self._shards]
        self.metrics.counter("router.checkpoints").inc()
        return results

    def _no_migration(self, operation: str) -> None:
        if self._migration is not None:
            raise ValueError(
                f"{operation} is unavailable while a rolling reshard is "
                f"in flight; finish (run/commit) or abort it first")

    def reshard(self, new_n: int, *, stripes: int | None = None,
                timeout: float | None = None) -> "ShardedSBF":
        """Reshard the fleet to *new_n* shards, in place.

        When *new_n* divides :attr:`n_shards`, this is the union reshard:
        all shards frozen simultaneously, new shard ``j`` the exact union
        of old shards ``i ≡ j (mod new_n)`` — works for any method and
        hash family.  Otherwise the fleet must use blocked hashing (and
        local MS shards), and the call runs a :class:`RollingReshard` to
        completion — block-range migration behind dual routing, no
        full-fleet freeze; use :meth:`start_reshard` to drive the
        migration step-by-step under live traffic instead.  The router is
        rewired in place (and returned for chaining).  Durable shards are
        refused either way: their on-disk lineage cannot be silently
        rearranged — checkpoint and rebuild via the manifest instead.
        """
        if new_n < 1:
            raise ValueError(f"new_n must be >= 1, got {new_n}")
        self._no_migration("reshard")
        if self.n_shards % new_n != 0:
            if self._family is None:
                raise ValueError(
                    f"cannot reshard {self.n_shards} -> {new_n}: without "
                    f"blocked hashing, counter vectors can be unioned but "
                    f"not split, so new_n must divide the current shard "
                    f"count (pre-split the fleet larger next time)")
            self.start_reshard(new_n, stripes=stripes,
                               timeout=timeout).run()
            return self
        for shard in self._local_shards("reshard"):
            if hasattr(shard, "replicas"):
                raise ValueError(
                    "reshard of replicated shards is not supported; "
                    "rebuild the fleet (replicated_fleet) at the new "
                    "shard count and repair replicas into it")
            if isinstance(shard.raw, DurableSBF):
                raise ValueError(
                    "reshard of durable shards would orphan their WAL/"
                    "snapshot lineage; checkpoint, then rebuild via "
                    "dump_manifest()/load_manifest()")
        with ExitStack() as stack:
            old = self._frozen("reshard", stack, timeout)
            groups: list[list[SpectralBloomFilter]] = [
                [] for _ in range(new_n)]
            ops = [0] * new_n
            for i, shard in enumerate(old):
                groups[i % new_n].append(shard.sbf)
                ops[i % new_n] += self._shard_ops[i]
            merged = []
            for group in groups:
                union = group[0]
                for sbf in group[1:]:
                    union = union.union(sbf)
                merged.append(union)
            stripes = stripes if stripes is not None else old[0].stripes
            lock_timeout = old[0].timeout
            # Swap inside the frozen section: no operation can interleave
            # between the cut and the new fleet taking over.
            self._shards = [ConcurrentSBF(sbf, stripes=stripes,
                                          timeout=lock_timeout)
                            for sbf in merged]
            with self._ops_lock:
                self._shard_ops = ops
            family = merged[0].family
            self._family = family \
                if isinstance(family, BlockedHashFamily) else None
        self.metrics.counter("router.reshards").inc()
        self.metrics.gauge("router.shards").set(new_n)
        return self

    def start_reshard(self, new_n: int, *, stripes: int | None = None,
                      timeout: float | None = None) -> "RollingReshard":
        """Begin a rolling reshard to *new_n* shards; returns the handle.

        The fleet keeps serving throughout: call
        :meth:`RollingReshard.step` between traffic (each step freezes
        exactly one old shard while its blocks are copied), then
        :meth:`RollingReshard.commit` — or :meth:`RollingReshard.run` to
        drive all steps and commit in one call, or
        :meth:`RollingReshard.abort` to drop the new fleet with nothing
        lost.  Requires blocked hashing and local in-memory Minimum
        Selection shards (counter spans must be splittable and exactly
        copyable — see the module docstring).
        """
        if new_n < 1:
            raise ValueError(f"new_n must be >= 1, got {new_n}")
        self._no_migration("start_reshard")
        if self._family is None:
            raise ValueError(
                "rolling reshard needs blocked hashing (counter vectors "
                "are only splittable block-wise); this fleet routes by "
                "canonical key")
        for shard in self._shards:
            if hasattr(shard, "replicas"):
                raise ValueError(
                    "rolling reshard of replicated shards is not "
                    "supported; rebuild the fleet (replicated_fleet) at "
                    "the new shard count and repair replicas into it")
        old = self._local_shards("start_reshard")
        for shard in old:
            if isinstance(shard.raw, DurableSBF):
                raise ValueError(
                    "rolling reshard of durable shards would orphan their "
                    "WAL/snapshot lineage; checkpoint, then rebuild via "
                    "dump_manifest()/load_manifest()")
            if shard.sbf.method.name != "ms":
                raise ValueError(
                    f"rolling reshard requires Minimum Selection (all "
                    f"state in the counter vector); got method "
                    f"{shard.sbf.method.name!r}")
        stripes = stripes if stripes is not None else old[0].stripes
        lock_timeout = timeout if timeout is not None else old[0].timeout
        new_shards = [ConcurrentSBF(old[0].sbf._spawn_like(),
                                    stripes=stripes, timeout=lock_timeout)
                      for _ in range(new_n)]
        migration = _Migration(len(old), new_n, new_shards)
        handle = RollingReshard(self, migration)
        self._migration = migration
        self.metrics.gauge("router.migrating").set(1.0)
        return handle

    # -- the shard manifest ------------------------------------------------
    def dump_manifest(self, *, timeout: float | None = None) -> bytes:
        """Serialise the fleet to one checksummed manifest frame.

        All shards are frozen simultaneously (the manifest is a consistent
        cut) and each shard travels as its own embedded
        :func:`~repro.core.serialize.dump_sbf` frame.
        """
        self._no_migration("dump_manifest")
        with ExitStack() as stack:
            shards = self._frozen("dump_manifest", stack, timeout)
            sections = [dump_sbf(shard.sbf) for shard in shards]
        meta = {"version": 1, "n_shards": len(sections)}
        return seal_sections(MANIFEST_MAGIC, meta, sections)

    @classmethod
    def load_manifest(cls, data: bytes, *, stripes: int = 16,
                      timeout: float = 5.0,
                      metrics: MetricsRegistry | None = None,
                      ) -> "ShardedSBF":
        """Rebuild a fleet from a :meth:`dump_manifest` frame.

        Raises:
            WireFormatError: on any truncation, corruption, or a shard
                count inconsistent with the section table.
        """
        from repro.core.serialize import WireFormatError
        meta, sections = open_sections(data, MANIFEST_MAGIC)
        n = meta.get("n_shards")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise WireFormatError(
                f"manifest field 'n_shards' must be a positive integer, "
                f"got {n!r}")
        if n != len(sections):
            raise WireFormatError(
                f"manifest declares {n} shard(s) but carries "
                f"{len(sections)} section(s)")
        shards = [ConcurrentSBF(load_sbf(frame), stripes=stripes,
                                timeout=timeout) for frame in sections]
        return cls(shards, metrics=metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedSBF(n_shards={self.n_shards}, "
                f"N={self.total_count})")


class _Migration:
    """Shared state of one in-flight rolling reshard.

    The router reads ``migrated`` / ``new_shards`` on every routed
    operation while the migration is live; :class:`RollingReshard` is the
    only writer, and it flips each ``migrated[i]`` inside old shard *i*'s
    exclusive section (the flag-flip protocol the router's dual-routing
    comments rely on).
    """

    __slots__ = ("old_n", "new_n", "migrated", "new_shards", "new_ops",
                 "_ops_lock")

    def __init__(self, old_n: int, new_n: int,
                 new_shards: Sequence[ConcurrentSBF]):
        self.old_n = old_n
        self.new_n = new_n
        self.migrated = [False] * old_n
        self.new_shards = list(new_shards)
        self.new_ops = [0] * new_n
        self._ops_lock = threading.Lock()

    def note_new_ops(self, shard_id: int, n: int) -> None:
        with self._ops_lock:
            self.new_ops[shard_id] += n


class RollingReshard:
    """Driver for a live block-range migration to a new shard count.

    One old shard migrates per :meth:`step`: its blocks' counter spans
    are copied into the new fleet under the old shard's exclusive lock
    (the rest of the fleet keeps serving), and the shard is flipped to
    dual routing before the lock is released.  The old fleet receives
    every write until :meth:`commit` swaps the router over, so
    :meth:`abort` at any point simply discards the new fleet.

    Exactness: with Minimum Selection every insert of ``count`` adds
    ``count`` to all ``k`` counters of one block, so a block's counter
    sum is exactly ``k ×`` the net keyed count it holds — which is how
    the copy reconstructs each new shard's ``total_count`` without
    replaying any keys (``sum // k`` per copied span).
    """

    def __init__(self, router: ShardedSBF, migration: _Migration):
        self._router = router
        self._migration = migration

    @property
    def done(self) -> bool:
        """True once every old shard has been migrated (commit is next)."""
        return all(self._migration.migrated)

    @property
    def remaining(self) -> list[int]:
        """Old shard ids still to be migrated, in step order."""
        return [i for i, flag in enumerate(self._migration.migrated)
                if not flag]

    def _check_live(self) -> None:
        if self._router._migration is not self._migration:
            raise ValueError("this rolling reshard is no longer active "
                             "(committed or aborted)")

    def step(self) -> int:
        """Migrate the next old shard; returns its id.

        Freezes only that shard: its blocks' counter spans are copied
        verbatim into their new owners, each new shard's ``total_count``
        is advanced by ``span_sum // k``, and the shard is flipped to
        dual routing inside the same exclusive section — a racing write
        provably lands either before the copy (and is copied) or after
        (and is dual-applied).
        """
        self._check_live()
        remaining = self.remaining
        if not remaining:
            raise ValueError("all shards are migrated; call commit()")
        i = remaining[0]
        migration = self._migration
        family = self._router._family
        old = self._router._shards[i]
        with old.exclusive():
            src = old.sbf
            k = src.k
            for block in range(family.n_blocks):
                if block % migration.old_n != i:
                    continue
                start, width = family._block_span(block)
                idx = np.arange(start, start + width, dtype=np.int64)
                values = src.counters.get_many(idx)
                if not values.any():
                    continue
                dst = migration.new_shards[block % migration.new_n]
                # Nested old ⊃ new acquisition is the only place two
                # shard locks are held at once (dual writers take them
                # one after the other), so lock order cannot cycle.
                with dst.exclusive():
                    dst.sbf.counters.set_many(idx, values)
                    dst.sbf.total_count += int(values.sum()) // k
            migration.migrated[i] = True
        return i

    def run(self) -> ShardedSBF:
        """Drive every remaining step, then :meth:`commit`."""
        while not self.done:
            self.step()
        return self.commit()

    def commit(self) -> ShardedSBF:
        """Swap the router onto the new fleet (all shards must be
        migrated); returns the router for chaining."""
        self._check_live()
        if not self.done:
            raise ValueError(
                f"cannot commit with {len(self.remaining)} shard(s) "
                f"un-migrated; step() them first (or abort())")
        router = self._router
        migration = self._migration
        router._shards = list(migration.new_shards)
        with router._ops_lock:
            router._shard_ops = list(migration.new_ops)
        router._migration = None
        router.metrics.counter("router.reshards").inc()
        router.metrics.gauge("router.shards").set(migration.new_n)
        router.metrics.gauge("router.migrating").set(0.0)
        return router

    def abort(self) -> ShardedSBF:
        """Drop the new fleet and return to the old topology.

        Loses nothing: the old fleet received every write throughout the
        migration, so it is exactly the filter an unsharded deployment
        would hold.
        """
        self._check_live()
        router = self._router
        router._migration = None
        router.metrics.counter("router.reshard_aborts").inc()
        router.metrics.gauge("router.migrating").set(0.0)
        return router

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RollingReshard({self._migration.old_n} -> "
                f"{self._migration.new_n}, "
                f"remaining={len(self.remaining)})")


def _shard_factory(m: int, k: int, seed: int, method: object,
                   backend: object, hash_family: object,
                   ) -> Callable[[], SpectralBloomFilter]:
    def factory() -> SpectralBloomFilter:
        return SpectralBloomFilter(m, k, seed=seed, method=method,
                                   backend=backend, hash_family=hash_family)
    return factory
