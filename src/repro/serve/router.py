"""Hash-partitioned shard routing for spectral filters (Bloofi's lesson).

Scaling Bloom-filter serving past one filter is a routing problem in its
own right (Crainiceanu & Lemire's *Bloofi* solves it with a filter tree).
For spectral filters we use the flat variant production key-value systems
converged on: **hash partitioning with pre-split shards** — made exact by
the paper's own blocked hashing (§1.1.3 / [MW94]).

- with the default :class:`~repro.hashing.blocked.BlockedHashFamily`,
  every probe of a key lands inside one block, and the router assigns
  ``shard_of(key) = block_of(key) % n_shards``.  Keys and the counters
  they touch shard *together*: a shard's counter vector is exactly the
  slice of the one big filter covering its blocks, so a routed query
  reads the identical counters an unsharded deployment would — sharding
  is **transparent**, answer for answer, at any load (the seeded
  equivalence tests pin this down);
- with an unblocked family (``hash_family="modmul"`` etc.) the router
  falls back to ``canonical_key(key) % n_shards``.  Still deterministic
  and union-exact, but each shard then hashes its keys over all ``m``
  counters — per-shard estimates carry *less* collision noise than one
  big filter, so answers are one-sided-correct yet not bit-identical;
- each shard is an independently lockable serving handle — a
  :class:`~repro.persist.ConcurrentSBF` over a plain or
  :class:`~repro.persist.DurableSBF` filter — so disjoint-shard traffic
  never contends;
- all shards share one parameter set ``(m, k, seed, family)``, which
  makes them *unionable*: the multiset union of all shards is exactly the
  filter an unsharded deployment would have built (counter for counter),
  the property resharding and the manifest exploit.

Resharding follows the pre-split discipline: a counter vector can be
**unioned but never split** (the keys are gone), so capacity planning
starts with more shards than needed and :meth:`ShardedSBF.reshard`
coalesces — ``new_n`` must divide ``n_shards``, and new shard ``j`` is the
union of old shards ``{i : i % new_n == j}``.  Because assignment is
``h % n``, every key routed to old shard ``i`` routes to new shard
``i % new_n``: the union *is* the reshard.  The rebuild happens under
every shard's exclusive lock simultaneously, so it is a snapshot-consistent
cut of the whole fleet.

The shard **manifest** (:meth:`dump_manifest` / :func:`load_manifest`)
frames the fleet for the wire: one :func:`~repro.core.serialize.seal_sections`
frame whose sections are the shards' v2 filter frames, carrying the shard
count so a receiver rebuilds an identical router.
"""

from __future__ import annotations

import math
import threading
from contextlib import ExitStack
from typing import Callable, Sequence

import numpy as np

from repro.core.params import bloom_error
from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    dump_sbf,
    load_sbf,
    open_sections,
    seal_sections,
)
from repro.hashing.blocked import BlockedHashFamily
from repro.hashing.keys import canonical_key
from repro.hashing.vectorized import indices_matrix
from repro.persist import ConcurrentSBF, DurableSBF
from repro.serve.metrics import MetricsRegistry

#: shard-manifest frame magic ("Repro Shard Manifest v1")
MANIFEST_MAGIC = b"RSM1"


class ShardedSBF:
    """A hash-partitioned fleet of spectral-filter shards.

    Args:
        shards: the serving handles, one per shard.  Anything with the
            shard surface works (``insert`` / ``delete`` / ``set`` /
            ``query`` / ``contains`` / ``total_count``) — in practice
            :class:`~repro.persist.ConcurrentSBF` handles locally and
            :class:`~repro.serve.remote.RemoteShard` adapters for shards
            living behind a :class:`~repro.db.transport.ReliableChannel`.
        metrics: registry to report through (one is created if omitted).
    """

    def __init__(self, shards: Sequence[object], *,
                 metrics: MetricsRegistry | None = None):
        shards = list(shards)
        if not shards:
            raise ValueError("a ShardedSBF needs at least one shard")
        self._shards = shards
        self.metrics = metrics or MetricsRegistry()
        self._ops_lock = threading.Lock()
        self._shard_ops = [0] * len(shards)
        self.metrics.gauge("router.shards").set(len(shards))
        self._check_compatible()
        # Routing family: the first local shard's (remote-only fleets fall
        # back to canonical-key assignment, which the data plane must have
        # used to place the keys in the first place).
        local = [s.sbf for s in shards if hasattr(s, "sbf")]
        family = local[0].family if local else None
        self._family = family if isinstance(family, BlockedHashFamily) \
            else None

    # -- construction ------------------------------------------------------
    @classmethod
    def create(cls, n_shards: int, m: int, k: int, *, seed: int = 0,
               method: object = "ms", backend: object = "array",
               hash_family: object = "blocked",
               stripes: int = 16, timeout: float = 5.0,
               durable_root: str | None = None, fsync: object = "always",
               metrics: MetricsRegistry | None = None) -> "ShardedSBF":
        """Build a fresh fleet of *n_shards* identically-parameterised shards.

        The default ``hash_family="blocked"`` gives transparent sharding
        (see module docstring); pass another family name to trade that
        for its hashing characteristics.  With *durable_root*, shard *i*
        persists under ``<durable_root>/shard-<i>`` (recovering whatever
        a previous process left there); without it, shards are in-memory
        filters.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        shards = []
        for i in range(n_shards):
            factory = _shard_factory(m, k, seed, method, backend,
                                     hash_family)
            if durable_root is not None:
                handle = DurableSBF.open(f"{durable_root}/shard-{i}",
                                         factory=factory, fsync=fsync)
            else:
                handle = factory()
            shards.append(ConcurrentSBF(handle, stripes=stripes,
                                        timeout=timeout))
        return cls(shards, metrics=metrics)

    def _check_compatible(self) -> None:
        """All local shards must share (m, k, seed, family) — the property
        that makes union, reshard, and the manifest meaningful."""
        local = [s.sbf for s in self._shards if hasattr(s, "sbf")]
        for other in local[1:]:
            if not local[0].is_compatible(other):
                raise ValueError(
                    "shards must share parameters and hash functions "
                    f"(m, k, seed, family); got {local[0].family!r} vs "
                    f"{other.family!r}")

    # -- routing -----------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple:
        """The shard handles, indexed by shard id (read-only view)."""
        return tuple(self._shards)

    def shard_of(self, key: object) -> int:
        """Deterministic owner shard of *key* (stable across processes).

        Blocked fleets route by owning block, so a key and its counters
        live on the same shard; unblocked fleets route by canonical key.
        """
        if self._family is not None:
            return self._family.block_of(key) % len(self._shards)
        return canonical_key(key) % len(self._shards)

    def shard_of_many(self, keys: Sequence[object]) -> list[int]:
        """Owner shards for a key batch (vectorised for integer keys on a
        blocked fleet; elementwise :meth:`shard_of` otherwise)."""
        if self._family is not None and keys and all(
                type(key) is int and 0 <= key < (1 << 63) for key in keys):
            blocks = indices_matrix(self._family._selector,
                                    np.asarray(keys, dtype=np.uint64))[:, 0]
            return (blocks % len(self._shards)).tolist()
        return [self.shard_of(key) for key in keys]

    def _route(self, key: object) -> tuple[int, object]:
        shard_id = self.shard_of(key)
        self.note_shard_ops(shard_id, 1)
        return shard_id, self._shards[shard_id]

    def note_shard_ops(self, shard_id: int, n: int) -> None:
        """Credit *n* operations to shard *shard_id*'s accounting (used by
        the batch executor, which bypasses :meth:`_route`)."""
        with self._ops_lock:
            self._shard_ops[shard_id] += n

    # -- the serving surface ----------------------------------------------
    def insert(self, key: object, count: int = 1) -> None:
        _, shard = self._route(key)
        shard.insert(key, count)
        self.metrics.counter("router.inserts").inc()

    def delete(self, key: object, count: int = 1) -> None:
        _, shard = self._route(key)
        shard.delete(key, count)
        self.metrics.counter("router.deletes").inc()

    def set(self, key: object, count: int) -> None:
        _, shard = self._route(key)
        shard.set(key, count)
        self.metrics.counter("router.sets").inc()

    def query(self, key: object) -> int:
        _, shard = self._route(key)
        self.metrics.counter("router.queries").inc()
        return shard.query(key)

    def contains(self, key: object, threshold: int = 1) -> bool:
        return self.query(key) >= threshold

    @property
    def total_count(self) -> int:
        return sum(shard.total_count for shard in self._shards)

    # -- accounting --------------------------------------------------------
    def shard_report(self) -> list[dict]:
        """Per-shard parameters and error accounting, one dict per shard.

        ``distinct_estimate`` inverts the expected fill ratio
        (``n̂ = -(m/k) · ln(1 - fill)``, the standard Bloom occupancy
        estimator) and ``expected_error`` is the Bloom error ``E_b`` at
        that load — so overload shows up *per shard*, not averaged away
        across the fleet.
        """
        report = []
        for i, shard in enumerate(self._shards):
            entry = {"shard": i, "ops": self._shard_ops[i],
                     "total_count": shard.total_count}
            sbf = getattr(shard, "sbf", None)
            if sbf is not None:
                fill = sbf.fill_ratio()
                if fill >= 1.0:
                    distinct = float("inf")
                elif fill <= 0.0:
                    distinct = 0.0
                else:
                    distinct = -(sbf.m / sbf.k) * math.log(1.0 - fill)
                entry.update({
                    "m": sbf.m, "k": sbf.k, "method": sbf.method.name,
                    "fill_ratio": fill,
                    "distinct_estimate": distinct,
                    "expected_error": bloom_error(
                        max(1, int(round(distinct))), sbf.k, sbf.m),
                })
            report.append(entry)
        return report

    # -- whole-fleet moments ----------------------------------------------
    def _local_shards(self, operation: str) -> list[ConcurrentSBF]:
        for shard in self._shards:
            if not (hasattr(shard, "exclusive") and hasattr(shard, "sbf")):
                raise ValueError(
                    f"{operation} requires local (lockable) shards; shard "
                    f"{self._shards.index(shard)} is {type(shard).__name__}")
        return list(self._shards)

    def _frozen(self, operation: str, stack: ExitStack,
                timeout: float | None) -> list[ConcurrentSBF]:
        """Enter every shard's exclusive section (in shard order, so two
        concurrent fleet-wide moments cannot deadlock) and return the
        shards; the caller's ExitStack releases them."""
        shards = self._local_shards(operation)
        for shard in shards:
            stack.enter_context(shard.exclusive(timeout))
        return shards

    def checkpoint(self) -> list:
        """Checkpoint every shard; returns the per-shard results
        (snapshot paths for durable shards, v2 frames for memory shards)."""
        results = [shard.checkpoint() for shard in self._shards]
        self.metrics.counter("router.checkpoints").inc()
        return results

    def reshard(self, new_n: int, *, stripes: int | None = None,
                timeout: float | None = None) -> "ShardedSBF":
        """Coalesce the fleet to *new_n* shards via per-shard union.

        *new_n* must divide :attr:`n_shards` (counters can be unioned, not
        split — the pre-split discipline).  All shards are frozen
        simultaneously, so the rebuild is a snapshot-consistent cut: new
        shard ``j`` is exactly the union of old shards ``i ≡ j (mod
        new_n)``, and every key keeps its owner because ``h % new_n ==
        (h % n) % new_n``.  The router is rewired in place (and returned
        for chaining).  Durable shards are refused: their on-disk lineage
        cannot be silently merged — checkpoint and rebuild via the
        manifest instead.
        """
        if new_n < 1:
            raise ValueError(f"new_n must be >= 1, got {new_n}")
        if self.n_shards % new_n != 0:
            raise ValueError(
                f"cannot reshard {self.n_shards} -> {new_n}: counter "
                f"vectors can be unioned but not split, so new_n must "
                f"divide the current shard count (pre-split the fleet "
                f"larger next time)")
        for shard in self._local_shards("reshard"):
            if isinstance(shard.raw, DurableSBF):
                raise ValueError(
                    "reshard of durable shards would orphan their WAL/"
                    "snapshot lineage; checkpoint, then rebuild via "
                    "dump_manifest()/load_manifest()")
        with ExitStack() as stack:
            old = self._frozen("reshard", stack, timeout)
            groups: list[list[SpectralBloomFilter]] = [
                [] for _ in range(new_n)]
            ops = [0] * new_n
            for i, shard in enumerate(old):
                groups[i % new_n].append(shard.sbf)
                ops[i % new_n] += self._shard_ops[i]
            merged = []
            for group in groups:
                union = group[0]
                for sbf in group[1:]:
                    union = union.union(sbf)
                merged.append(union)
            stripes = stripes if stripes is not None else old[0].stripes
            lock_timeout = old[0].timeout
            # Swap inside the frozen section: no operation can interleave
            # between the cut and the new fleet taking over.
            self._shards = [ConcurrentSBF(sbf, stripes=stripes,
                                          timeout=lock_timeout)
                            for sbf in merged]
            with self._ops_lock:
                self._shard_ops = ops
            family = merged[0].family
            self._family = family \
                if isinstance(family, BlockedHashFamily) else None
        self.metrics.counter("router.reshards").inc()
        self.metrics.gauge("router.shards").set(new_n)
        return self

    # -- the shard manifest ------------------------------------------------
    def dump_manifest(self, *, timeout: float | None = None) -> bytes:
        """Serialise the fleet to one checksummed manifest frame.

        All shards are frozen simultaneously (the manifest is a consistent
        cut) and each shard travels as its own embedded
        :func:`~repro.core.serialize.dump_sbf` frame.
        """
        with ExitStack() as stack:
            shards = self._frozen("dump_manifest", stack, timeout)
            sections = [dump_sbf(shard.sbf) for shard in shards]
        meta = {"version": 1, "n_shards": len(sections)}
        return seal_sections(MANIFEST_MAGIC, meta, sections)

    @classmethod
    def load_manifest(cls, data: bytes, *, stripes: int = 16,
                      timeout: float = 5.0,
                      metrics: MetricsRegistry | None = None,
                      ) -> "ShardedSBF":
        """Rebuild a fleet from a :meth:`dump_manifest` frame.

        Raises:
            WireFormatError: on any truncation, corruption, or a shard
                count inconsistent with the section table.
        """
        from repro.core.serialize import WireFormatError
        meta, sections = open_sections(data, MANIFEST_MAGIC)
        n = meta.get("n_shards")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise WireFormatError(
                f"manifest field 'n_shards' must be a positive integer, "
                f"got {n!r}")
        if n != len(sections):
            raise WireFormatError(
                f"manifest declares {n} shard(s) but carries "
                f"{len(sections)} section(s)")
        shards = [ConcurrentSBF(load_sbf(frame), stripes=stripes,
                                timeout=timeout) for frame in sections]
        return cls(shards, metrics=metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedSBF(n_shards={self.n_shards}, "
                f"N={self.total_count})")


def _shard_factory(m: int, k: int, seed: int, method: object,
                   backend: object, hash_family: object,
                   ) -> Callable[[], SpectralBloomFilter]:
    def factory() -> SpectralBloomFilter:
        return SpectralBloomFilter(m, k, seed=seed, method=method,
                                   backend=backend, hash_family=hash_family)
    return factory
