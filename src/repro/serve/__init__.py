"""The serving engine: sharded filters behind one admission-controlled door.

Turns the durable, concurrency-safe filters of :mod:`repro.persist` and
the reliable transport of :mod:`repro.db` into a request-serving system:

- :mod:`repro.serve.router` — :class:`ShardedSBF`, hash-partitioned
  shards with deterministic assignment, per-shard error accounting,
  snapshot-consistent union-based resharding, a wire manifest, and
  :class:`RollingReshard`, live block-range migration to any shard count
  behind dual routing;
- :mod:`repro.serve.batch` — :class:`ShardBatcher`, one lock acquisition
  per shard per batch plus vectorised multi-query/multi-insert paths;
- :mod:`repro.serve.engine` — :class:`ServingEngine`, bounded queues,
  typed :class:`Overloaded` admission control with pluggable shedding
  policies, and graceful drain/close that checkpoints durable shards;
- :mod:`repro.serve.metrics` — :class:`MetricsRegistry`, the one scrape
  surface (counters/gauges/latency buckets + attached
  :class:`~repro.db.transport.ChannelStats`);
- :mod:`repro.serve.remote` — :class:`RemoteShard` / :class:`ShardServer`,
  a shard served over :class:`~repro.db.transport.ReliableChannel` frames
  with :class:`~repro.db.transport.DeliveryFailed` degradation and
  partial-failure bulk operations (:class:`BulkResult`);
- :mod:`repro.serve.procpool` — :class:`ProcessShardPool` /
  :class:`ProcessShard`, the GIL-escaping multi-process shard executor:
  one worker process per shard behind the same wire frames, with
  shared-memory counter segments, crash re-spawn, and pipelined
  fleet-wide bulk operations;
- :mod:`repro.serve.ha` — :class:`ReplicaSet`, quorum reads, hinted
  handoff (:class:`HintLog`), health tracking with ejection/re-admission,
  and :func:`replicated_fleet`;
- :mod:`repro.serve.resilience` — the gray-failure toolkit:
  :class:`Deadline` end-to-end time budgets (:func:`deadline_scope`),
  :class:`RetryBudget` token buckets, :class:`CircuitBreaker` with
  error-rate *and* latency-EWMA trips, and :class:`LatencyTracker`
  percentile windows driving hedged quorum reads;
- :mod:`repro.serve.repair` — anti-entropy: checksum-scan replica counter
  vectors and converge them bit-identically (:func:`repair_replicas`).
"""

from repro.serve.batch import ShardBatcher
from repro.serve.engine import (
    ACCEPT,
    REJECT,
    SHED_OLDEST,
    Overloaded,
    ServingEngine,
    reject_new,
    run_requests,
    shed_oldest,
)
from repro.serve.ha import (
    ALL,
    ONE,
    QUORUM,
    HintLog,
    ReplicaSet,
    Unavailable,
    replicated_fleet,
    required_replicas,
)
from repro.serve.metrics import (
    ChannelStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ReplicaGauges,
)
from repro.serve.procpool import (
    PoolShardServer,
    ProcessShard,
    ProcessShardPool,
)
from repro.serve.remote import (
    BulkFailure,
    BulkResult,
    RemoteShard,
    RemoteShardError,
    ShardServer,
)
from repro.serve.repair import (
    DEFAULT_REPAIR_BLOCKS,
    RepairReport,
    block_checksums,
    repair_replicas,
)
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LatencyTracker,
    RetryBudget,
    current_deadline,
    deadline_scope,
)
from repro.serve.router import MANIFEST_MAGIC, RollingReshard, ShardedSBF

__all__ = [
    "ShardBatcher",
    "ACCEPT",
    "REJECT",
    "SHED_OLDEST",
    "Overloaded",
    "ServingEngine",
    "reject_new",
    "run_requests",
    "shed_oldest",
    "ALL",
    "ONE",
    "QUORUM",
    "HintLog",
    "ReplicaSet",
    "Unavailable",
    "replicated_fleet",
    "required_replicas",
    "ChannelStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReplicaGauges",
    "PoolShardServer",
    "ProcessShard",
    "ProcessShardPool",
    "BulkFailure",
    "BulkResult",
    "RemoteShard",
    "RemoteShardError",
    "ShardServer",
    "DEFAULT_REPAIR_BLOCKS",
    "RepairReport",
    "block_checksums",
    "repair_replicas",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "LatencyTracker",
    "RetryBudget",
    "current_deadline",
    "deadline_scope",
    "MANIFEST_MAGIC",
    "RollingReshard",
    "ShardedSBF",
]
