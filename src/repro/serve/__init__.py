"""The serving engine: sharded filters behind one admission-controlled door.

Turns the durable, concurrency-safe filters of :mod:`repro.persist` and
the reliable transport of :mod:`repro.db` into a request-serving system:

- :mod:`repro.serve.router` — :class:`ShardedSBF`, hash-partitioned
  shards with deterministic assignment, per-shard error accounting,
  snapshot-consistent union-based resharding, and a wire manifest;
- :mod:`repro.serve.batch` — :class:`ShardBatcher`, one lock acquisition
  per shard per batch plus vectorised multi-query/multi-insert paths;
- :mod:`repro.serve.engine` — :class:`ServingEngine`, bounded queues,
  typed :class:`Overloaded` admission control with pluggable shedding
  policies, and graceful drain/close that checkpoints durable shards;
- :mod:`repro.serve.metrics` — :class:`MetricsRegistry`, the one scrape
  surface (counters/gauges/latency buckets + attached
  :class:`~repro.db.transport.ChannelStats`);
- :mod:`repro.serve.remote` — :class:`RemoteShard` / :class:`ShardServer`,
  a shard served over :class:`~repro.db.transport.ReliableChannel` frames
  with :class:`~repro.db.transport.DeliveryFailed` degradation.
"""

from repro.serve.batch import ShardBatcher
from repro.serve.engine import (
    ACCEPT,
    REJECT,
    SHED_OLDEST,
    Overloaded,
    ServingEngine,
    reject_new,
    run_requests,
    shed_oldest,
)
from repro.serve.metrics import (
    ChannelStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.remote import (
    RemoteShard,
    RemoteShardError,
    ShardServer,
)
from repro.serve.router import MANIFEST_MAGIC, ShardedSBF

__all__ = [
    "ShardBatcher",
    "ACCEPT",
    "REJECT",
    "SHED_OLDEST",
    "Overloaded",
    "ServingEngine",
    "reject_new",
    "run_requests",
    "shed_oldest",
    "ChannelStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RemoteShard",
    "RemoteShardError",
    "ShardServer",
    "MANIFEST_MAGIC",
    "ShardedSBF",
]
