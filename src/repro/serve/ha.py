"""High availability: replica sets, quorum reads, hinted handoff.

A :class:`~repro.serve.router.ShardedSBF` shard is a single point of
failure — one dead :class:`~repro.serve.remote.RemoteShard` blacks out
its whole keyspace.  :class:`ReplicaSet` removes it: a drop-in shard
handle that keeps ``rf`` replicas of the same logical shard and rides
the spectral filter's exact composition algebra (paper §3) to make the
classic Dynamo-style availability machinery *verifiable*:

- **writes fan out to every replica**.  An operation is acknowledged
  once ``write_consistency`` replicas applied it (:data:`ONE` by
  default); replicas that were down — or failed mid-write — receive the
  operation as a **hint** instead, an ordered queue drained verbatim
  when the replica returns.  With ``hint_dir`` the hint queue is a
  :class:`~repro.persist.wal.WriteAheadLog` on disk, so hints survive a
  coordinator restart (same record format, same torn-tail recovery);
- **reads consult a quorum** (:data:`ONE` / :data:`QUORUM` /
  :data:`ALL` via ``read_consistency``) of *fresh* replicas — up, no
  pending hints — and combine answers with ``max``.  Fresh replicas of
  an MS filter are bit-identical, so any quorum returns the one true
  estimate; the ``max`` combine keeps the one-sided guarantee (estimate
  >= truth) even mid-convergence.  Fewer fresh replicas than the quorum
  raises a typed :class:`Unavailable`;
- **health tracking**: ``eject_after`` consecutive transport failures
  eject a replica (stop paying its retry budget per operation); every
  ``probe_every`` operations the set probes ejected replicas with a
  cheap ``total_count`` call, drains their hints on success, and
  re-admits them **only after proving convergence** — the replica's
  total must equal a fresh peer's.  A replica that cannot be proven
  caught up (its disk lost writes, a hint was double-applied across a
  retry ambiguity) stays out with ``needs_repair`` until
  :meth:`ReplicaSet.repair` runs the anti-entropy pass
  (:mod:`repro.serve.repair`), which converges it counter-for-counter;
- **gray-failure defense** (:mod:`repro.serve.resilience`): ejection
  only catches replicas that *fail*; a replica that merely answers
  slowly passes every consecutive-failure check while dragging each
  operation to its deadline.  Each replica therefore carries a
  :class:`~repro.serve.resilience.CircuitBreaker` keyed on error rate
  *and* a latency EWMA; open breakers are skipped like down replicas
  and re-admitted through the same total-count convergence proof as
  ejection.  Reads prefer closed-breaker/low-latency replicas, **hedge**
  slow attempts onto spare candidates once a latency-percentile bound
  trips, and spend a per-set :class:`RetryBudget` so correlated
  slowness degrades to fast refusals instead of a retry storm.  The
  whole read/write path honours the caller's end-to-end
  :class:`~repro.serve.resilience.Deadline`
  (:func:`~repro.serve.resilience.deadline_scope`);
- **observability**: per-replica ``up`` / ``hint_depth`` /
  ``last_repair`` / ``breaker_state`` gauges
  (:meth:`MetricsRegistry.replica_gauges`) plus set-level counters
  (hinted, handoffs, ejections, re-admissions, unavailable, probes,
  repairs, breaker transitions, hedges, deadline refusals) — all in
  the one ``snapshot()``.

Why this converges: every acknowledged write applied to at least one
replica that stayed fresh, so the fresh replica with the largest
``total_count`` has applied *every* acknowledged write.  Using it as
the anti-entropy reference, a counter copy is exact recovery — not a
heuristic — because an MS filter's entire state is its counter vector.

:func:`replicated_fleet` wires a router where every shard is a replica
set — the HA serving topology the chaos tests and benchmarks exercise.
"""

from __future__ import annotations

import os.path
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.sbf import SpectralBloomFilter
from repro.db.transport import DeliveryFailed
from repro.hashing.blocked import BlockedHashFamily
from repro.hashing.families import make_family
from repro.persist import ConcurrentSBF, LockTimeout
from repro.persist.crashsim import FileIO
from repro.persist.wal import (
    BULK_OPS,
    OP_DELETE_MANY,
    OP_NAMES,
    WriteAheadLog,
    replay,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import BulkFailure, BulkResult, RemoteShardError
from repro.serve.repair import DEFAULT_REPAIR_BLOCKS, RepairReport, \
    repair_replicas
from repro.serve.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LatencyTracker,
    RetryBudget,
    current_deadline,
    deadline_scope,
)
from repro.serve.router import ShardedSBF

#: consistency levels: how many replicas must answer/apply
ONE = "one"
QUORUM = "quorum"
ALL = "all"

#: exceptions that mean "this replica, right now" — not "this operation"
_TRANSIENT = (DeliveryFailed, LockTimeout, RemoteShardError)


def required_replicas(level: str, rf: int) -> int:
    """Replicas a consistency *level* requires out of *rf*."""
    if level == ONE:
        return 1
    if level == QUORUM:
        return rf // 2 + 1
    if level == ALL:
        return rf
    raise ValueError(
        f"consistency must be {ONE!r}, {QUORUM!r}, or {ALL!r}, "
        f"got {level!r}")


class Unavailable(RuntimeError):
    """Too few healthy replicas to satisfy the consistency level.

    Attributes:
        needed: replicas the consistency level required.
        got: replicas that actually answered/applied.
    """

    def __init__(self, message: str, needed: int, got: int):
        super().__init__(message)
        self.needed = needed
        self.got = got


class HintLog:
    """Ordered queue of operations a down replica missed.

    In-memory by default; with *path* every hint is also appended to a
    :class:`~repro.persist.wal.WriteAheadLog` (and recovered from it on
    construction), so an acknowledged-but-not-yet-handed-off write
    survives a coordinator crash.  Handoff replays hints in arrival
    order — per-replica order equals acknowledgement order, which is
    what makes replaying ``set`` operations safe.
    """

    def __init__(self, path: str | None = None, *, fsync: object = "always",
                 io: FileIO | None = None):
        self._pending: deque[tuple[str, object, int]] = deque()
        self._wal: WriteAheadLog | None = None
        self._path = path
        self._fsync = fsync
        self._io: FileIO | None = None
        if path is not None:
            io = io or FileIO()
            self._io = io
            # A crash mid-resync can strand a half-built replacement
            # queue; the main log stayed authoritative (the rename never
            # happened), so the stranded file is dead weight.
            if io.exists(path + ".new"):
                io.remove(path + ".new")
            for record in replay(path, io=io)[0]:
                if record.op in BULK_OPS:
                    verb = "delete" if record.op == OP_DELETE_MANY \
                        else "insert"
                    self._pending.extend(
                        (verb, key, count)
                        for key, count in zip(record.key, record.count))
                else:
                    self._pending.append(
                        (OP_NAMES[record.op], record.key, record.count))
            self._wal = WriteAheadLog(path, fsync=fsync, io=io)

    def __len__(self) -> int:
        return len(self._pending)

    def append(self, verb: str, key: object, count: int) -> None:
        """Queue one missed operation (*verb* is insert/delete/set)."""
        if self._wal is not None:
            getattr(self._wal, f"log_{verb}")(key, count)
        self._pending.append((verb, key, count))

    def append_many(self, verb: str, keys: Sequence[object],
                    counts: Sequence[int]) -> None:
        """Queue a missed bulk batch as one WAL record (one fsync)."""
        if self._wal is not None:
            log = self._wal.log_delete_many if verb == "delete" \
                else self._wal.log_insert_many
            log(list(keys), list(counts))
        self._pending.extend(
            (verb, key, count) for key, count in zip(keys, counts))

    def drain(self, apply: Callable[[str, object, int], None]) -> int:
        """Hand queued hints to *apply* in order; returns how many landed.

        Stops at the first failing hint (which stays queued, along with
        everything after it) — a replica that dies mid-handoff resumes
        where it left off on the next probe.
        """
        applied = 0
        try:
            while self._pending:
                verb, key, count = self._pending[0]
                apply(verb, key, count)
                self._pending.popleft()
                applied += 1
        finally:
            if applied and self._wal is not None:
                self._resync_wal()
        return applied

    def clear(self) -> None:
        """Drop every queued hint (their effects were repaired in bulk)."""
        self._pending.clear()
        if self._wal is not None:
            self._wal.reset()

    def _resync_wal(self) -> None:
        """Rewrite the on-disk queue to match what is still pending.

        Crash-atomic: the replacement queue is built at ``<path>.new``
        and renamed over the log in one step.  A crash at any byte /
        fsync / rename leaves either the old log — a *superset* whose
        already-drained prefix re-applies on restart, the at-least-once
        side the convergence proof flags and :meth:`ReplicaSet.repair`
        converges — or the new log, exactly the still-pending hints.
        Truncate-in-place (the old implementation) had a window where a
        crash lost pending hints outright; the crash tests in
        ``tests/test_ha.py`` sweep every kill point to prove this one
        does not.
        """
        tmp = self._path + ".new"
        if self._io.exists(tmp):
            self._io.remove(tmp)
        replacement = WriteAheadLog(tmp, fsync=self._fsync, io=self._io)
        try:
            for verb, key, count in self._pending:
                getattr(replacement, f"log_{verb}")(key, count)
        finally:
            replacement.close()
        self._wal.close()
        self._io.replace(tmp, self._path)
        self._wal = WriteAheadLog(self._path, fsync=self._fsync,
                                  io=self._io)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()


class _Replica:
    """One replica's handle plus its health state."""

    __slots__ = ("handle", "name", "up", "failures", "needs_repair",
                 "hints", "gauges", "breaker")

    def __init__(self, handle, name: str, hints: HintLog, gauges,
                 breaker: CircuitBreaker):
        self.handle = handle
        self.name = name
        self.up = True
        self.failures = 0          # consecutive transport failures
        self.needs_repair = False
        self.hints = hints
        self.gauges = gauges
        self.breaker = breaker


class ReplicaSet:
    """``rf`` replicas of one logical shard behind the shard surface.

    Drop-in wherever a shard handle goes — a
    :class:`~repro.serve.router.ShardedSBF` shard list, under the
    batcher, inside the engine.  Replicas are any mix of local handles
    (:class:`~repro.persist.ConcurrentSBF`) and
    :class:`~repro.serve.remote.RemoteShard` adapters.

    Args:
        replicas: the replica handles (``rf = len(replicas)``).
        name: the set's metrics namespace (``ha.<name>.*``).
        names: per-replica names (default ``r0..r{rf-1}``).
        read_consistency: :data:`ONE` / :data:`QUORUM` / :data:`ALL` —
            fresh replicas a read must reach.
        write_consistency: replicas a write must apply to before it is
            acknowledged (missed replicas get hints either way).
        eject_after: consecutive transport failures before a replica is
            ejected from the write/read paths.
        probe_every: operations between automatic probes of ejected
            replicas (:meth:`tick` probes on demand).
        hint_dir: directory for durable hint logs (one WAL per replica);
            ``None`` keeps hints in memory only.
        hint_fsync: fsync policy for durable hint logs.
        io: filesystem layer for durable hints (crash simulator in tests).
        metrics: registry to report through (one is created if omitted).
        breaker: per-replica :class:`~repro.serve.resilience.
            CircuitBreaker` options (a dict of its keyword arguments).
            The defaults key on error rate only; pass
            ``{"latency_threshold": ...}`` to arm the gray-failure trip
            that ejects a slow-but-alive replica.
        hedge: hedged-read trigger — ``None`` disables hedging; a float
            is a fixed per-attempt bound in seconds; ``"p95"``-style
            strings bound each attempt at that percentile of recent
            attempt latencies (times ``hedge_factor``).  An attempt that
            exceeds its bound is abandoned and the read fires against a
            spare replica instead — the straggler never holds the quorum.
        hedge_factor: safety margin on the percentile bound (an attempt
            exactly at the percentile must not be abandoned).
        retry_budget: a :class:`~repro.serve.resilience.RetryBudget`, a
            dict of its keyword arguments, or ``None`` for the defaults.
            Read attempts beyond the consistency level's quorum are
            retries and spend from it; successes earn back.  Shared with
            other sets by passing the same instance.
    """

    def __init__(self, replicas: Sequence[object], *, name: str = "rs",
                 names: Sequence[str] | None = None,
                 read_consistency: str = QUORUM,
                 write_consistency: str = ONE,
                 eject_after: int = 3, probe_every: int = 64,
                 hint_dir: str | None = None,
                 hint_fsync: object = "always",
                 io: FileIO | None = None,
                 metrics: MetricsRegistry | None = None,
                 breaker: dict | None = None,
                 hedge: float | str | None = None,
                 hedge_factor: float = 2.0,
                 retry_budget: RetryBudget | dict | None = None):
        replicas = list(replicas)
        if not replicas:
            raise ValueError("a ReplicaSet needs at least one replica")
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1, got {eject_after}")
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        rf = len(replicas)
        self.name = name
        self.rf = rf
        self.read_consistency = read_consistency
        self.write_consistency = write_consistency
        self._read_needed = required_replicas(read_consistency, rf)
        self._write_needed = required_replicas(write_consistency, rf)
        self.eject_after = int(eject_after)
        self.probe_every = int(probe_every)
        self.metrics = metrics or MetricsRegistry()
        if names is None:
            names = [f"r{i}" for i in range(rf)]
        elif len(names) != rf:
            raise ValueError(f"got {rf} replicas but {len(names)} names")
        if hedge_factor <= 0:
            raise ValueError(
                f"hedge_factor must be > 0, got {hedge_factor}")
        self._hedge_seconds: float | None = None
        self._hedge_quantile: float | None = None
        self._hedge_factor = float(hedge_factor)
        if hedge is not None:
            if isinstance(hedge, str):
                if not hedge.startswith("p"):
                    raise ValueError(
                        f"hedge must be seconds, a percentile like "
                        f"'p95', or None; got {hedge!r}")
                quantile = float(hedge[1:]) / 100.0
                if not 0.0 < quantile < 1.0:
                    raise ValueError(
                        f"hedge percentile must be in (0, 100), "
                        f"got {hedge!r}")
                self._hedge_quantile = quantile
            else:
                if hedge <= 0:
                    raise ValueError(
                        f"hedge seconds must be > 0, got {hedge}")
                self._hedge_seconds = float(hedge)
        self._latencies = LatencyTracker()
        if retry_budget is None:
            retry_budget = RetryBudget()
        elif isinstance(retry_budget, dict):
            retry_budget = RetryBudget(**retry_budget)
        self.retry_budget = retry_budget
        self._breaker_options = dict(breaker or {})
        self._breaker_options.setdefault("clock", self.metrics.clock)
        self._replicas: list[_Replica] = []
        for handle, rname in zip(replicas, names):
            path = None
            if hint_dir is not None:
                path = os.path.join(hint_dir, f"{name}-{rname}.hints")
            gauges = self.metrics.replica_gauges(name, rname)
            gauges.up.set(1.0)
            hints = HintLog(path, fsync=hint_fsync, io=io)
            replica = _Replica(handle, rname, hints, gauges,
                               self._make_breaker(gauges))
            gauges.hint_depth.set(len(hints))
            self._replicas.append(replica)
        self._ops = 0
        self._last_probe = 0

    def _make_breaker(self, gauges) -> CircuitBreaker:
        breaker = CircuitBreaker(**self._breaker_options)

        def on_transition(old: str, new: str) -> None:
            gauges.breaker_state.set(breaker.state_code())
            if new == OPEN:
                self._counter("breaker_opens").inc()
            elif new == HALF_OPEN:
                self._counter("breaker_half_opens").inc()
            else:
                self._counter("breaker_closes").inc()

        breaker.on_transition = on_transition
        return breaker

    # -- introspection -----------------------------------------------------
    @property
    def replicas(self) -> tuple:
        """The replica handles, by replica index (read-only view)."""
        return tuple(r.handle for r in self._replicas)

    def health(self) -> list[dict]:
        """Per-replica health, one dict each (scrape-friendly)."""
        return [{"replica": r.name, "up": r.up,
                 "needs_repair": r.needs_repair,
                 "consecutive_failures": r.failures,
                 "hint_depth": len(r.hints),
                 "breaker": r.breaker.state,
                 "latency_ewma": r.breaker.latency_ewma}
                for r in self._replicas]

    @property
    def sbf(self) -> SpectralBloomFilter:
        """The first local replica's in-memory filter (routing/compat
        introspection); raises ``AttributeError`` on remote-only sets."""
        for replica in self._replicas:
            sbf = getattr(replica.handle, "sbf", None)
            if sbf is not None:
                return sbf
        raise AttributeError("no local replica exposes .sbf")

    # -- internal plumbing -------------------------------------------------
    def _counter(self, event: str):
        return self.metrics.counter(f"ha.{self.name}.{event}")

    def _fresh(self, replica: _Replica) -> bool:
        return replica.up and not replica.needs_repair \
            and not len(replica.hints)

    def _note_ok(self, replica: _Replica) -> None:
        replica.failures = 0

    def _note_failure(self, replica: _Replica, exc: Exception) -> None:
        replica.failures += 1
        if replica.up and replica.failures >= self.eject_after:
            replica.up = False
            replica.gauges.up.set(0.0)
            self._counter("ejections").inc()

    def _hint(self, replica: _Replica, verb: str, key: object,
              count: int) -> None:
        replica.hints.append(verb, key, count)
        replica.gauges.hint_depth.set(len(replica.hints))
        self._counter("hinted").inc()

    def _hedge_bound(self) -> float | None:
        """The per-attempt time bound, or ``None`` (no hedging / still
        warming up the latency window)."""
        if self._hedge_seconds is not None:
            return self._hedge_seconds
        if self._hedge_quantile is None:
            return None
        quantile = self._latencies.quantile(self._hedge_quantile)
        return None if quantile is None else quantile * self._hedge_factor

    def _attempt_deadline(self, op_deadline: Deadline | None,
                          bound: float | None) -> Deadline | None:
        """The deadline one replica attempt runs under: the request
        deadline, tightened by the hedge bound when one applies."""
        if bound is None:
            return op_deadline
        if op_deadline is None:
            return Deadline(bound, clock=self.metrics.clock,
                            label=f"ha.{self.name} attempt")
        return op_deadline.bounded(bound)

    def _check_op_deadline(self, deadline: Deadline | None, what: str,
                           bump: int = 0) -> None:
        """Raise the typed refusal if the request deadline has passed."""
        if deadline is None or deadline.remaining() > 0.0:
            return
        self._counter("deadline_refusals").inc()
        if bump:
            self._bump(bump)
            self._maybe_tick()
        deadline.check(what)

    def _ordered(self, pool: list[_Replica]) -> list[_Replica]:
        """Healthy-first attempt order: closed breakers before probing
        ones, then by latency EWMA — the straggler is consulted last,
        where its cost can be hedged away (stable, so equally-healthy
        replicas keep their configured order)."""
        return sorted(pool, key=lambda r: (r.breaker.state != CLOSED,
                                           r.breaker.latency_ewma or 0.0))

    def _bump(self, n: int = 1) -> None:
        """Count *n* operations toward the probe cadence.  The cadence
        check is separate (:meth:`_maybe_tick`) and MUST run only after
        the current operation's hints are queued — a probe between apply
        and hint would see the recovering replica one op behind its peer
        and wrongly fail the convergence proof."""
        self._ops += n

    def _maybe_tick(self) -> None:
        if self._ops - self._last_probe >= self.probe_every:
            self.tick()

    # -- the write path ----------------------------------------------------
    def insert(self, key: object, count: int = 1) -> None:
        self._write("insert", key, count)

    def delete(self, key: object, count: int = 1) -> None:
        self._write("delete", key, count)

    def set(self, key: object, count: int) -> None:
        self._write("set", key, count)

    def _write(self, verb: str, key: object, count: int) -> None:
        op_deadline = current_deadline()
        clock = self.metrics.clock
        applied = 0
        missed: list[_Replica] = []
        semantic: Exception | None = None
        for replica in self._ordered(self._replicas):
            if not replica.up:
                missed.append(replica)
                continue
            if not replica.breaker.allow():
                # Breaker-open (slow-but-alive) replica: shed it from the
                # fan-out; if the write acknowledges it gets a hint, so
                # nothing is lost while it is out.
                missed.append(replica)
                continue
            if op_deadline is not None and op_deadline.remaining() <= 0.0:
                missed.append(replica)
                continue
            # Once the ack quota is met the remaining replicas are
            # stragglers: bound their attempts so one slow replica never
            # prices every write (an abandoned straggler gets a hint).
            bound = self._hedge_bound() if applied >= self._write_needed \
                else None
            attempt = self._attempt_deadline(op_deadline, bound)
            start = clock()
            try:
                with deadline_scope(attempt):
                    getattr(replica.handle, verb)(key, count)
            except DeadlineExceeded:
                # Slow, not dead: the breaker (not the ejection counter)
                # is the health channel for slowness.
                replica.breaker.record_failure(clock() - start)
                self._latencies.observe(clock() - start)
                self._counter("write_abandons").inc()
                missed.append(replica)
            except _TRANSIENT as exc:
                self._note_failure(replica, exc)
                replica.breaker.record_failure(clock() - start)
                missed.append(replica)
            except (ValueError, TypeError) as exc:
                # The operation itself is invalid (bad key, delete below
                # zero) — it would fail on every replica; never hint it.
                self._note_ok(replica)
                replica.breaker.record_success(clock() - start)
                semantic = semantic or exc
            else:
                latency = clock() - start
                self._note_ok(replica)
                replica.breaker.record_success(latency)
                self._latencies.observe(latency)
                applied += 1
        self._bump()
        if semantic is not None:
            self._maybe_tick()
            raise semantic
        if applied < self._write_needed:
            self._maybe_tick()
            if op_deadline is not None and op_deadline.remaining() <= 0.0:
                self._counter("deadline_refusals").inc()
                op_deadline.check(f"{verb} {key!r}")
            self._counter("unavailable").inc()
            raise Unavailable(
                f"{verb} {key!r}: {applied} of the required "
                f"{self._write_needed} replica(s) applied it", needed=
                self._write_needed, got=applied)
        # Only acknowledged writes are hinted: an unacknowledged write is
        # the client's to retry, and hinting it would make replicas
        # remember an operation the client was told failed.  (A hinted
        # deadline abandon may double-apply — the send was in flight when
        # the clock ran out — which is exactly the retry ambiguity the
        # convergence proof flags and repair() converges.)
        for replica in missed:
            self._hint(replica, verb, key, count)
        self._maybe_tick()

    # -- the read path -----------------------------------------------------
    def query(self, key: object) -> int:
        return self._read("query", lambda handle: handle.query(key))

    def contains(self, key: object, threshold: int = 1) -> bool:
        return self.query(key) >= threshold

    @property
    def total_count(self) -> int:
        return self._read("total_count",
                          lambda handle: handle.total_count)

    def _read(self, what: str, fetch: Callable[[object], int]) -> int:
        op_deadline = current_deadline()
        clock = self.metrics.clock
        needed = self._read_needed
        candidates = self._ordered(
            [r for r in self._replicas
             if self._fresh(r) and r.breaker.allow()])
        answers: list[int] = []
        attempts = 0
        budget_refused = False
        for position, replica in enumerate(candidates):
            if len(answers) == needed:
                break
            if op_deadline is not None and op_deadline.remaining() <= 0.0:
                break
            # The first `needed` attempts are the quorum's own; every
            # attempt beyond them exists because something failed or
            # stalled — that is a retry, and retries spend budget.
            if attempts >= needed and not self.retry_budget.try_spend():
                self._counter("budget_refusals").inc()
                budget_refused = True
                break
            # Hedge only while spare candidates remain: abandoning the
            # last possible answer would trade a slow success for none.
            spares = len(candidates) - position - 1
            still_needed = needed - len(answers)
            bound = self._hedge_bound() if spares >= still_needed else None
            attempt = self._attempt_deadline(op_deadline, bound)
            start = clock()
            attempts += 1
            try:
                with deadline_scope(attempt):
                    value = fetch(replica.handle)
            except DeadlineExceeded:
                latency = clock() - start
                replica.breaker.record_failure(latency)
                self._latencies.observe(latency)
                if op_deadline is not None \
                        and op_deadline.remaining() <= 0.0:
                    break  # the request itself is out of time
                # The straggler's read re-fires against the next (spare)
                # candidate: the hedge.
                self._counter("hedges").inc()
            except _TRANSIENT as exc:
                self._note_failure(replica, exc)
                replica.breaker.record_failure(clock() - start)
            else:
                latency = clock() - start
                self._note_ok(replica)
                replica.breaker.record_success(latency)
                self._latencies.observe(latency)
                self.retry_budget.earn()
                answers.append(value)
        self._bump()
        self._maybe_tick()
        if len(answers) < needed:
            if op_deadline is not None and op_deadline.remaining() <= 0.0:
                self._counter("deadline_refusals").inc()
                op_deadline.check(what)
            self._counter("unavailable").inc()
            detail = " (retry budget empty)" if budget_refused else ""
            raise Unavailable(
                f"{what}: {len(answers)} of the required "
                f"{needed} fresh replica(s) answered{detail}",
                needed=needed, got=len(answers))
        # max keeps the one-sided guarantee: every answer is >= the true
        # count, so the largest is too (and fresh replicas agree anyway).
        return max(answers)

    # -- bulk operations ---------------------------------------------------
    def query_many(self, keys: Sequence[object]) -> np.ndarray:
        """Quorum estimates for a key batch, as an int64 array.

        Every slot needs ``read_consistency`` fresh answers; the combine
        is an elementwise ``max``.  Raises :class:`Unavailable` if any
        slot falls short.
        """
        keys = list(keys)
        op_deadline = current_deadline()
        clock = self.metrics.clock
        if op_deadline is not None:
            self._check_op_deadline(op_deadline, "query_many")
        needed = self._read_needed
        best = np.zeros(len(keys), dtype=np.int64)
        answered = np.zeros(len(keys), dtype=np.int64)
        for replica in self._ordered(
                [r for r in self._replicas
                 if self._fresh(r) and r.breaker.allow()]):
            if bool((answered >= needed).all()):
                break
            if op_deadline is not None:
                self._check_op_deadline(op_deadline, "query_many",
                                        bump=len(keys))
            start = clock()
            try:
                with deadline_scope(op_deadline):
                    result = replica.handle.query_many(keys)
            except DeadlineExceeded:
                replica.breaker.record_failure(clock() - start)
                self._check_op_deadline(op_deadline, "query_many",
                                        bump=len(keys))
                continue
            except _TRANSIENT as exc:
                self._note_failure(replica, exc)
                replica.breaker.record_failure(clock() - start)
                continue
            self._note_ok(replica)
            replica.breaker.record_success(clock() - start)
            ok = np.ones(len(keys), dtype=bool)
            if isinstance(result, BulkResult):
                values = result.values
                for failure in result.failures:
                    ok[failure.index] = False
            else:
                values = np.asarray(result, dtype=np.int64)
            best = np.where(ok, np.maximum(best, values), best)
            answered += ok
        self._bump(len(keys))
        self._maybe_tick()
        short = int((answered < needed).sum())
        if short:
            self._counter("unavailable").inc()
            raise Unavailable(
                f"query_many: {short} of {len(keys)} key(s) fell short "
                f"of {needed} fresh answer(s)", needed=needed,
                got=int(answered.min()) if len(keys) else 0)
        return best

    def insert_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        return self._bulk_write("insert", keys, counts)

    def delete_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        return self._bulk_write("delete", keys, counts)

    def _bulk_write(self, verb: str, keys: Sequence[object],
                    counts: Sequence[int] | None) -> BulkResult:
        keys = list(keys)
        counts = [1] * len(keys) if counts is None \
            else [int(c) for c in counts]
        if len(counts) != len(keys):
            raise ValueError(f"got {len(keys)} keys but {len(counts)} "
                             f"counts")
        op_deadline = current_deadline()
        clock = self.metrics.clock
        if op_deadline is not None:
            self._check_op_deadline(op_deadline, f"{verb}_many")
        applied = np.zeros(len(keys), dtype=np.int64)
        semantic: dict[int, Exception] = {}
        missed: list[tuple[_Replica, list[int] | None]] = []
        for replica in self._ordered(self._replicas):
            if not replica.up or not replica.breaker.allow():
                missed.append((replica, None))
                continue
            if op_deadline is not None and op_deadline.remaining() <= 0.0:
                missed.append((replica, None))
                continue
            start = clock()
            try:
                with deadline_scope(op_deadline):
                    result = getattr(replica.handle, f"{verb}_many")(
                        keys, counts)
            except DeadlineExceeded:
                replica.breaker.record_failure(clock() - start)
                self._counter("write_abandons").inc()
                missed.append((replica, None))
                continue
            except _TRANSIENT as exc:
                self._note_failure(replica, exc)
                replica.breaker.record_failure(clock() - start)
                missed.append((replica, None))
                continue
            except (ValueError, TypeError) as exc:
                # Local bulk apply is all-or-nothing: the whole batch was
                # rejected before mutating anything.
                self._note_ok(replica)
                replica.breaker.record_success(clock() - start)
                for idx in range(len(keys)):
                    semantic.setdefault(idx, exc)
                continue
            self._note_ok(replica)
            replica.breaker.record_success(clock() - start)
            ok = np.ones(len(keys), dtype=np.int64)
            if isinstance(result, BulkResult):
                retry_idx = []
                for failure in result.failures:
                    ok[failure.index] = 0
                    if failure.retryable:
                        retry_idx.append(failure.index)
                    else:
                        semantic.setdefault(failure.index, failure.error)
                if retry_idx:
                    missed.append((replica, retry_idx))
            applied += ok
        self._bump(len(keys))
        failures: list[BulkFailure] = []
        acked = set()
        for idx, key in enumerate(keys):
            if idx in semantic:
                failures.append(BulkFailure(idx, key, semantic[idx],
                                            retryable=False))
            elif int(applied[idx]) < self._write_needed:
                self._counter("unavailable").inc()
                failures.append(BulkFailure(idx, key, Unavailable(
                    f"{verb} {key!r}: {int(applied[idx])} of the "
                    f"required {self._write_needed} replica(s) applied",
                    needed=self._write_needed, got=int(applied[idx])),
                    retryable=True))
            else:
                acked.add(idx)
        for replica, indices in missed:
            indices = range(len(keys)) if indices is None else indices
            hint_idx = [i for i in indices if i in acked]
            if not hint_idx:
                continue
            replica.hints.append_many(verb, [keys[i] for i in hint_idx],
                                      [counts[i] for i in hint_idx])
            replica.gauges.hint_depth.set(len(replica.hints))
            self._counter("hinted").inc(len(hint_idx))
        self._maybe_tick()
        return BulkResult(len(keys), None, failures)

    # -- health: probes, handoff, re-admission -----------------------------
    def tick(self) -> int:
        """Probe every unhealthy replica once; returns how many rejoined.

        Unhealthy means ejected, flagged for repair, up with pending
        hints (a transient write failure, or durable hints recovered
        after a coordinator restart), or up with a non-closed circuit
        breaker (a slow-but-alive replica the latency trip shed) —
        handoff must not wait for an ejection.  Called automatically
        every ``probe_every`` operations and by the engine's maintenance
        hook — call it directly after healing a partition to re-admit
        replicas without waiting for traffic.
        """
        self._last_probe = self._ops
        rejoined = 0
        for replica in self._replicas:
            if replica.up and self._fresh(replica) \
                    and replica.breaker.state == CLOSED:
                continue
            was_down = not replica.up
            if self._probe(replica) and was_down:
                rejoined += 1
        return rejoined

    def _probe(self, replica: _Replica) -> bool:
        """One probe of an unhealthy replica: reachability, handoff,
        proof of convergence, (re-)admission — in that order.

        The breaker gates the probe (an open breaker sheds probes too,
        until ``reset_timeout`` passes and it half-opens) and judges the
        probe's own reachability latency: a replica that converged but
        still answers slowly re-opens and stays out.
        """
        if not replica.breaker.allow():
            return False
        self._counter("probes").inc()
        handle = replica.handle
        clock = self.metrics.clock
        start = clock()
        try:
            handle.total_count
        except _TRANSIENT:
            # Unreachable: the ejection machinery owns dead replicas.
            # Probe outcomes stay out of the breaker window — it is a
            # traffic-path instrument, and letting failed probes trip it
            # would wall off re-admission behind the reset timeout.
            return False
        reach_latency = clock() - start
        try:
            landed = replica.hints.drain(
                lambda verb, key, count:
                getattr(handle, verb)(key, count))
        except Exception:
            # Died mid-handoff: undrained hints (and the failing one)
            # stay queued for the next probe.
            replica.gauges.hint_depth.set(len(replica.hints))
            return False
        replica.gauges.hint_depth.set(len(replica.hints))
        if landed:
            self._counter("handoffs").inc(landed)
        # Re-admission requires *proof* of convergence: the replica's
        # total must match a fresh peer's.  (Exact, not probabilistic —
        # every acknowledged op moved the fresh peer's total.)  A replica
        # that cannot be proven converged stays out for repair().
        peer = next((r for r in self._replicas
                     if r is not replica and self._fresh(r)), None)
        if peer is not None:
            try:
                if handle.total_count != peer.handle.total_count:
                    replica.needs_repair = True
                    return False
            except _TRANSIENT:
                return False
        # A half-open breaker closes on a fast probe and re-opens on a
        # slow one (judged on this probe's latency, not the sick EWMA).
        replica.breaker.record_success(reach_latency)
        if replica.breaker.state != CLOSED:
            return False
        was_down = not replica.up
        replica.up = True
        replica.failures = 0
        replica.needs_repair = False
        replica.gauges.up.set(1.0)
        if was_down:
            self._counter("readmissions").inc()
        return True

    def repair(self, *, n_blocks: int = DEFAULT_REPAIR_BLOCKS,
               ) -> RepairReport:
        """Run one anti-entropy pass over the replicas and re-admit
        every replica the pass converged (see :mod:`repro.serve.repair`).

        The reference is the fresh replica with the largest total count
        — the one that saw every acknowledged write.  Repaired replicas
        have their hint queues cleared (the counter copy subsumes them)
        and their ``last_repair`` gauge stamped from the registry clock.
        """
        reference = None
        best = -1
        for idx, replica in enumerate(self._replicas):
            if not self._fresh(replica):
                continue
            try:
                total = replica.handle.total_count
            except _TRANSIENT:
                continue
            if total > best:
                reference, best = idx, total
        report = repair_replicas([r.handle for r in self._replicas],
                                 n_blocks=n_blocks, reference=reference)
        now = self.metrics.clock()
        touched = {report.reference, *report.scanned}
        for idx, replica in enumerate(self._replicas):
            if idx not in touched:
                continue
            replica.hints.clear()
            replica.gauges.hint_depth.set(0)
            replica.needs_repair = False
            replica.failures = 0
            if not replica.up:
                replica.up = True
                replica.gauges.up.set(1.0)
                self._counter("readmissions").inc()
            replica.gauges.last_repair.set(now)
        self._counter("repairs").inc()
        return report

    # -- fleet plumbing (router/batcher/engine hooks) ----------------------
    @contextmanager
    def exclusive(self, timeout: float | None = None,
                  ) -> Iterator["ReplicaSet"]:
        """Batching hook: yields self — replication must see every
        operation, so batches run through the set's own surface (each
        replica holds its own locks per call)."""
        yield self

    def add_operations(self, n: int) -> None:
        """Batching hook: operations already counted per replica call."""

    def checkpoint(self) -> list:
        """Checkpoint every up replica; returns their results in replica
        order (``None`` placeholders for ejected replicas)."""
        results = []
        for replica in self._replicas:
            results.append(replica.handle.checkpoint()
                           if replica.up else None)
        return results

    def close(self) -> None:
        """Release durable hint logs (replica handles stay open)."""
        for replica in self._replicas:
            replica.hints.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = sum(r.up for r in self._replicas)
        return (f"ReplicaSet({self.name!r}, rf={self.rf}, up={up}, "
                f"read={self.read_consistency!r}, "
                f"write={self.write_consistency!r})")


def replicated_fleet(n_shards: int, m: int, k: int, *, rf: int = 3,
                     seed: int = 0, method: object = "ms",
                     backend: object = "array",
                     hash_family: object = "blocked",
                     read_consistency: str = QUORUM,
                     write_consistency: str = ONE,
                     eject_after: int = 3, probe_every: int = 64,
                     hint_dir: str | None = None,
                     stripes: int = 16, timeout: float = 5.0,
                     replica_factory: Callable[[int, int], object]
                     | None = None,
                     metrics: MetricsRegistry | None = None,
                     breaker: dict | None = None,
                     hedge: float | str | None = None,
                     retry_budget: RetryBudget | dict | None = None,
                     ) -> ShardedSBF:
    """A router whose every shard is an ``rf``-way :class:`ReplicaSet`.

    The HA serving topology in one call: ``n_shards`` logical shards,
    each replicated ``rf`` ways, behind the usual
    :class:`~repro.serve.router.ShardedSBF` routing (blocked hashing by
    default, so sharding stays transparent).  *replica_factory* builds
    replica ``r`` of shard ``s`` — return a
    :class:`~repro.serve.remote.RemoteShard` to place replicas behind
    the wire; the default builds local
    :class:`~repro.persist.ConcurrentSBF` handles.

    The gray-failure defenses pass straight through: *breaker* (a dict
    of :class:`~repro.serve.resilience.CircuitBreaker` options) and
    *hedge* apply to every replica set; *retry_budget* given as a dict
    builds one bucket per set, while a :class:`RetryBudget` instance is
    shared fleet-wide (one global cap on retry amplification).
    """
    if rf < 1:
        raise ValueError(f"rf must be >= 1, got {rf}")
    metrics = metrics or MetricsRegistry()
    shards = []
    for s in range(n_shards):
        replicas = []
        for r in range(rf):
            if replica_factory is not None:
                replicas.append(replica_factory(s, r))
            else:
                replicas.append(ConcurrentSBF(
                    SpectralBloomFilter(m, k, seed=seed, method=method,
                                        backend=backend,
                                        hash_family=hash_family),
                    stripes=stripes, timeout=timeout))
        shards.append(ReplicaSet(
            replicas, name=f"shard{s}",
            read_consistency=read_consistency,
            write_consistency=write_consistency,
            eject_after=eject_after, probe_every=probe_every,
            hint_dir=hint_dir, metrics=metrics,
            breaker=breaker, hedge=hedge,
            retry_budget=retry_budget))
    # Hand the router its routing family explicitly: a factory may have
    # placed every replica behind the wire, and without a local filter to
    # introspect the router would fall back to canonical-key routing —
    # losing the bit-identical-to-the-oracle property blocked hashing buys.
    family = make_family(hash_family, m, k, seed)
    if not isinstance(family, BlockedHashFamily):
        family = None
    return ShardedSBF(shards, metrics=metrics, family=family)
