"""Multi-process shard executor: one worker process per shard.

CPython serialises compute on the GIL, so an in-process fleet only ever
uses one core no matter how many shards it has.  :class:`ProcessShardPool`
moves each shard's filter into its own worker process and keeps the
existing serving surface in front of it:

- every traffic operation travels as the same checksummed
  :func:`~repro.core.serialize.seal_frame` request/response frames a
  :class:`~repro.serve.remote.RemoteShard` uses — in fact each pool shard
  *is* a ``RemoteShard`` whose transport endpoint is a worker pipe, so
  chunked bulk ops, :class:`~repro.serve.remote.BulkResult` partial
  failure, typed error mapping, deadline-aware channel legs and
  :class:`~repro.db.faults.FaultyNetwork` chaos all apply unchanged;
- a :class:`~repro.serve.router.ShardedSBF` over the pool's shards
  (exposed as :attr:`ProcessShardPool.router`) routes bit-identically to
  an in-process fleet — same blocked family, same ``block_of % n``
  assignment — so answers match the single-process oracle exactly;
- :meth:`ProcessShardPool.insert_many` / :meth:`~ProcessShardPool.query_many`
  are the *pipelined* bulk paths: one frame per owner shard is written to
  every worker pipe before any response is read, so workers compute
  concurrently (this is what makes throughput scale with cores, where a
  per-shard round-trip loop would still serialise on the parent);
  integer keys ride a binary fast path (little-endian int64 arrays in
  the frame payload) instead of JSON lists.

Worker state and crash recovery:

- **shared-memory counters** (``backend="numpy"``, methods ``ms``/``mi``):
  the worker's primary counter array is a ``uint64`` view over a
  :class:`multiprocessing.shared_memory.SharedMemory` segment owned by
  the parent, with the filter's ``total_count`` mirrored into the
  segment header after every request (uint64 counters never widen, so
  the view stays valid for the worker's lifetime).  A killed worker
  loses *nothing*: the replacement attaches the same segment and resumes
  from the exact counters the dead worker last acknowledged;
- **snapshot fallback** (any other method/backend — e.g. Recurring
  Minimum, whose secondary filter and marker bits cannot live in one
  flat segment): the parent keeps the latest
  :func:`~repro.core.serialize.dump_sbf` frame, refreshed after every
  acknowledged mutation while :attr:`ProcessShardPool.auto_snapshot` is
  on (the default), and restores the replacement worker from it.

Either way an operation in flight when the worker dies surfaces as a
typed, *retryable* :class:`~repro.db.transport.DeliveryFailed` — never a
wrong answer — and the pool re-spawns the worker on its next use,
counting ``engine.worker.<i>.restarts``.

Per-worker health is visible in the shared metrics registry:
``engine.worker.<i>.requests`` / ``failures`` / ``restarts`` counters
and an ``engine.worker.<i>.up`` gauge.
"""

from __future__ import annotations

import struct
import threading
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Sequence

import numpy as np

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (WireFormatError, dump_sbf, load_sbf,
                                  open_frame, seal_frame)
from repro.db.site import Network
from repro.db.transport import DeliveryFailed
from repro.hashing.blocked import BlockedHashFamily
from repro.hashing.families import make_family
from repro.persist.wal import SCALAR_KEY_TYPES
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import (REQUEST_MAGIC, RESPONSE_MAGIC, BulkFailure,
                                BulkResult, RemoteShard, RemoteShardError,
                                ShardServer)
from repro.serve.router import ShardedSBF

#: pool-administration frames (spawn handshake/snapshot/restore/shutdown)
#: — parent internals that never ride the simulated network
ADMIN_MAGIC = b"RPA1"
ADMIN_RESPONSE_MAGIC = b"RPB1"

#: shared-memory segment layout: int64 total_count, then the counters
_SHM_HEADER = 8

#: methods whose full shard state is the counter vector + total_count —
#: with the numpy backend it lives in shared memory for zero-loss respawn
_SHM_ELIGIBLE_METHODS = ("ms", "mi")

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def _shm_eligible(spec: dict) -> bool:
    return (spec["backend"] == "numpy"
            and spec["method"] in _SHM_ELIGIBLE_METHODS
            and not spec["method_options"])


def _build_filter(spec: dict, shm) -> SpectralBloomFilter:
    """Build a worker's filter, attaching the shared segment if present."""
    if shm is None:
        return SpectralBloomFilter(
            spec["m"], spec["k"], seed=spec["seed"], method=spec["method"],
            hash_family=spec["hash_family"], backend=spec["backend"],
            backend_options=spec["backend_options"] or None,
            method_options=spec["method_options"] or None)
    from repro.storage.backends import NumpyBackend
    backend = NumpyBackend(spec["m"], dtype=np.uint64)
    view = np.ndarray((spec["m"],), dtype=np.uint64, buffer=shm.buf,
                      offset=_SHM_HEADER)
    if spec["fresh"]:
        view[:] = 0
        shm.buf[:_SHM_HEADER] = struct.pack("<q", 0)
    backend._counts = view
    sbf = SpectralBloomFilter(
        spec["m"], spec["k"], seed=spec["seed"], method=spec["method"],
        hash_family=spec["hash_family"], backend=backend,
        method_options=spec["method_options"] or None)
    if not spec["fresh"]:
        sbf.total_count = struct.unpack("<q", bytes(shm.buf[:_SHM_HEADER]))[0]
    return sbf


class PoolShardServer(ShardServer):
    """Shard server with the pool's frame extensions.

    Adds the binary bulk fast path (``meta["bin"]``: key/count batches as
    little-endian int64 arrays in the frame payload instead of JSON lists
    — the pipelined pool bulk uses it for integer keys) and binary
    ``query_many`` responses.  Everything else — verbs, error envelopes,
    validation — is the plain :class:`~repro.serve.remote.ShardServer`
    contract, so pool workers stay wire-compatible with every
    :class:`RemoteShard` client.
    """

    def __init__(self, handle):
        super().__init__(handle)
        self._payload = b""
        self._response_payload = b""

    def handle_frame(self, frame: bytes) -> bytes:
        try:
            meta, self._payload = open_frame(frame, REQUEST_MAGIC)
            self._response_payload = b""
            result = self._dispatch(meta)
        except Exception as exc:
            self.requests_failed += 1
            return seal_frame(RESPONSE_MAGIC,
                              {"ok": False, "kind": type(exc).__name__,
                               "error": str(exc)})
        self.requests_served += 1
        return seal_frame(RESPONSE_MAGIC, {"ok": True, "result": result},
                          self._response_payload)

    def _dispatch_bulk(self, op: str, meta: dict):
        n = meta.get("bin")
        if n is None:
            return super()._dispatch_bulk(op, meta)
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise WireFormatError(f"bin must be a count >= 0, got {n!r}")
        width = 8 * n
        expect = width if op == "query_many" else 2 * width
        if len(self._payload) != expect:
            raise WireFormatError(
                f"binary bulk payload is {len(self._payload)} bytes, "
                f"expected {expect} for {n} key(s)")
        keys = np.frombuffer(self._payload[:width], dtype="<i8")
        if op == "query_many":
            values = np.asarray(self.handle.query_many(keys), dtype=np.int64)
            self._response_payload = values.astype("<i8").tobytes()
            return "bin"
        counts = np.frombuffer(self._payload[width:], dtype="<i8")
        if counts.size and int(counts.min()) < 0:
            raise WireFormatError(
                f"bulk op {op!r} needs counts >= 0, got {int(counts.min())}")
        if op == "insert_many":
            self.handle.insert_many(keys, counts)
        else:
            self.handle.delete_many(keys, counts)
        return n


def _worker_admin(server: PoolShardServer, frame: bytes,
                  ) -> tuple[bool, bytes]:
    """Handle one admin frame; returns ``(shutdown?, response frame)``."""
    try:
        meta, payload = open_frame(frame, ADMIN_MAGIC)
        op = meta.get("op")
        if op == "shutdown":
            return True, seal_frame(ADMIN_RESPONSE_MAGIC, {"ok": True})
        if op == "ping":
            return False, seal_frame(ADMIN_RESPONSE_MAGIC, {"ok": True})
        if op == "snapshot":
            return False, seal_frame(ADMIN_RESPONSE_MAGIC, {"ok": True},
                                     dump_sbf(server.handle))
        if op == "restore":
            server.handle = load_sbf(payload)
            return False, seal_frame(ADMIN_RESPONSE_MAGIC, {"ok": True})
        raise WireFormatError(f"unknown pool admin op {op!r}")
    except Exception as exc:
        return False, seal_frame(
            ADMIN_RESPONSE_MAGIC,
            {"ok": False, "kind": type(exc).__name__, "error": str(exc)})


def _worker_main(conn, spec: dict) -> None:
    """Worker process entry point: serve frames until told to shut down."""
    shm = None
    if spec.get("shm_name"):
        shm = shared_memory.SharedMemory(name=spec["shm_name"])
    try:
        server = PoolShardServer(_build_filter(spec, shm))
        conn.send_bytes(seal_frame(ADMIN_RESPONSE_MAGIC, {"ok": True}))
        while True:
            try:
                frame = conn.recv_bytes()
            except EOFError:
                break
            if frame[:4] == ADMIN_MAGIC:
                done, response = _worker_admin(server, frame)
                conn.send_bytes(response)
                if done:
                    break
                continue
            conn.send_bytes(server.handle_frame(frame))
            if shm is not None:
                shm.buf[:_SHM_HEADER] = struct.pack(
                    "<q", server.handle.total_count)
    except (KeyboardInterrupt, BrokenPipeError, OSError):
        pass  # parent teardown — nobody left to report to
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class _PipeEndpoint:
    """Parent-side transport endpoint: ``handle_frame`` over a worker pipe.

    Slots into :class:`RemoteShard` where the in-process
    :class:`ShardServer` normally sits, so the whole client stack —
    channels, retries, bulk chunking, typed error mapping — is reused
    verbatim.  A broken pipe (the worker died) surfaces as a retryable
    :class:`DeliveryFailed` and flags the worker for re-spawn.
    """

    __slots__ = ("_pool", "_index")

    def __init__(self, pool: "ProcessShardPool", index: int):
        self._pool = pool
        self._index = index

    def handle_frame(self, frame: bytes) -> bytes:
        return self._pool._roundtrip(self._index, frame)


class ProcessShard(RemoteShard):
    """One pool shard: the full RemoteShard surface over a worker process."""

    def __init__(self, pool: "ProcessShardPool", index: int, **kwargs):
        super().__init__(_PipeEndpoint(pool, index), **kwargs)
        self._pool = pool
        self._index = index

    def _call(self, op: str, **fields):
        result = super()._call(op, **fields)
        if op in ("insert", "delete", "set", "insert_many", "delete_many",
                  "writeblocks"):
            self._pool._note_mutation(self._index)
        return result

    def checkpoint(self):
        """Refresh the parent-held snapshot.  (Shared-memory shards need
        none — the parent's segment *is* the live state.)"""
        self._pool.snapshot_shard(self._index)
        return None


class _Worker:
    """Parent-side book-keeping for one worker process."""

    __slots__ = ("process", "conn", "lock", "alive", "shm", "snapshot")

    def __init__(self):
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.alive = False
        self.shm = None
        self.snapshot = None


class ProcessShardPool:
    """A fleet of single-shard worker processes behind the shard surface.

    Args:
        n_workers: shard/worker count.
        m, k, seed, method, backend, hash_family, backend_options,
            method_options: per-shard filter parameters — every worker
            builds the same geometry, exactly like
            :meth:`ShardedSBF.create`.  *hash_family* must be a name
            (workers rebuild the family from the picklable spec).
        network: transmission substrate for the traffic frames —
            defaults to a clean :class:`~repro.db.site.Network`; pass a
            :class:`~repro.db.faults.FaultyNetwork` for chaos testing.
        auto_snapshot: keep the parent-held snapshot fresh after every
            acknowledged mutation on shards whose state is *not* in
            shared memory (shared-memory shards never need it).  Turn
            off to trade respawn fidelity for mutation latency.
        auto_revive: re-spawn a dead worker automatically on its next
            use (the default).  Turn off when an external supervisor
            owns restarts: a dead worker's operations then keep failing
            with typed retryable :class:`DeliveryFailed` until
            :meth:`revive_worker` is called.
        metrics: shared registry; per-worker series appear under
            ``engine.worker.<i>.*``.
        mp_context: multiprocessing start method (default: ``fork``
            where available, else ``spawn``).
        channel_options / bulk_chunk: forwarded to each
            :class:`ProcessShard`'s channel legs.

    The pool is a context manager; :meth:`close` drains and joins every
    worker and releases the shared-memory segments.  :attr:`router` is a
    ready-made :class:`ShardedSBF` over the pool's shards for point
    traffic and engine wiring; the pool's own ``*_many`` methods are the
    pipelined bulk paths.
    """

    def __init__(self, n_workers: int, m: int, k: int, *, seed: int = 0,
                 method: str = "ms", backend: str = "numpy",
                 hash_family: str = "blocked",
                 backend_options: dict | None = None,
                 method_options: dict | None = None,
                 network: Network | None = None,
                 auto_snapshot: bool = True,
                 auto_revive: bool = True,
                 metrics: MetricsRegistry | None = None,
                 mp_context: str | None = None,
                 channel_options: dict | None = None,
                 bulk_chunk: int | None = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not isinstance(hash_family, str):
            raise ValueError(
                "ProcessShardPool needs a hash-family *name* (workers "
                f"rebuild it from the picklable spec), got {hash_family!r}")
        if mp_context is None:
            mp_context = ("fork" if "fork" in get_all_start_methods()
                          else "spawn")
        self._ctx = get_context(mp_context)
        self.metrics = metrics or MetricsRegistry()
        self.network = network or Network()
        self.auto_snapshot = bool(auto_snapshot)
        self.auto_revive = bool(auto_revive)
        self._spec = {
            "m": int(m), "k": int(k), "seed": int(seed),
            "method": str(method), "backend": str(backend),
            "hash_family": hash_family,
            "backend_options": dict(backend_options or {}),
            "method_options": dict(method_options or {}),
        }
        self._workers = [_Worker() for _ in range(n_workers)]
        self._closed = False
        self.shards: list[ProcessShard] = []
        shard_kwargs = {"network": self.network, "metrics": self.metrics,
                        "client": "pool",
                        "channel_options": channel_options}
        if bulk_chunk is not None:
            shard_kwargs["bulk_chunk"] = bulk_chunk
        try:
            for i in range(n_workers):
                self._spawn(i, fresh=True)
                self.shards.append(ProcessShard(
                    self, i, server_name=f"worker-{i}", **shard_kwargs))
        except BaseException:
            self.close()
            raise
        # The routing brain: identical shard assignment to an in-process
        # fleet over the same family (explicit, because a process fleet
        # has no local filter for the router to introspect).
        family = make_family(hash_family, int(m), int(k), seed=int(seed))
        self.family = family if isinstance(family, BlockedHashFamily) \
            else None
        self.router = ShardedSBF(self.shards, family=self.family,
                                 metrics=self.metrics)

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self, index: int, *, fresh: bool) -> None:
        worker = self._workers[index]
        spec = dict(self._spec)
        spec["fresh"] = fresh
        if _shm_eligible(self._spec):
            if worker.shm is None:
                worker.shm = shared_memory.SharedMemory(
                    create=True, size=_SHM_HEADER + 8 * self._spec["m"])
            spec["shm_name"] = worker.shm.name
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, spec),
            name=f"sbf-shard-{index}", daemon=True)
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        # Spawn handshake: the worker acks once its filter is built, so a
        # bad spec fails the constructor instead of the first request.
        meta, _ = open_frame(parent_conn.recv_bytes(), ADMIN_RESPONSE_MAGIC)
        if not meta.get("ok"):  # pragma: no cover - defensive
            raise RuntimeError(f"worker {index} failed to start: {meta}")
        worker.alive = True
        self.metrics.gauge(f"engine.worker.{index}.up").set(1)

    def _revive(self, index: int, *, force: bool = False) -> None:
        """Re-spawn a dead worker and restore its state (caller holds the
        worker lock)."""
        worker = self._workers[index]
        if worker.alive or self._closed or not (self.auto_revive or force):
            return
        if worker.process is not None:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        if worker.conn is not None:
            worker.conn.close()
        self._spawn(index, fresh=False)
        if worker.shm is None and worker.snapshot is not None:
            meta, _ = self._admin(index, {"op": "restore"}, worker.snapshot)
            if not meta.get("ok"):  # pragma: no cover - defensive
                raise RuntimeError(f"worker {index} failed to restore: "
                                   f"{meta}")
        self.metrics.counter(f"engine.worker.{index}.restarts").inc()

    def close(self) -> None:
        """Graceful drain: shut every worker down, join, release memory.

        Each worker pipe is strictly request/response under its lock, so
        once the lock is held there is no in-flight work to wait for —
        shutdown is sent, acknowledged, and the process joined.  Safe to
        call twice.
        """
        self._closed = True
        for index, worker in enumerate(self._workers):
            with worker.lock:
                if worker.alive and worker.process.is_alive():
                    try:
                        worker.conn.send_bytes(
                            seal_frame(ADMIN_MAGIC, {"op": "shutdown"}))
                        worker.conn.recv_bytes()
                    except (OSError, EOFError):  # pragma: no cover
                        pass
                worker.alive = False
                if worker.process is not None:
                    worker.process.join(timeout=2.0)
                    if worker.process.is_alive():  # pragma: no cover
                        worker.process.terminate()
                        worker.process.join(timeout=2.0)
                    worker.process = None
                if worker.conn is not None:
                    worker.conn.close()
                    worker.conn = None
                if worker.shm is not None:
                    worker.shm.close()
                    try:
                        worker.shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                    worker.shm = None
                self.metrics.gauge(f"engine.worker.{index}.up").set(0)

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- the pipe ----------------------------------------------------------
    def _delivery_failed(self, index: int, message: str) -> DeliveryFailed:
        """A typed delivery failure carrying the shard's request-channel
        stats (the same object a channel give-up would attach)."""
        return DeliveryFailed(message, self.shards[index].requests.stats)

    def _send_with_revive(self, index: int, frame: bytes) -> None:
        """Write one frame to worker *index* (caller holds the lock).

        A *send* failure means the request never reached the worker, so
        one revive + resend is safe — no operation can double-apply.
        (Failures after the send are the caller's to surface: the worker
        may have applied the operation before dying.)
        """
        worker = self._workers[index]
        for attempt in (0, 1):
            if not worker.alive:
                self._revive(index)
            try:
                worker.conn.send_bytes(frame)
                return
            except (OSError, EOFError, BrokenPipeError) as exc:
                self._mark_dead(index)
                if attempt:
                    raise self._delivery_failed(
                        index, f"worker {index} died before accepting the "
                        f"request: {type(exc).__name__}") from exc

    def _roundtrip(self, index: int, frame: bytes) -> bytes:
        """One traffic frame to worker *index* (reviving it if needed)."""
        worker = self._workers[index]
        with worker.lock:
            self.metrics.counter(f"engine.worker.{index}.requests").inc()
            self._send_with_revive(index, frame)
            try:
                return worker.conn.recv_bytes()
            except (OSError, EOFError) as exc:
                self._mark_dead(index)
                raise self._delivery_failed(
                    index, f"worker {index} died mid-request: "
                    f"{type(exc).__name__}") from exc

    def _admin(self, index: int, meta: dict,
               payload: bytes = b"") -> tuple[dict, bytes]:
        """One admin round trip (caller holds the worker lock, or is the
        single-threaded spawn path)."""
        worker = self._workers[index]
        worker.conn.send_bytes(seal_frame(ADMIN_MAGIC, meta, payload))
        return open_frame(worker.conn.recv_bytes(), ADMIN_RESPONSE_MAGIC)

    def _mark_dead(self, index: int) -> None:
        worker = self._workers[index]
        worker.alive = False
        self.metrics.counter(f"engine.worker.{index}.failures").inc()
        self.metrics.gauge(f"engine.worker.{index}.up").set(0)

    # -- snapshots ---------------------------------------------------------
    def _note_mutation(self, index: int) -> None:
        if self._workers[index].shm is None and self.auto_snapshot:
            try:
                self.snapshot_shard(index)
            except DeliveryFailed:
                # The mutation itself was acknowledged; a worker dying
                # right after is the next operation's problem (metrics
                # already count the failure).
                pass

    def snapshot_shard(self, index: int) -> None:
        """Pull a fresh state snapshot from worker *index* (no-op for
        shared-memory shards, whose live state the parent already owns)."""
        worker = self._workers[index]
        if worker.shm is not None:
            return
        with worker.lock:
            if not worker.alive:
                return
            try:
                meta, payload = self._admin(index, {"op": "snapshot"})
            except (OSError, EOFError) as exc:
                self._mark_dead(index)
                raise self._delivery_failed(
                    index,
                    f"worker {index} died during snapshot") from exc
        if meta.get("ok"):
            worker.snapshot = payload

    # -- pipelined bulk ----------------------------------------------------
    def insert_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        """Pipelined fleet-wide bulk insert (see module docstring)."""
        return self._pipelined("insert_many", keys, counts)

    def delete_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        return self._pipelined("delete_many", keys, counts)

    def query_many(self, keys: Sequence[object]) -> BulkResult:
        """Pipelined fleet-wide bulk query; ``values`` in key order."""
        return self._pipelined("query_many", keys, None)

    def _pipelined(self, op: str, keys: Sequence[object],
                   counts: Sequence[int] | None) -> BulkResult:
        keys = list(keys)
        n = len(keys)
        if counts is None:
            counts = [1] * n
        else:
            counts = [int(c) for c in counts]
            if len(counts) != n:
                raise ValueError(f"got {n} keys but {len(counts)} counts")
        is_query = op == "query_many"
        values = np.zeros(n, dtype=np.int64) if is_query else None
        failures: list[BulkFailure] = []
        valid: list[int] = []
        for idx, key in enumerate(keys):
            if isinstance(key, SCALAR_KEY_TYPES):
                valid.append(idx)
            else:
                failures.append(BulkFailure(idx, key, TypeError(
                    f"remote-shard keys must be JSON scalars "
                    f"(str/int/float/bool/None), got "
                    f"{type(key).__name__}"), retryable=False))
        owners = self.router.shard_of_many([keys[i] for i in valid])
        groups: dict[int, list[int]] = {}
        for idx, owner in zip(valid, owners):
            groups.setdefault(owner, []).append(idx)
        # Phase 1: one frame per owner shard, written to every worker
        # pipe before any response is read — the workers overlap their
        # compute.  `sent` tracks pipes with a frame in flight; their
        # locks stay held until phase 2 collects the response.
        sent: list[int] = []
        answers: dict[int, object] = {}
        try:
            for owner in sorted(groups):
                idxs = groups[owner]
                frame = self._bulk_frame(
                    op, [keys[i] for i in idxs],
                    None if is_query else [counts[i] for i in idxs])
                worker = self._workers[owner]
                worker.lock.acquire()
                try:
                    self.metrics.counter(
                        f"engine.worker.{owner}.requests").inc()
                    self._send_with_revive(owner, frame)
                except Exception as exc:
                    worker.lock.release()
                    if not isinstance(exc, DeliveryFailed):
                        self._mark_dead(owner)
                        exc = self._delivery_failed(
                            owner, f"worker {owner} unavailable: "
                            f"{type(exc).__name__}: {exc}")
                    failures.extend(BulkFailure(i, keys[i], exc, True)
                                    for i in idxs)
                    continue
                sent.append(owner)
            # Phase 2: collect, in send order (each pipe is FIFO).
            for owner in list(sent):
                worker = self._workers[owner]
                try:
                    answers[owner] = worker.conn.recv_bytes()
                except (OSError, EOFError) as exc:
                    self._mark_dead(owner)
                    answers[owner] = self._delivery_failed(
                        owner, f"worker {owner} died mid-batch: "
                        f"{type(exc).__name__}")
                finally:
                    worker.lock.release()
                    sent.remove(owner)
        finally:
            for owner in sent:  # pragma: no cover - unexpected error path
                self._workers[owner].lock.release()
        for owner, answer in answers.items():
            idxs = groups[owner]
            if isinstance(answer, Exception):
                failures.extend(BulkFailure(i, keys[i], answer, True)
                                for i in idxs)
                continue
            meta, payload = open_frame(answer, RESPONSE_MAGIC)
            if not meta.get("ok"):
                kind = meta.get("kind")
                error_text = meta.get("error", "remote failure")
                error: Exception
                if kind in ("ValueError", "WireFormatError"):
                    error = ValueError(f"worker-{owner}: {error_text}")
                else:
                    error = RemoteShardError(
                        f"worker-{owner}: {kind}: {error_text}")
                failures.extend(BulkFailure(i, keys[i], error, False)
                                for i in idxs)
                continue
            if is_query:
                if meta.get("result") == "bin":
                    got = np.frombuffer(payload, dtype="<i8")
                else:
                    got = np.asarray(meta.get("result"), dtype=np.int64)
                values[idxs] = got
            else:
                self._note_mutation(owner)
        failures.sort(key=lambda f: f.index)
        return BulkResult(n, values, failures)

    def _bulk_frame(self, op: str, keys: list, counts: list | None) -> bytes:
        """Seal one bulk request: binary int64 payload when every key is a
        plain in-range integer, the JSON list form otherwise."""
        if keys and all(type(k) is int and _INT64_MIN <= k <= _INT64_MAX
                        for k in keys):
            payload = np.asarray(keys, dtype="<i8").tobytes()
            if counts is not None:
                payload += np.asarray(counts, dtype="<i8").tobytes()
            return seal_frame(REQUEST_MAGIC, {"op": op, "bin": len(keys)},
                              payload)
        fields = {"op": op, "keys": keys}
        if counts is not None:
            fields["counts"] = counts
        return seal_frame(REQUEST_MAGIC, fields)

    # -- introspection -----------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def total_count(self) -> int:
        return self.router.total_count

    def worker_alive(self, index: int) -> bool:
        worker = self._workers[index]
        return bool(worker.alive and worker.process is not None
                    and worker.process.is_alive())

    def revive_worker(self, index: int) -> None:
        """Re-spawn worker *index* now (the supervisor hook that pairs
        with ``auto_revive=False``)."""
        with self._workers[index].lock:
            self._revive(index, force=True)

    def kill_worker(self, index: int) -> None:
        """Hard-kill worker *index* (chaos hook: SIGKILL, no cleanup —
        exactly what a crashed or OOM-killed worker looks like)."""
        worker = self._workers[index]
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = sum(1 for i in range(self.n_workers) if self.worker_alive(i))
        return (f"ProcessShardPool(workers={self.n_workers}, up={up}, "
                f"method={self._spec['method']!r}, "
                f"backend={self._spec['backend']!r})")
