"""Serving a shard across the wire: request/response over ReliableChannel.

A fleet need not be co-located: :class:`RemoteShard` is a drop-in shard
adapter that forwards operations to a :class:`ShardServer` through the
PR-1 transport stack — every request and response travels as a
checksummed :func:`~repro.core.serialize.seal_frame` frame inside a
:class:`~repro.db.transport.ReliableChannel` envelope, so dropped,
duplicated, reordered, and bit-flipped frames are retried and detected
exactly as filter summaries are.

Degradation follows the existing contract: when either leg exhausts its
retry budget, the channel's :class:`~repro.db.transport.DeliveryFailed`
propagates out of the operation.  Inside a
:class:`~repro.serve.engine.ServingEngine` that failure lands in the one
affected request's future (the batcher isolates per-op failures), so an
unreachable shard degrades that shard's keys — the rest of the fleet
keeps serving.

Keys must be JSON scalars (the WAL's :data:`~repro.persist.wal.SCALAR_KEY_TYPES`
discipline — the request header is JSON, so richer keys would not
round-trip faithfully).

Both channels' :class:`~repro.db.transport.ChannelStats` are attached to
the metrics registry, so transport health is visible in the same
``snapshot()`` as serving throughput.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Iterator

from repro.core.serialize import WireFormatError, open_frame, seal_frame
from repro.db.site import Network
from repro.db.transport import ReliableChannel
from repro.persist.wal import SCALAR_KEY_TYPES
from repro.serve.metrics import MetricsRegistry

#: remote-shard frame magics ("Repro Shard reQuest / resPonse v1")
REQUEST_MAGIC = b"RSQ1"
RESPONSE_MAGIC = b"RSP1"

#: verbs a shard server answers
_SERVER_VERBS = frozenset({"insert", "delete", "set", "query", "contains",
                           "total_count", "params", "checkpoint"})


class RemoteShardError(RuntimeError):
    """The server reported a failure the client cannot type more precisely."""


def _validate_request(payload: bytes) -> None:
    open_frame(payload, REQUEST_MAGIC)


def _validate_response(payload: bytes) -> None:
    open_frame(payload, RESPONSE_MAGIC)


class ShardServer:
    """Server side: owns a shard handle and answers one request frame.

    *handle* is any local serving handle — a
    :class:`~repro.persist.ConcurrentSBF` (typical: it brings its own
    locking) or a bare :class:`~repro.persist.DurableSBF` /
    :class:`~repro.core.sbf.SpectralBloomFilter`.
    """

    def __init__(self, handle):
        self.handle = handle
        self.requests_served = 0
        self.requests_failed = 0

    def handle_frame(self, frame: bytes) -> bytes:
        """Execute one request frame; returns the response frame.

        Server-side failures never crash the server: they come back as
        ``ok=false`` responses carrying the exception kind and message, so
        the client re-raises a faithful local exception.
        """
        try:
            meta, _ = open_frame(frame, REQUEST_MAGIC)
            result = self._dispatch(meta)
        except Exception as exc:
            self.requests_failed += 1
            return seal_frame(RESPONSE_MAGIC,
                              {"ok": False, "kind": type(exc).__name__,
                               "error": str(exc)})
        self.requests_served += 1
        return seal_frame(RESPONSE_MAGIC, {"ok": True, "result": result})

    def _dispatch(self, meta: dict):
        op = meta.get("op")
        if op not in _SERVER_VERBS:
            raise WireFormatError(f"unknown remote-shard op {op!r}")
        handle = self.handle
        if op == "total_count":
            return handle.total_count
        if op == "params":
            sbf = getattr(handle, "sbf", handle)
            return {"m": sbf.m, "k": sbf.k, "seed": sbf.seed,
                    "method": sbf.method.name}
        if op == "checkpoint":
            result = handle.checkpoint()
            return result if isinstance(result, str) else None
        key = meta.get("key")
        if not isinstance(key, SCALAR_KEY_TYPES):
            raise WireFormatError(
                f"remote-shard keys must be JSON scalars, got "
                f"{type(key).__name__}")
        if op == "query":
            return handle.query(key)
        if op == "contains":
            return handle.contains(key, int(meta.get("threshold", 1)))
        count = meta.get("count", 1)
        if not isinstance(count, int) or isinstance(count, bool):
            raise WireFormatError(f"count must be an integer, got {count!r}")
        if op == "insert":
            handle.insert(key, count)
        elif op == "delete":
            handle.delete(key, count)
        else:  # set
            _set_on(handle, key, count)
        return None


def _set_on(handle, key, count: int) -> None:
    if hasattr(handle, "set"):
        handle.set(key, count)
        return
    current = handle.query(key)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count > current:
        handle.insert(key, count - current)
    elif count < current:
        handle.delete(key, current - count)


class RemoteShard:
    """Client side: the shard surface, served over two reliable channels.

    Fits anywhere a local shard does — in a
    :class:`~repro.serve.router.ShardedSBF` shard list, under the
    batcher — with :meth:`exclusive` degenerating to a no-op (the server
    side holds the real locks; remote ops are one round trip each).

    Args:
        server: the :class:`ShardServer` reachable through *network* (the
            simulation keeps it in-process; the frames still cross the
            faulty wire both ways).
        network: transmission substrate, possibly a
            :class:`~repro.db.faults.FaultyNetwork`.
        client / server_name: endpoint names for traffic accounting.
        channel_options: forwarded to both :class:`ReliableChannel` legs
            (retry budget, backoff, jitter).
        metrics: registry the channel stats are attached to.
    """

    def __init__(self, server: ShardServer, network: Network,
                 client: str, server_name: str, *,
                 channel_options: dict | None = None,
                 metrics: MetricsRegistry | None = None):
        options = dict(channel_options or {})
        options.setdefault("seed", zlib.crc32(
            f"{client}->{server_name}".encode("utf-8")))
        self.server = server
        self.client = client
        self.server_name = server_name
        self.requests = ReliableChannel(network, client, server_name,
                                        validator=_validate_request,
                                        **options)
        options["seed"] = zlib.crc32(
            f"{server_name}->{client}".encode("utf-8"))
        self.responses = ReliableChannel(network, server_name, client,
                                         validator=_validate_response,
                                         **options)
        self.metrics = metrics or MetricsRegistry()
        self.metrics.attach_channel(f"remote.{server_name}.requests",
                                    self.requests.stats)
        self.metrics.attach_channel(f"remote.{server_name}.responses",
                                    self.responses.stats)

    # -- the wire ----------------------------------------------------------
    def _call(self, op: str, **fields):
        """One request/response round trip.

        Raises:
            DeliveryFailed: a leg exhausted its retry budget — the caller
                (router/batcher/engine) degrades per the PR-1 contract.
            ValueError: the server rejected the operation (re-raised with
                its original type where the client can reconstruct it).
        """
        frame = seal_frame(REQUEST_MAGIC, {"op": op, **fields})
        delivered = self.requests.send(f"shard-{op}", frame)
        response = self.server.handle_frame(delivered)
        answer = self.responses.send(f"shard-{op}-reply", response)
        meta, _ = open_frame(answer, RESPONSE_MAGIC)
        if meta.get("ok"):
            return meta.get("result")
        kind, error = meta.get("kind"), meta.get("error", "remote failure")
        if kind in ("ValueError", "WireFormatError"):
            raise ValueError(f"{self.server_name}: {error}")
        if kind == "LockTimeout":
            from repro.persist import LockTimeout
            raise LockTimeout(f"{self.server_name}: {error}")
        raise RemoteShardError(f"{self.server_name}: {kind}: {error}")

    @staticmethod
    def _scalar(key: object) -> object:
        if not isinstance(key, SCALAR_KEY_TYPES):
            raise TypeError(
                f"remote-shard keys must be JSON scalars "
                f"(str/int/float/bool/None), got {type(key).__name__}")
        return key

    # -- the shard surface -------------------------------------------------
    def insert(self, key: object, count: int = 1) -> None:
        self._call("insert", key=self._scalar(key), count=count)

    def delete(self, key: object, count: int = 1) -> None:
        self._call("delete", key=self._scalar(key), count=count)

    def set(self, key: object, count: int) -> None:
        self._call("set", key=self._scalar(key), count=count)

    def query(self, key: object) -> int:
        return self._call("query", key=self._scalar(key))

    def contains(self, key: object, threshold: int = 1) -> bool:
        return bool(self._call("contains", key=self._scalar(key),
                               threshold=threshold))

    @property
    def total_count(self) -> int:
        return self._call("total_count")

    def params(self) -> dict:
        """The remote filter's (m, k, seed, method) — compatibility info."""
        return self._call("params")

    def checkpoint(self):
        return self._call("checkpoint")

    @contextmanager
    def exclusive(self, timeout: float | None = None) -> Iterator["RemoteShard"]:
        """Batching hook: yields self — remote ops are each one round
        trip, serialised server-side, so there is nothing to hold here."""
        yield self

    def add_operations(self, n: int) -> None:
        """Batching hook: server-side accounting happens per request."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteShard({self.client!r} -> {self.server_name!r})"
