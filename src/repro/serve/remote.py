"""Serving a shard across the wire: request/response over ReliableChannel.

A fleet need not be co-located: :class:`RemoteShard` is a drop-in shard
adapter that forwards operations to a :class:`ShardServer` through the
PR-1 transport stack — every request and response travels as a
checksummed :func:`~repro.core.serialize.seal_frame` frame inside a
:class:`~repro.db.transport.ReliableChannel` envelope, so dropped,
duplicated, reordered, and bit-flipped frames are retried and detected
exactly as filter summaries are.

Degradation follows the existing contract: when either leg exhausts its
retry budget, the channel's :class:`~repro.db.transport.DeliveryFailed`
propagates out of the operation.  Inside a
:class:`~repro.serve.engine.ServingEngine` that failure lands in the one
affected request's future (the batcher isolates per-op failures), so an
unreachable shard degrades that shard's keys — the rest of the fleet
keeps serving.

Keys must be JSON scalars (the WAL's :data:`~repro.persist.wal.SCALAR_KEY_TYPES`
discipline — the request header is JSON, so richer keys would not
round-trip faithfully).

Both channels' :class:`~repro.db.transport.ChannelStats` are attached to
the metrics registry, so transport health is visible in the same
``snapshot()`` as serving throughput.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.core.serialize import WireFormatError, open_frame, seal_frame
from repro.db.site import Network
from repro.db.transport import DeliveryFailed, ReliableChannel
from repro.persist.wal import SCALAR_KEY_TYPES
from repro.serve import repair as _repair
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import current_deadline

#: remote-shard frame magics ("Repro Shard reQuest / resPonse v1")
REQUEST_MAGIC = b"RSQ1"
RESPONSE_MAGIC = b"RSP1"

#: verbs a shard server answers
_SERVER_VERBS = frozenset({"insert", "delete", "set", "query", "contains",
                           "total_count", "params", "checkpoint",
                           "insert_many", "delete_many", "query_many",
                           "blocksums", "readblocks", "writeblocks"})

#: bulk verbs whose request carries key/count batches
_BULK_VERBS = frozenset({"insert_many", "delete_many", "query_many"})

#: keys per request frame on the bulk path (one channel round trip each;
#: chunking bounds both frame size and the blast radius of one lost frame)
DEFAULT_BULK_CHUNK = 256


class RemoteShardError(RuntimeError):
    """The server reported a failure the client cannot type more precisely."""


def _retryable(exc: Exception) -> bool:
    """Can resubmitting the same operation succeed?  Transport give-ups
    and lock timeouts are transient; semantic rejections are not."""
    from repro.persist import LockTimeout
    return isinstance(exc, (DeliveryFailed, LockTimeout))


class BulkFailure:
    """One key of a bulk operation that did not apply.

    Attributes:
        index: the key's position in the submitted batch.
        key: the key itself.
        error: the exception instance that felled it.
        retryable: ``True`` when resubmitting the same key can succeed
            (transport gave up, a lock timed out) — the signal hinted
            handoff keys on; ``False`` for semantic rejections (bad key
            type, a delete below zero) that would fail identically again.
    """

    __slots__ = ("index", "key", "error", "retryable")

    def __init__(self, index: int, key: object, error: Exception,
                 retryable: bool):
        self.index = index
        self.key = key
        self.error = error
        self.retryable = retryable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "retryable" if self.retryable else "permanent"
        return (f"BulkFailure(index={self.index}, key={self.key!r}, "
                f"{kind}: {type(self.error).__name__})")


class BulkResult:
    """Structured outcome of a bulk operation: what applied, what failed.

    Instead of raising on the first :class:`DeliveryFailed` (losing all
    information about the rest of the batch), bulk paths return this —
    callers retry precisely the :attr:`failures` marked retryable.

    Attributes:
        n: batch size submitted.
        values: for query batches, the estimates as an int64 array
            (failed slots hold 0 — check :attr:`failures`); ``None`` for
            mutation batches.
        failures: the keys that did not apply, as :class:`BulkFailure`
            entries in batch order.
    """

    __slots__ = ("n", "values", "failures")

    def __init__(self, n: int, values: np.ndarray | None = None,
                 failures: list[BulkFailure] | None = None):
        self.n = int(n)
        self.values = values
        self.failures = failures if failures is not None else []

    @property
    def applied(self) -> int:
        """Keys that applied (or answered) successfully."""
        return self.n - len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def retryable(self) -> list[BulkFailure]:
        return [f for f in self.failures if f.retryable]

    def raise_first(self) -> "BulkResult":
        """Raise the first failure's error, if any — opt back into the
        old all-or-nothing behaviour."""
        if self.failures:
            raise self.failures[0].error
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BulkResult(applied={self.applied}/{self.n}, "
                f"failures={len(self.failures)})")


def _validate_request(payload: bytes) -> None:
    open_frame(payload, REQUEST_MAGIC)


def _validate_response(payload: bytes) -> None:
    open_frame(payload, RESPONSE_MAGIC)


class ShardServer:
    """Server side: owns a shard handle and answers one request frame.

    *handle* is any local serving handle — a
    :class:`~repro.persist.ConcurrentSBF` (typical: it brings its own
    locking) or a bare :class:`~repro.persist.DurableSBF` /
    :class:`~repro.core.sbf.SpectralBloomFilter`.
    """

    def __init__(self, handle):
        self.handle = handle
        self.requests_served = 0
        self.requests_failed = 0

    def handle_frame(self, frame: bytes) -> bytes:
        """Execute one request frame; returns the response frame.

        Server-side failures never crash the server: they come back as
        ``ok=false`` responses carrying the exception kind and message, so
        the client re-raises a faithful local exception.
        """
        try:
            meta, _ = open_frame(frame, REQUEST_MAGIC)
            result = self._dispatch(meta)
        except Exception as exc:
            self.requests_failed += 1
            return seal_frame(RESPONSE_MAGIC,
                              {"ok": False, "kind": type(exc).__name__,
                               "error": str(exc)})
        self.requests_served += 1
        return seal_frame(RESPONSE_MAGIC, {"ok": True, "result": result})

    def _dispatch(self, meta: dict):
        op = meta.get("op")
        if op not in _SERVER_VERBS:
            raise WireFormatError(f"unknown remote-shard op {op!r}")
        handle = self.handle
        if op == "total_count":
            return handle.total_count
        if op == "params":
            sbf = getattr(handle, "sbf", handle)
            return {"m": sbf.m, "k": sbf.k, "seed": sbf.seed,
                    "method": sbf.method.name}
        if op == "checkpoint":
            result = handle.checkpoint()
            return result if isinstance(result, str) else None
        if op in _BULK_VERBS:
            return self._dispatch_bulk(op, meta)
        if op in ("blocksums", "readblocks", "writeblocks"):
            return self._dispatch_repair(op, meta)
        key = meta.get("key")
        if not isinstance(key, SCALAR_KEY_TYPES):
            raise WireFormatError(
                f"remote-shard keys must be JSON scalars, got "
                f"{type(key).__name__}")
        if op == "query":
            return handle.query(key)
        if op == "contains":
            return handle.contains(key, int(meta.get("threshold", 1)))
        count = meta.get("count", 1)
        if not isinstance(count, int) or isinstance(count, bool):
            raise WireFormatError(f"count must be an integer, got {count!r}")
        if op == "insert":
            handle.insert(key, count)
        elif op == "delete":
            handle.delete(key, count)
        else:  # set
            _set_on(handle, key, count)
        return None

    def _dispatch_bulk(self, op: str, meta: dict):
        keys = meta.get("keys")
        if not isinstance(keys, list):
            raise WireFormatError(f"bulk op {op!r} needs a key list, got "
                                  f"{type(keys).__name__}")
        for key in keys:
            if not isinstance(key, SCALAR_KEY_TYPES):
                raise WireFormatError(
                    f"remote-shard keys must be JSON scalars, got "
                    f"{type(key).__name__}")
        handle = self.handle
        if op == "query_many":
            return np.asarray(handle.query_many(keys)).tolist()
        counts = meta.get("counts")
        if (not isinstance(counts, list) or len(counts) != len(keys)
                or any(not isinstance(c, int) or isinstance(c, bool)
                       or c < 0 for c in counts)):
            raise WireFormatError(
                f"bulk op {op!r} needs counts (ints >= 0) matching its "
                f"{len(keys)} key(s)")
        if op == "insert_many":
            handle.insert_many(keys, counts)
        else:
            handle.delete_many(keys, counts)
        return len(keys)

    def _dispatch_repair(self, op: str, meta: dict):
        n_blocks = meta.get("n_blocks")
        if not isinstance(n_blocks, int) or isinstance(n_blocks, bool) \
                or n_blocks < 1:
            raise WireFormatError(
                f"repair ops need a positive n_blocks, got {n_blocks!r}")
        handle = self.handle
        if op == "blocksums":
            return _repair.block_checksums(handle, n_blocks)
        blocks = meta.get("blocks")
        if not isinstance(blocks, list):
            raise WireFormatError(
                f"repair op {op!r} needs a block list, got "
                f"{type(blocks).__name__}")
        if op == "readblocks":
            spans = _repair.read_blocks(handle, n_blocks, blocks)
            return [[block, values] for block, values in spans.items()]
        spans = {}
        for entry in blocks:
            if not isinstance(entry, list) or len(entry) != 2:
                raise WireFormatError(
                    f"writeblocks entries are [block, values] pairs, got "
                    f"{entry!r}")
            spans[entry[0]] = entry[1]
        return _repair.write_blocks(handle, n_blocks, spans,
                                    total_count=meta.get("total_count"))


def _set_on(handle, key, count: int) -> None:
    if hasattr(handle, "set"):
        handle.set(key, count)
        return
    current = handle.query(key)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count > current:
        handle.insert(key, count - current)
    elif count < current:
        handle.delete(key, current - count)


class RemoteShard:
    """Client side: the shard surface, served over two reliable channels.

    Fits anywhere a local shard does — in a
    :class:`~repro.serve.router.ShardedSBF` shard list, under the
    batcher — with :meth:`exclusive` degenerating to a no-op (the server
    side holds the real locks; remote ops are one round trip each).

    Args:
        server: the :class:`ShardServer` reachable through *network* (the
            simulation keeps it in-process; the frames still cross the
            faulty wire both ways).
        network: transmission substrate, possibly a
            :class:`~repro.db.faults.FaultyNetwork`.
        client / server_name: endpoint names for traffic accounting.
        channel_options: forwarded to both :class:`ReliableChannel` legs
            (max retries, backoff, jitter).
        retry_budget: optional token bucket (duck-typed
            ``try_spend()``/``earn()``, in practice a
            :class:`~repro.serve.resilience.RetryBudget`) shared by both
            channel legs, so the whole round trip draws on one pool and
            correlated retransmission storms degrade to fast
            :class:`~repro.db.transport.DeliveryFailed` refusals.
        bulk_chunk: keys per frame on the bulk paths (:meth:`insert_many`
            etc.); each chunk is one round trip and one unit of partial
            failure.
        metrics: registry the channel stats are attached to.
    """

    def __init__(self, server: ShardServer, network: Network,
                 client: str, server_name: str, *,
                 channel_options: dict | None = None,
                 retry_budget=None,
                 bulk_chunk: int = DEFAULT_BULK_CHUNK,
                 metrics: MetricsRegistry | None = None):
        if bulk_chunk < 1:
            raise ValueError(f"bulk_chunk must be >= 1, got {bulk_chunk}")
        self.bulk_chunk = int(bulk_chunk)
        options = dict(channel_options or {})
        options.setdefault("seed", zlib.crc32(
            f"{client}->{server_name}".encode("utf-8")))
        if retry_budget is not None:
            options.setdefault("budget", retry_budget)
        self.server = server
        self.client = client
        self.server_name = server_name
        self.requests = ReliableChannel(network, client, server_name,
                                        validator=_validate_request,
                                        **options)
        options["seed"] = zlib.crc32(
            f"{server_name}->{client}".encode("utf-8"))
        self.responses = ReliableChannel(network, server_name, client,
                                         validator=_validate_response,
                                         **options)
        self.metrics = metrics or MetricsRegistry()
        self.metrics.attach_channel(f"remote.{server_name}.requests",
                                    self.requests.stats)
        self.metrics.attach_channel(f"remote.{server_name}.responses",
                                    self.responses.stats)

    # -- the wire ----------------------------------------------------------
    def _call(self, op: str, **fields):
        """One request/response round trip.

        The ambient :func:`~repro.serve.resilience.current_deadline`
        (installed upstream by the batcher or replica set) bounds both
        channel legs: retries stop, backoff is capped, and late answers
        are discarded the moment the caller's budget runs out.

        Raises:
            DeliveryFailed: a leg exhausted its retry budget — the caller
                (router/batcher/engine) degrades per the PR-1 contract.
            ValueError: the server rejected the operation (re-raised with
                its original type where the client can reconstruct it).
        """
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(f"shard-{op}")
        frame = seal_frame(REQUEST_MAGIC, {"op": op, **fields})
        delivered = self.requests.send(f"shard-{op}", frame,
                                       deadline=deadline)
        response = self.server.handle_frame(delivered)
        answer = self.responses.send(f"shard-{op}-reply", response,
                                     deadline=deadline)
        meta, _ = open_frame(answer, RESPONSE_MAGIC)
        if meta.get("ok"):
            return meta.get("result")
        kind, error = meta.get("kind"), meta.get("error", "remote failure")
        if kind in ("ValueError", "WireFormatError"):
            raise ValueError(f"{self.server_name}: {error}")
        if kind == "LockTimeout":
            from repro.persist import LockTimeout
            raise LockTimeout(f"{self.server_name}: {error}")
        raise RemoteShardError(f"{self.server_name}: {kind}: {error}")

    @staticmethod
    def _scalar(key: object) -> object:
        if not isinstance(key, SCALAR_KEY_TYPES):
            raise TypeError(
                f"remote-shard keys must be JSON scalars "
                f"(str/int/float/bool/None), got {type(key).__name__}")
        return key

    # -- the shard surface -------------------------------------------------
    def insert(self, key: object, count: int = 1) -> None:
        self._call("insert", key=self._scalar(key), count=count)

    def delete(self, key: object, count: int = 1) -> None:
        self._call("delete", key=self._scalar(key), count=count)

    def set(self, key: object, count: int) -> None:
        self._call("set", key=self._scalar(key), count=count)

    def query(self, key: object) -> int:
        return self._call("query", key=self._scalar(key))

    def contains(self, key: object, threshold: int = 1) -> bool:
        return bool(self._call("contains", key=self._scalar(key),
                               threshold=threshold))

    @property
    def total_count(self) -> int:
        return self._call("total_count")

    def params(self) -> dict:
        """The remote filter's (m, k, seed, method) — compatibility info."""
        return self._call("params")

    def checkpoint(self):
        return self._call("checkpoint")

    # -- bulk operations (structured partial failure) ----------------------
    def insert_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        """Insert a key batch; returns a :class:`BulkResult`.

        The batch travels in :attr:`bulk_chunk`-sized frames.  A chunk
        whose delivery fails (either leg) fails *only its own keys*, and
        marks them retryable — the rest of the batch still applies.
        Invalid keys never leave the client (permanent failures).
        """
        return self._bulk("insert_many", keys, counts)

    def delete_many(self, keys: Sequence[object],
                    counts: Sequence[int] | None = None) -> BulkResult:
        """Delete a key batch; returns a :class:`BulkResult` (a chunk the
        server rejects — e.g. a delete below zero — fails permanently)."""
        return self._bulk("delete_many", keys, counts)

    def query_many(self, keys: Sequence[object]) -> BulkResult:
        """Estimates for a key batch; :attr:`BulkResult.values` holds the
        answers (failed slots are 0 and listed in ``failures``)."""
        return self._bulk("query_many", keys, None)

    def _bulk(self, op: str, keys: Sequence[object],
              counts: Sequence[int] | None) -> BulkResult:
        keys = list(keys)
        if counts is None:
            counts = [1] * len(keys)
        else:
            counts = [int(c) for c in counts]
            if len(counts) != len(keys):
                raise ValueError(f"got {len(keys)} keys but "
                                 f"{len(counts)} counts")
        is_query = op == "query_many"
        values = np.zeros(len(keys), dtype=np.int64) if is_query else None
        failures: list[BulkFailure] = []
        valid: list[int] = []
        for idx, key in enumerate(keys):
            if isinstance(key, SCALAR_KEY_TYPES):
                valid.append(idx)
            else:
                failures.append(BulkFailure(idx, key, TypeError(
                    f"remote-shard keys must be JSON scalars "
                    f"(str/int/float/bool/None), got "
                    f"{type(key).__name__}"), retryable=False))
        for lo in range(0, len(valid), self.bulk_chunk):
            chunk = valid[lo:lo + self.bulk_chunk]
            chunk_keys = [keys[i] for i in chunk]
            fields = {"keys": chunk_keys}
            if not is_query:
                fields["counts"] = [counts[i] for i in chunk]
            try:
                result = self._call(op, **fields)
            except Exception as exc:
                retryable = _retryable(exc)
                failures.extend(BulkFailure(i, keys[i], exc, retryable)
                                for i in chunk)
                continue
            if is_query:
                values[chunk] = result
        failures.sort(key=lambda f: f.index)
        return BulkResult(len(keys), values, failures)

    # -- anti-entropy hooks (see repro.serve.repair) -----------------------
    def block_checksums(self, n_blocks: int) -> list[int]:
        """Per-repair-block CRC32s, computed server-side (one round trip
        ships ``n_blocks`` checksums, never the counters)."""
        return self._call("blocksums", n_blocks=int(n_blocks))

    def read_blocks(self, n_blocks: int, blocks: Sequence[int],
                    ) -> dict[int, list[int]]:
        pairs = self._call("readblocks", n_blocks=int(n_blocks),
                           blocks=[int(b) for b in blocks])
        return {int(block): values for block, values in pairs}

    def write_blocks(self, n_blocks: int, blocks: dict, *,
                     total_count: int | None = None) -> int:
        payload = [[int(block), [int(v) for v in values]]
                   for block, values in blocks.items()]
        return self._call("writeblocks", n_blocks=int(n_blocks),
                          blocks=payload, total_count=total_count)

    @contextmanager
    def exclusive(self, timeout: float | None = None) -> Iterator["RemoteShard"]:
        """Batching hook: yields self — remote ops are each one round
        trip, serialised server-side, so there is nothing to hold here."""
        yield self

    def add_operations(self, n: int) -> None:
        """Batching hook: server-side accounting happens per request."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteShard({self.client!r} -> {self.server_name!r})"
