"""One metrics surface for the whole serving stack.

Router, batcher, engine, and remote shards all report through a single
:class:`MetricsRegistry` — counters for monotone event totals, gauges for
instantaneous levels (queue depth), and fixed-bucket latency histograms.
The registry follows the injected-clock convention established by
:mod:`repro.db.transport`: the substrate never reads a wall clock of its
own; timing flows through a ``clock`` callable supplied at construction,
so tests drive a fake clock and chaos runs stay deterministic (the default
is :func:`time.perf_counter` for real deployments).

:class:`~repro.db.transport.ChannelStats` is re-exported here and can be
attached to a registry (:meth:`MetricsRegistry.attach_channel`), so
transport-level delivery metrics and serving-level throughput metrics are
scraped from one ``snapshot()`` — the serving layer's answer to the
satellite "stats are scrapable without touching private attributes".

Naming convention: dotted lowercase paths, ``<component>.<event>``
(``engine.rejected_total``, ``batch.ops``, ``shard3.inserts``).  A metric name
is created on first use and keeps its identity for the registry's
lifetime.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.db.transport import ChannelStats

__all__ = ["ChannelStats", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "ReplicaGauges", "DEFAULT_LATENCY_BUCKETS"]

#: default latency bucket upper bounds, in seconds (histogram-ish buckets:
#: the last bucket is the +inf overflow)
DEFAULT_LATENCY_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
                           0.1, 0.5, 1.0, 5.0)


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """An instantaneous level (queue depth, shard count, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Fixed-bucket histogram with sum/count — latency-bucket style.

    ``bounds`` are inclusive upper bounds; one overflow bucket is appended
    for observations beyond the last bound.  Lighter than a quantile
    sketch, but enough to read p50/p99-ish behaviour off the bucket
    vector, which is all the serving tests and benchmarks need.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "sum", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be a sorted non-empty "
                             f"sequence, got {bounds!r}")
        self.name = name
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)   # +1 overflow
        self.count = 0
        self.sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self.buckets[slot] += 1
            self.count += 1
            self.sum += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, count={self.count}, sum={self.sum})"


class ReplicaGauges:
    """The health gauges of one replica in a replica set.

    The HA layer (:mod:`repro.serve.ha`) keeps these current; dashboards
    and the benchmarks scrape them out of the one ``snapshot()``:

    - ``up`` — 1.0 while the replica is taking traffic, 0.0 while ejected;
    - ``hint_depth`` — operations queued in the replica's hint log,
      waiting for handoff (0 when the replica is caught up);
    - ``last_repair`` — registry-clock timestamp of the last anti-entropy
      repair that touched the replica (0.0 if never repaired);
    - ``breaker_state`` — the replica's circuit breaker: 0.0 closed
      (serving), 0.5 half-open (probing), 1.0 open (shedding) — the
      gray-failure signal; a replica can be ``up`` yet breaker-open
      because it answers slowly.

    Naming convention: ``ha.<set>.<replica>.up`` etc., so a fleet of
    replica sets stays navigable in one flat namespace.
    """

    __slots__ = ("up", "hint_depth", "last_repair", "breaker_state")

    def __init__(self, up: Gauge, hint_depth: Gauge, last_repair: Gauge,
                 breaker_state: Gauge):
        self.up = up
        self.hint_depth = hint_depth
        self.last_repair = last_repair
        self.breaker_state = breaker_state


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges, and histograms.

    Args:
        clock: seconds-returning callable used by :meth:`timed` (the
            injected-clock convention — tests pass a fake, production
            defaults to ``time.perf_counter``).
    """

    def __init__(self, *, clock: Callable[[], float] | None = None):
        self.clock: Callable[[], float] = clock or time.perf_counter
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._channels: dict[str, ChannelStats] = {}

    def _named(self, table: dict, factory, name: str):
        with self._lock:
            metric = table.get(name)
            if metric is None:
                metric = table[name] = factory()
            return metric

    def counter(self, name: str) -> Counter:
        return self._named(self._counters,
                           lambda: Counter(name, self._lock), name)

    def gauge(self, name: str) -> Gauge:
        return self._named(self._gauges,
                           lambda: Gauge(name, self._lock), name)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._named(self._histograms,
                           lambda: Histogram(name, self._lock, bounds), name)

    def attach_channel(self, name: str, stats: ChannelStats) -> ChannelStats:
        """Register a transport's :class:`ChannelStats` under *name*.

        The live object is referenced (not copied): snapshots always show
        current delivery totals, and one surface reports both layers.
        """
        with self._lock:
            self._channels[name] = stats
        return stats

    def replica_gauges(self, set_name: str, replica: str) -> ReplicaGauges:
        """Health gauges for replica *replica* of replica set *set_name*.

        Idempotent (create-on-first-use, like every metric here); the HA
        layer owns the values — it sets ``up`` when the replica joins.
        """
        prefix = f"ha.{set_name}.{replica}"
        return ReplicaGauges(self.gauge(f"{prefix}.up"),
                             self.gauge(f"{prefix}.hint_depth"),
                             self.gauge(f"{prefix}.last_repair"),
                             self.gauge(f"{prefix}.breaker_state"))

    def timed(self, histogram_name: str):
        """Context manager observing the elapsed clock time into a histogram.

        >>> registry = MetricsRegistry()
        >>> with registry.timed("engine.batch_seconds"):
        ...     pass
        """
        return _Timed(self, histogram_name)

    def snapshot(self) -> dict:
        """All metrics as one plain-data dict (scrape/JSON-friendly).

        Mirrors :meth:`ChannelStats.as_dict`: no private attribute of any
        component needs to be read to observe the serving stack.
        """
        with self._lock:
            counters = {name: c._value for name, c in self._counters.items()}
            gauges = {name: g._value for name, g in self._gauges.items()}
            histograms = {
                name: {"bounds": list(h.bounds), "buckets": list(h.buckets),
                       "count": h.count, "sum": h.sum}
                for name, h in self._histograms.items()}
            channels = {name: stats.as_dict()
                        for name, stats in self._channels.items()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "channels": channels}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, "
                f"channels={len(self._channels)})")


class _Timed:
    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timed":
        self._start = self._registry.clock()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = self._registry.clock() - self._start
        self._registry.histogram(self._name).observe(elapsed)
        return False
