"""Request-lifecycle resilience: deadlines, retry budgets, breakers.

The serving stack survives *dead* replicas (ejection, hinted handoff,
anti-entropy — :mod:`repro.serve.ha`) but a replica that answers
correctly-but-*late* is a different failure mode: it is never ejected,
it stalls every quorum read it participates in, and each stall burns the
transport's full retry budget — the gray failure that dominates tail
latency in real fleets.  This module holds the four primitives the
serving path threads through itself to defend against it:

- :class:`Deadline` — an end-to-end time budget carried from the front
  door (:meth:`~repro.serve.engine.ServingEngine.submit`) down to each
  :class:`~repro.db.transport.ReliableChannel` attempt.  Everything on
  the way — lock waits, retransmission backoff, replica fan-out — stops
  at expiry with a typed :class:`DeadlineExceeded` instead of silently
  accruing the full per-hop retry schedule.  Deadlines follow the
  injected-clock convention (:mod:`repro.serve.metrics`): the clock is a
  constructor argument, so chaos tests drive a fake clock and stay
  deterministic;
- :func:`deadline_scope` / :func:`current_deadline` — a thread-local
  deadline stack.  The shard surface (``insert``/``query``/…) is shared
  by seven layers; a scope threads the deadline through all of them
  without widening every signature.  Scopes nest: the replica layer
  pushes a *tighter* per-attempt deadline (the hedge bound) on top of
  the request deadline;
- :class:`RetryBudget` — a token bucket shared per replica set and per
  remote channel: every retry spends a token, every success earns a
  fraction back.  Under correlated failure the bucket drains and retries
  degrade to fast typed refusals — the classic defense against
  multiplicative retry storms (each layer retrying the layer below);
- :class:`CircuitBreaker` — per-replica closed/open/half-open breaker
  keyed on *both* the error rate over a sliding outcome window and a
  latency EWMA.  The latency key is the point: consecutive-failure
  ejection can never catch a replica that keeps succeeding slowly; the
  breaker trips it, the open state sheds it from the read/write paths,
  and after ``reset_timeout`` a single half-open probe — judged on its
  own latency, not the poisoned EWMA — re-admits or re-opens;
- :class:`LatencyTracker` — a windowed quantile estimate over recent
  attempt latencies; the replica layer uses it as the hedge trigger
  (attempts slower than the observed p95 are abandoned and re-fired
  against a spare replica).

Everything here is stdlib-only on purpose: :mod:`repro.db.transport`
honours deadlines and budgets **by duck type** (``deadline.check()``
raises the typed error itself), so the db layer never imports the serve
layer and the dependency direction stays acyclic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "CLOSED", "OPEN", "HALF_OPEN",
    "Deadline", "DeadlineExceeded", "deadline_scope", "current_deadline",
    "RetryBudget", "CircuitBreaker", "LatencyTracker",
]

#: circuit-breaker states
CLOSED = "closed"          # normal: traffic flows, outcomes recorded
OPEN = "open"              # tripped: traffic shed until reset_timeout
HALF_OPEN = "half-open"    # probing: one attempt decides close/re-open


class DeadlineExceeded(RuntimeError):
    """A request's end-to-end time budget ran out.

    Attributes:
        overrun: seconds past the deadline at the moment of the check
            (0.0 when raised exactly at expiry).
        unexecuted: ``True`` when the refusal provably happened *before*
            the operation touched any shard state (failed in queue, shed
            at admission, pre-failed by the batcher or router) — the
            caller may retry without at-most-once ambiguity, and an
            oracle can treat the write as never applied.  ``False``
            (default) means the budget ran out somewhere mid-flight and
            partial application is possible.
    """

    def __init__(self, message: str, *, overrun: float = 0.0,
                 unexecuted: bool = False):
        super().__init__(message)
        self.overrun = float(overrun)
        self.unexecuted = bool(unexecuted)


class Deadline:
    """An absolute expiry instant on an injected clock.

    Args:
        budget: seconds from *now* (per ``clock``) until expiry.
        clock: seconds-returning callable (the injected-clock
            convention); defaults to ``time.monotonic``.
        label: what the deadline guards — appears in the typed error.
    """

    __slots__ = ("expires_at", "clock", "label")

    def __init__(self, budget: float, *,
                 clock: Callable[[], float] | None = None,
                 label: str = "request"):
        if budget < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget}")
        self.clock = clock or time.monotonic
        self.expires_at = self.clock() + float(budget)
        self.label = label

    @classmethod
    def at(cls, expires_at: float, *,
           clock: Callable[[], float] | None = None,
           label: str = "request") -> "Deadline":
        """A deadline at an absolute clock instant (may lie in the past)."""
        deadline = cls(0.0, clock=clock, label=label)
        deadline.expires_at = float(expires_at)
        return deadline

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str | None = None, *,
              unexecuted: bool = False) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed.

        Pass ``unexecuted=True`` from pre-execution refusal sites (the
        operation has not touched shard state yet) so the typed error
        carries the retry-safety signal.
        """
        left = self.remaining()
        if left <= 0.0:
            what = what or self.label
            raise DeadlineExceeded(
                f"{what}: deadline exceeded by {-left:.6f}s",
                overrun=-left, unexecuted=unexecuted)

    def bounded(self, budget: float) -> "Deadline":
        """The tighter of this deadline and ``now + budget``.

        The hedge mechanism: a per-attempt sub-deadline that can only
        shrink the request deadline, never extend it.
        """
        sub = Deadline.at(min(self.expires_at, self.clock() + budget),
                          clock=self.clock, label=self.label)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline({self.label!r}, "
                f"remaining={self.remaining():.6f}s)")


_SCOPE = threading.local()


def current_deadline() -> Deadline | None:
    """The innermost active deadline on this thread (or ``None``)."""
    stack = getattr(_SCOPE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Make *deadline* the thread's current deadline for the block.

    ``None`` is a no-op passthrough (the enclosing scope, if any, stays
    current) so call sites need no conditional.
    """
    if deadline is None:
        yield None
        return
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


class RetryBudget:
    """Token bucket gating retries: spend on retry, earn on success.

    The gRPC-style retry throttle: the bucket starts full; each retry
    must :meth:`try_spend` a token, each success :meth:`earn`\\ s back
    ``earn_rate`` of one.  Under healthy traffic the occasional retry is
    free; under correlated failure the bucket drains in bounded time and
    every layer's retries collapse to fast refusals instead of a storm.

    Args:
        capacity: bucket size (and initial fill), in tokens.
        earn_rate: tokens restored per recorded success.
        retry_cost: tokens one retry spends.
    """

    __slots__ = ("capacity", "earn_rate", "retry_cost", "tokens",
                 "spent", "denied", "earned", "_lock")

    def __init__(self, capacity: float = 32.0, earn_rate: float = 0.5,
                 retry_cost: float = 1.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if earn_rate < 0:
            raise ValueError(f"earn_rate must be >= 0, got {earn_rate}")
        if retry_cost <= 0:
            raise ValueError(f"retry_cost must be > 0, got {retry_cost}")
        self.capacity = float(capacity)
        self.earn_rate = float(earn_rate)
        self.retry_cost = float(retry_cost)
        self.tokens = float(capacity)
        self.spent = 0             # retries granted
        self.denied = 0            # retries refused (bucket empty)
        self.earned = 0            # successes recorded
        self._lock = threading.Lock()

    def try_spend(self, cost: float | None = None) -> bool:
        """Take one retry's tokens; ``False`` (and counted) if empty."""
        cost = self.retry_cost if cost is None else float(cost)
        with self._lock:
            if self.tokens >= cost:
                self.tokens -= cost
                self.spent += 1
                return True
            self.denied += 1
            return False

    def earn(self, amount: float | None = None) -> None:
        """Record a success, restoring ``earn_rate`` tokens (capped)."""
        amount = self.earn_rate if amount is None else float(amount)
        with self._lock:
            self.tokens = min(self.capacity, self.tokens + amount)
            self.earned += 1

    def as_dict(self) -> dict:
        return {"capacity": self.capacity, "tokens": self.tokens,
                "spent": self.spent, "denied": self.denied,
                "earned": self.earned}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryBudget(tokens={self.tokens:.1f}/{self.capacity:.0f},"
                f" spent={self.spent}, denied={self.denied})")


class LatencyTracker:
    """Windowed latency quantiles — the hedge trigger.

    Keeps the last *window* attempt latencies; :meth:`quantile` answers
    only once *min_samples* observations exist (hedging against a guess
    would fire constantly during warm-up).
    """

    __slots__ = ("_window", "_min_samples")

    def __init__(self, window: int = 128, min_samples: int = 16):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {min_samples}")
        self._window: deque[float] = deque(maxlen=int(window))
        self._min_samples = int(min_samples)

    def observe(self, latency: float) -> None:
        self._window.append(float(latency))

    def __len__(self) -> int:
        return len(self._window)

    def quantile(self, q: float) -> float | None:
        """The *q*-quantile of the window, or ``None`` before warm-up."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if len(self._window) < self._min_samples:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class CircuitBreaker:
    """Closed/open/half-open breaker keyed on error rate *and* latency.

    Two independent trips:

    - **error rate** — at least ``error_threshold`` of the last
      ``window`` outcomes failed (judged only once ``min_samples``
      outcomes exist, so a single early failure cannot trip);
    - **latency EWMA** — the smoothed attempt latency exceeds
      ``latency_threshold`` (``None`` disables the latency key).  This
      is the gray-failure catch: a replica that keeps *succeeding*
      slowly trips here, which consecutive-failure ejection can never
      do.  Judged only once ``latency_min_samples`` latencies were
      recorded, so one transient stall does not shed a healthy replica.

    Open sheds traffic (``allow()`` is ``False``) until
    ``reset_timeout`` seconds pass on the injected clock, then one
    half-open probe is admitted.  The probe is judged on **its own
    latency** — the EWMA still carries the sick history, and holding the
    probe to it would keep a recovered replica out forever.  A good
    probe closes the breaker and resets the window and EWMA (a
    recovered replica starts clean); a failing or slow probe re-opens
    and re-arms the timeout.

    Args:
        clock: injected clock for the reset timeout.
        window: outcomes kept for the error-rate key.
        min_samples: outcomes required before the error rate can trip.
        error_threshold: failure fraction that trips the breaker.
        latency_threshold: EWMA seconds that trip the breaker
            (``None`` disables latency tripping).
        latency_alpha: EWMA smoothing factor (weight of the newest
            sample).
        latency_min_samples: latencies required before the EWMA can trip.
        reset_timeout: seconds open before a half-open probe is allowed.
        on_transition: optional ``(old_state, new_state)`` callback —
            the HA layer wires counters and gauges through it.
    """

    __slots__ = ("clock", "window", "min_samples", "error_threshold",
                 "latency_threshold", "latency_alpha",
                 "latency_min_samples", "reset_timeout", "on_transition",
                 "state", "opened_at", "latency_ewma", "opens",
                 "half_opens", "closes", "_outcomes", "_latency_samples")

    def __init__(self, *, clock: Callable[[], float] | None = None,
                 window: int = 16, min_samples: int = 8,
                 error_threshold: float = 0.5,
                 latency_threshold: float | None = None,
                 latency_alpha: float = 0.3,
                 latency_min_samples: int = 2,
                 reset_timeout: float = 1.0,
                 on_transition: Callable[[str, str], None] | None = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < error_threshold <= 1.0:
            raise ValueError(
                f"error_threshold must be in (0, 1], got {error_threshold}")
        if latency_threshold is not None and latency_threshold <= 0:
            raise ValueError(f"latency_threshold must be > 0, "
                             f"got {latency_threshold}")
        if not 0.0 < latency_alpha <= 1.0:
            raise ValueError(
                f"latency_alpha must be in (0, 1], got {latency_alpha}")
        if latency_min_samples < 1:
            raise ValueError(f"latency_min_samples must be >= 1, "
                             f"got {latency_min_samples}")
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}")
        self.clock = clock or time.monotonic
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.error_threshold = float(error_threshold)
        self.latency_threshold = None if latency_threshold is None \
            else float(latency_threshold)
        self.latency_alpha = float(latency_alpha)
        self.latency_min_samples = int(latency_min_samples)
        self.reset_timeout = float(reset_timeout)
        self.on_transition = on_transition
        self.state = CLOSED
        self.opened_at: float | None = None
        self.latency_ewma: float | None = None
        self.opens = 0
        self.half_opens = 0
        self.closes = 0
        self._outcomes: deque[bool] = deque(maxlen=self.window)
        self._latency_samples = 0

    # -- state machine -----------------------------------------------------
    def _transition(self, new: str) -> None:
        old = self.state
        if old == new:
            return
        self.state = new
        if new == OPEN:
            self.opens += 1
            self.opened_at = self.clock()
        elif new == HALF_OPEN:
            self.half_opens += 1
        else:
            self.closes += 1
            self.opened_at = None
            # A recovered replica starts clean: holding it to the sick
            # window/EWMA would re-trip it on its first healthy attempt.
            self._outcomes.clear()
            self.latency_ewma = None
            self._latency_samples = 0
        if self.on_transition is not None:
            self.on_transition(old, new)

    def allow(self) -> bool:
        """May an attempt proceed?  Open transitions to half-open once
        ``reset_timeout`` has elapsed — the caller's next attempt *is*
        the probe."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.reset_timeout:
                self._transition(HALF_OPEN)
                return True
            return False
        return True  # HALF_OPEN: the probe is in the caller's hands

    def record_success(self, latency: float | None = None) -> None:
        """Record a successful attempt (and its latency, if measured)."""
        self._note_latency(latency)
        self._outcomes.append(True)
        if self.state == HALF_OPEN:
            # Judge the probe on its own latency, not the sick EWMA.
            if (self.latency_threshold is not None and latency is not None
                    and latency > self.latency_threshold):
                self._transition(OPEN)
            else:
                self._transition(CLOSED)
        elif self.state == CLOSED and self._latency_tripped():
            self._transition(OPEN)

    def record_failure(self, latency: float | None = None) -> None:
        """Record a failed attempt (and how long it took to fail)."""
        self._note_latency(latency)
        self._outcomes.append(False)
        if self.state == HALF_OPEN:
            self._transition(OPEN)
        elif self.state == CLOSED and (self._errors_tripped()
                                       or self._latency_tripped()):
            self._transition(OPEN)

    # -- trip keys ---------------------------------------------------------
    def _note_latency(self, latency: float | None) -> None:
        if latency is None:
            return
        self._latency_samples += 1
        if self.latency_ewma is None:
            self.latency_ewma = float(latency)
        else:
            alpha = self.latency_alpha
            self.latency_ewma += alpha * (float(latency) - self.latency_ewma)

    def _errors_tripped(self) -> bool:
        if len(self._outcomes) < self.min_samples:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self.error_threshold

    def _latency_tripped(self) -> bool:
        return (self.latency_threshold is not None
                and self.latency_ewma is not None
                and self._latency_samples >= self.latency_min_samples
                and self.latency_ewma > self.latency_threshold)

    # -- observability -----------------------------------------------------
    def state_code(self) -> float:
        """Gauge encoding: 0.0 closed, 0.5 half-open, 1.0 open."""
        return {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}[self.state]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ewma = "-" if self.latency_ewma is None \
            else f"{self.latency_ewma:.6f}s"
        return (f"CircuitBreaker({self.state}, ewma={ewma}, "
                f"opens={self.opens})")
