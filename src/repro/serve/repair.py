"""Anti-entropy repair: converge replica counter vectors exactly.

Replicas of a spectral-filter shard diverge when a write reaches some
replicas and not others (a crash before hinted handoff drained, a hint
log lost with its disk, an operator restoring an old snapshot).  Classic
membership filters can only detect such divergence probabilistically;
SBF counters make it *exact* — two replicas agree iff their counter
vectors are equal, and the union/difference algebra (paper §3) means
copying counters from a caught-up replica is a complete repair, not an
approximation.

The pass is the standard two-level anti-entropy scan (Dynamo-style, but
with exact summaries instead of Merkle trees):

1. **checksum phase** — the counter space ``[0, m)`` is cut into
   ``n_blocks`` spans and each replica reports one CRC32 per span over
   its counter values.  Agreeing spans are proven identical without
   shipping a single counter;
2. **copy phase** — for each disagreeing span, the reference replica's
   counters are copied verbatim (``set_many``), then ``total_count`` is
   aligned.  Because Minimum Selection keeps *all* its state in the
   counter vector, the copy converges the replica bit-identically.

The repair grid is independent of the hash family's blocks — any
``n_blocks`` works against any family — though with blocked hashing a
span-aligned grid localises a single diverged key to one span.

Only Minimum Selection filters are repairable this way: MI shares the
counter-only representation but RM keeps a secondary filter whose state
a counter copy would silently miss, so non-MS methods are refused.

Handles are dispatched by capability: anything exposing
``block_checksums`` / ``read_blocks`` / ``write_blocks`` (a
:class:`~repro.serve.remote.RemoteShard`) is driven over the wire;
local handles (:class:`~repro.persist.ConcurrentSBF`, bare filters) are
scanned under their exclusive lock.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

#: default repair-grid resolution (spans per scan)
DEFAULT_REPAIR_BLOCKS = 64


class RepairReport:
    """What one anti-entropy pass saw and did.

    Attributes:
        reference: index of the replica used as the source of truth.
        n_blocks: repair-grid resolution of the scan.
        scanned: indices of replicas whose checksums were compared.
        skipped: indices of replicas that were unreachable.
        copied: ``{replica index: [block ids copied]}`` for replicas that
            needed repair (missing index = already identical).
        counters_copied: total counters shipped in the copy phase.
        converged: every scanned replica's checksums (and total counts)
            matched the reference after the pass.
    """

    __slots__ = ("reference", "n_blocks", "scanned", "skipped", "copied",
                 "counters_copied", "converged")

    def __init__(self, reference: int, n_blocks: int):
        self.reference = reference
        self.n_blocks = n_blocks
        self.scanned: list[int] = []
        self.skipped: list[int] = []
        self.copied: dict[int, list[int]] = {}
        self.counters_copied = 0
        self.converged = True

    def as_dict(self) -> dict:
        return {"reference": self.reference, "n_blocks": self.n_blocks,
                "scanned": self.scanned, "skipped": self.skipped,
                "copied": {str(k): v for k, v in self.copied.items()},
                "counters_copied": self.counters_copied,
                "converged": self.converged}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RepairReport(reference={self.reference}, "
                f"copied={sum(map(len, self.copied.values()))} block(s), "
                f"converged={self.converged})")


def block_span(m: int, n_blocks: int, block: int) -> tuple[int, int]:
    """Half-open counter span ``[start, end)`` of repair block *block*."""
    return block * m // n_blocks, (block + 1) * m // n_blocks


def _check_grid(m: int, n_blocks: int) -> int:
    if not 1 <= n_blocks <= m:
        raise ValueError(
            f"n_blocks must be in [1, m={m}], got {n_blocks}")
    return int(n_blocks)


@contextmanager
def _frozen_sbf(handle) -> Iterator[object]:
    """Yield the raw in-memory filter of a local handle, frozen if the
    handle can freeze (ConcurrentSBF), plain otherwise."""
    if hasattr(handle, "exclusive") and hasattr(handle, "sbf"):
        with handle.exclusive():
            yield handle.sbf
        return
    yield getattr(handle, "sbf", handle)


def _span_checksum(sbf, start: int, end: int) -> int:
    values = sbf.counters.get_many(np.arange(start, end, dtype=np.int64))
    return zlib.crc32(np.ascontiguousarray(
        values, dtype="<i8").tobytes()) & 0xFFFFFFFF


def block_checksums(handle, n_blocks: int = DEFAULT_REPAIR_BLOCKS,
                    ) -> list[int]:
    """One CRC32 per repair block over *handle*'s counter values."""
    if hasattr(handle, "block_checksums"):
        return handle.block_checksums(n_blocks)
    with _frozen_sbf(handle) as sbf:
        n_blocks = _check_grid(sbf.m, n_blocks)
        return [_span_checksum(sbf, *block_span(sbf.m, n_blocks, b))
                for b in range(n_blocks)]


def read_blocks(handle, n_blocks: int, blocks: Sequence[int],
                ) -> dict[int, list[int]]:
    """Counter values of the given repair blocks, ``{block: values}``."""
    if hasattr(handle, "read_blocks"):
        return handle.read_blocks(n_blocks, blocks)
    with _frozen_sbf(handle) as sbf:
        n_blocks = _check_grid(sbf.m, n_blocks)
        out = {}
        for block in blocks:
            start, end = block_span(sbf.m, n_blocks, int(block))
            out[int(block)] = sbf.counters.get_many(
                np.arange(start, end, dtype=np.int64)).tolist()
        return out


def write_blocks(handle, n_blocks: int, blocks: dict[int, Sequence[int]],
                 *, total_count: int | None = None) -> int:
    """Overwrite repair blocks with the given counter values.

    Returns the number of counters written.  Refuses non-MS filters
    locally (their state is not fully captured by the counter vector).
    """
    if hasattr(handle, "write_blocks"):
        return handle.write_blocks(n_blocks, blocks,
                                   total_count=total_count)
    with _frozen_sbf(handle) as sbf:
        n_blocks = _check_grid(sbf.m, n_blocks)
        _require_ms(sbf)
        written = 0
        for block, values in blocks.items():
            start, end = block_span(sbf.m, n_blocks, int(block))
            values = np.asarray(values, dtype=np.int64)
            if values.size != end - start:
                raise ValueError(
                    f"block {block} spans {end - start} counters, got "
                    f"{values.size} values")
            sbf.counters.set_many(np.arange(start, end, dtype=np.int64),
                                  values)
            written += int(values.size)
        if total_count is not None:
            sbf.total_count = int(total_count)
        return written


def _require_ms(sbf) -> None:
    if sbf.method.name != "ms":
        raise ValueError(
            f"anti-entropy repair requires Minimum Selection (all state "
            f"in the counter vector); got method {sbf.method.name!r}")


def _reachable_total(handle) -> int | None:
    try:
        return handle.total_count
    except Exception:
        return None


def repair_replicas(replicas: Sequence[object], *,
                    n_blocks: int = DEFAULT_REPAIR_BLOCKS,
                    reference: int | None = None) -> RepairReport:
    """Run one anti-entropy pass over *replicas*; returns the report.

    The reference (source of truth) is the replica with the largest
    ``total_count`` among the reachable ones unless *reference* pins it
    — with one-sided hinted handoff the most-written replica is the one
    that saw every acknowledged operation.  Unreachable replicas are
    skipped (and reported); repair them on re-admission.
    """
    if not replicas:
        raise ValueError("repair needs at least one replica")
    totals = [_reachable_total(handle) for handle in replicas]
    if reference is None:
        candidates = [i for i, total in enumerate(totals)
                      if total is not None]
        if not candidates:
            raise ValueError("no replica is reachable; nothing to repair "
                             "from")
        reference = max(candidates, key=lambda i: totals[i])
    elif totals[reference] is None:
        raise ValueError(f"reference replica {reference} is unreachable")
    report = RepairReport(reference, n_blocks)
    ref = replicas[reference]
    ref_total = totals[reference]
    ref_sums = block_checksums(ref, n_blocks)
    for i, handle in enumerate(replicas):
        if i == reference:
            continue
        if totals[i] is None:
            report.skipped.append(i)
            continue
        try:
            sums = block_checksums(handle, n_blocks)
        except Exception:
            report.skipped.append(i)
            continue
        report.scanned.append(i)
        diff = [b for b in range(n_blocks) if sums[b] != ref_sums[b]]
        if not diff and totals[i] == ref_total:
            continue
        payload = read_blocks(ref, n_blocks, diff) if diff else {}
        report.counters_copied += write_blocks(
            handle, n_blocks, payload, total_count=ref_total)
        report.copied[i] = diff
        after = block_checksums(handle, n_blocks)
        if after != ref_sums or handle.total_count != ref_total:
            report.converged = False
    return report
