"""The serving front end: bounded queues, admission control, graceful drain.

:class:`ServingEngine` is what a request stream actually talks to.  It
accepts point operations (:meth:`submit` returns a future), holds them in
a bounded queue, and a pump — either the caller's thread
(:meth:`pump` / :meth:`drain`, fully deterministic, what the tests use)
or a background worker (:meth:`start`) — coalesces them into batches for
the :class:`~repro.serve.batch.ShardBatcher`.

**Admission control.**  A serving system protects itself at the *front*
door: once the queue is past its bound, new work is refused with a typed
:class:`Overloaded` (so clients can back off — the serving-side analogue
of the transport's :class:`~repro.db.transport.DeliveryFailed` budget)
rather than queued into unbounded latency.  The decision is a pluggable
policy: :func:`reject_new` (default — refuse arrivals at the bound) or
:func:`shed_oldest` (admit the arrival, fail the *oldest* queued request,
bounding staleness instead of arrival rate); any callable with the same
signature slots in.

**End-to-end deadlines.**  :meth:`submit` takes a ``timeout`` (or a
pre-built :class:`~repro.serve.resilience.Deadline`) covering the whole
request lifetime: queueing, batching, shard/replica work, transport
retries.  The pump fails already-expired requests without executing
them, and the batcher carries the deadline down the stack via
:func:`~repro.serve.resilience.deadline_scope` so every layer stops
working the moment the caller stops waiting.

**Graceful shutdown.**  :meth:`close` stops the worker, drains every
queued request, checkpoints durable shards (their WAL/snapshot dance),
and fails anything submitted afterwards — an engine never drops
acknowledged work on the floor.

Latency accounting uses the injected clock from the metrics registry
(:mod:`repro.serve.metrics`), so tests measure queueing behaviour with a
fake clock and zero flakiness.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Sequence

from repro.persist.durable import DurableSBF
from repro.serve.batch import ShardBatcher
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import Deadline, DeadlineExceeded
from repro.serve.router import ShardedSBF

#: admission decisions a policy may return
ACCEPT = "accept"
REJECT = "reject"
SHED_OLDEST = "shed-oldest"


class Overloaded(RuntimeError):
    """The engine refused work to protect its latency bound.

    Attributes:
        depth: queue depth at the moment of refusal.
        limit: the configured queue bound.
    """

    def __init__(self, message: str, depth: int, limit: int):
        super().__init__(message)
        self.depth = depth
        self.limit = limit


def reject_new(depth: int, limit: int, op: tuple) -> str:
    """Default policy: refuse arrivals once the queue is at its bound."""
    return ACCEPT if depth < limit else REJECT


def shed_oldest(depth: int, limit: int, op: tuple) -> str:
    """Load-shedding policy: at the bound, admit the arrival and fail the
    oldest queued request instead (bounds staleness, not arrival rate)."""
    return ACCEPT if depth < limit else SHED_OLDEST


class _Request:
    __slots__ = ("op", "future", "enqueued_at", "deadline")

    def __init__(self, op: tuple, enqueued_at: float,
                 deadline: Deadline | None = None):
        self.op = op
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.deadline = deadline


class ServingEngine:
    """Admission-controlled, batching front end over a sharded fleet.

    Args:
        router: the :class:`~repro.serve.router.ShardedSBF` to serve.
        max_queue: queue-depth bound enforced by the admission policy.
        batch_size: most requests one pump round coalesces into a batch.
        policy: admission policy callable ``(depth, limit, op) -> str``
            returning :data:`ACCEPT`, :data:`REJECT`, or
            :data:`SHED_OLDEST`; defaults to :func:`reject_new`.
        maintenance_every: run :meth:`maintain` once per this many pump
            rounds (including idle rounds, so an idle fleet still probes
            ejected replicas back in).  HA fleets want this; plain fleets
            pay nothing (no shard exposes ``tick``).
        metrics: registry to report through (defaults to the router's).
    """

    def __init__(self, router: ShardedSBF, *, max_queue: int = 1024,
                 batch_size: int = 64,
                 policy: Callable[[int, int, tuple], str] | None = None,
                 maintenance_every: int = 64,
                 metrics: MetricsRegistry | None = None):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if maintenance_every < 1:
            raise ValueError(
                f"maintenance_every must be >= 1, got {maintenance_every}")
        self.router = router
        self.metrics = metrics or router.metrics
        self.batcher = ShardBatcher(router, metrics=self.metrics)
        self.max_queue = int(max_queue)
        self.batch_size = int(batch_size)
        self.policy = policy or reject_new
        self._queue: deque[_Request] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self._worker: threading.Thread | None = None
        self._stop = threading.Event()
        self.maintenance_every = int(maintenance_every)
        self._pumps_since_maintenance = 0

    # -- the front door ----------------------------------------------------
    def submit(self, verb: str, key: object, *args,
               timeout: float | None = None,
               deadline: Deadline | None = None) -> Future:
        """Enqueue one operation; returns a future for its result.

        *timeout* (seconds on the registry clock) or an explicit
        *deadline* bounds the request end to end: the whole of queueing,
        batching, shard/replica work, and transport retries must fit the
        one budget.  A request whose deadline passes while it is still
        queued is failed with :class:`DeadlineExceeded` *without being
        executed* — the caller stopped waiting, so running it would only
        burn shard time (counted in ``engine.deadline_expired_total``).

        Raises:
            Overloaded: refused by the admission policy (typed, carries
                depth/limit so clients can back off informedly).
            RuntimeError: the engine is closed.
        """
        if timeout is not None:
            if deadline is not None:
                raise ValueError("pass timeout or deadline, not both")
            deadline = Deadline(timeout, clock=self.metrics.clock,
                                label=f"{verb} {key!r}")
        op = (verb, key, *args)
        shed: _Request | None = None
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            depth = len(self._queue)
            decision = self.policy(depth, self.max_queue, op)
            if decision == REJECT:
                self.metrics.counter("engine.rejected_total").inc()
                raise Overloaded(
                    f"queue depth {depth} at bound {self.max_queue}; "
                    f"{verb} refused", depth, self.max_queue)
            if decision == SHED_OLDEST and self._queue:
                shed = self._queue.popleft()
            elif decision not in (ACCEPT, SHED_OLDEST):
                raise ValueError(
                    f"admission policy returned {decision!r}; expected "
                    f"one of {ACCEPT!r}, {REJECT!r}, {SHED_OLDEST!r}")
            request = _Request(op, self.metrics.clock(), deadline)
            self._queue.append(request)
            self.metrics.gauge("engine.queue_depth").set(len(self._queue))
        if shed is not None:
            if shed.deadline is not None and shed.deadline.expired:
                # The victim was already dead on arrival of the shed: its
                # caller stopped waiting while it queued.  That is one
                # event, counted once — a deadline expiry, not a shed
                # (the queue slot was free either way), surfacing as one
                # typed DeadlineExceeded with the unexecuted guarantee.
                self.metrics.counter("engine.deadline_expired_total").inc()
                self.metrics.counter("engine.failed").inc()
                shed.future.set_exception(DeadlineExceeded(
                    f"{shed.op[0]} expired while queued (evicted by a "
                    f"newer arrival)", unexecuted=True))
            else:
                self.metrics.counter("engine.shed_total").inc()
                shed.future.set_exception(Overloaded(
                    f"shed after {self.max_queue} newer arrivals",
                    self.max_queue, self.max_queue))
        self.metrics.counter("engine.accepted").inc()
        return request.future

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- the pump ----------------------------------------------------------
    def pump(self, max_ops: int | None = None) -> int:
        """Process up to one batch of queued requests; returns how many.

        Deterministic single-threaded entry point: callers (and tests)
        interleave submits and pumps however they like.
        """
        budget = self.batch_size if max_ops is None else min(
            max_ops, self.batch_size)
        self._pumps_since_maintenance += 1
        if self._pumps_since_maintenance >= self.maintenance_every:
            self.maintain()
        with self._lock:
            popped = [self._queue.popleft()
                      for _ in range(min(budget, len(self._queue)))]
            self.metrics.gauge("engine.queue_depth").set(len(self._queue))
        if not popped:
            return 0
        now = self.metrics.clock()
        queue_wait = self.metrics.histogram("engine.queue_wait_seconds")
        batch: list[_Request] = []
        for request in popped:
            queue_wait.observe(now - request.enqueued_at)
            if request.deadline is not None and request.deadline.expired:
                # The caller stopped waiting while the request queued;
                # executing it now would burn shard time on an answer
                # nobody reads.
                self.metrics.counter("engine.deadline_expired_total").inc()
                self.metrics.counter("engine.failed").inc()
                request.future.set_exception(DeadlineExceeded(
                    f"{request.op[0]} expired after queueing "
                    f"{now - request.enqueued_at:.4f}s", unexecuted=True))
            else:
                batch.append(request)
        if not batch:
            return len(popped)
        with self.metrics.timed("engine.batch_seconds"):
            results = self.batcher.execute(
                [r.op for r in batch],
                deadlines=[r.deadline for r in batch])
        done = self.metrics.clock()
        latency = self.metrics.histogram("engine.latency_seconds")
        for request, result in zip(batch, results):
            latency.observe(done - request.enqueued_at)
            if isinstance(result, BaseException):
                self.metrics.counter("engine.failed").inc()
                request.future.set_exception(result)
            else:
                request.future.set_result(result)
        self.metrics.counter("engine.served").inc(len(batch))
        return len(popped)

    def maintain(self) -> int:
        """Run one maintenance round: tick every shard that has one.

        For :class:`~repro.serve.ha.ReplicaSet` shards a tick probes
        ejected replicas (draining their hint logs on recovery) — the
        engine calling this on a cadence is what makes replica
        re-admission happen without a request ever touching the down
        replica.  Returns the number of shards ticked.
        """
        self._pumps_since_maintenance = 0
        ticked = 0
        for shard in self.router.shards:
            tick = getattr(shard, "tick", None)
            if callable(tick):
                tick()
                ticked += 1
        if ticked:
            self.metrics.counter("engine.maintenance_rounds").inc()
        return ticked

    def drain(self) -> int:
        """Pump until the queue is empty; returns total requests served."""
        total = 0
        while True:
            served = self.pump()
            if not served:
                return total
            total += served

    # -- background serving ------------------------------------------------
    def start(self, poll_interval: float = 0.001) -> None:
        """Serve from a background worker until :meth:`stop` / :meth:`close`."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.is_set():
                if not self.pump():
                    time.sleep(poll_interval)

        self._worker = threading.Thread(target=run, daemon=True,
                                        name="serving-engine")
        self._worker.start()

    def stop(self) -> None:
        """Stop the background worker (queued requests stay queued)."""
        self._stop.set()
        if self._worker is not None:
            self._worker.join(timeout=30)
            self._worker = None

    # -- graceful shutdown -------------------------------------------------
    def close(self) -> dict:
        """Drain, checkpoint durable shards, and seal the front door.

        Replica-set shards are looked *through*: each durable replica is
        checkpointed and closed, then the set itself is closed (sealing
        its hint logs — an undrained hint survives on disk and replays
        when the set is rebuilt).  Returns a small report: requests
        drained and shards checkpointed.  Safe to call twice.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        self.stop()
        drained = self.drain()
        checkpointed = 0
        if not already:
            for shard in self.router.shards:
                group = getattr(shard, "replicas", None)
                for handle in (group if group is not None else (shard,)):
                    raw = getattr(handle, "raw", None)
                    if isinstance(raw, DurableSBF):
                        handle.checkpoint()
                        raw.close()
                        checkpointed += 1
                if group is not None:
                    shard.close()
            self.metrics.counter("engine.closed").inc()
        return {"drained": drained, "checkpointed": checkpointed}

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServingEngine(shards={self.router.n_shards}, "
                f"queue={self.queue_depth}/{self.max_queue}, "
                f"batch={self.batch_size})")


def run_requests(engine: ServingEngine, ops: Sequence[tuple],
                 ) -> list:
    """Submit *ops* and pump to completion; results in submission order.

    Convenience for scripted workloads (benchmarks, examples): failures
    come back as exception instances in their slots, mirroring
    :meth:`ShardBatcher.execute`.
    """
    futures = []
    for op in ops:
        try:
            futures.append(engine.submit(*op))
        except Overloaded as exc:
            future: Future = Future()
            future.set_exception(exc)
            futures.append(future)
            engine.pump()
    engine.drain()
    results = []
    for future in futures:
        exc = future.exception()
        results.append(exc if exc is not None else future.result())
    return results
