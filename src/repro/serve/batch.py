"""Request batching: one lock acquisition per shard per batch.

The naive serving path pays, per operation, a canonical-key hash, a
striped-lock acquire/release, ``k`` Python-level hash evaluations, and a
metrics update.  Under a query stream those fixed costs dominate the
actual counter work.  :class:`ShardBatcher` amortises them:

- **coalescing** — a batch of point operations is grouped by owner shard;
  each shard's group runs inside a single
  :meth:`~repro.persist.ConcurrentSBF.exclusive` section, so the locking
  cost is paid once per shard per batch instead of once per operation;
- **vectorised multi-query / multi-insert** — homogeneous batches ride
  the core bulk API (``insert_many`` / ``query_many``), which hashes the
  whole group in one numpy pass and drives the method's bulk kernels —
  every method, every backend, every key type, bit-identical to the
  scalar path by construction.  Durable shards log one ``insert_many``
  WAL record per shard group.  Remote shards (no bulk API on the wire
  handle) fall back to the per-key path — same results, less speed (the
  equivalence the tests pin down);
- **isolation of failures** — a failing operation (e.g. a delete that
  would drive a counter negative, or a remote shard whose channel gave
  up) is captured *in its result slot* as the exception instance; the
  rest of the batch still executes.  The engine maps these onto the
  per-request futures.

Results are always returned in submission order, regardless of how the
batch was partitioned across shards.

Two serving-stack integrations ride through here:

- **bulk handles with partial failure** — a shard handle whose bulk API
  returns a :class:`~repro.serve.remote.BulkResult`
  (:class:`~repro.serve.remote.RemoteShard`,
  :class:`~repro.serve.ha.ReplicaSet`) reports per-key failures instead
  of raising; the batcher maps them back onto the submission-order slots
  and :meth:`ShardBatcher.insert_many` itself returns an aggregated
  ``BulkResult`` over the whole batch;
- **rolling reshards** — while the router reports :attr:`~ShardedSBF.
  migrating`, shard grouping is unsound (ownership moves between the
  grouping and the lock, and dual-routed writes must hit both fleets),
  so every batch falls back to the router's per-operation path, which
  carries the migration's flag-flip protocol.  Slower, correct, and
  temporary by construction.
"""

from __future__ import annotations

from typing import Sequence

from repro.persist import LockTimeout
from repro.persist.durable import DurableSBF
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import BulkFailure, BulkResult, _retryable
from repro.serve.resilience import DeadlineExceeded, deadline_scope

#: operation verbs accepted by :meth:`ShardBatcher.execute`
VERBS = frozenset({"insert", "delete", "set", "query", "contains"})


class ShardBatcher:
    """Batch executor over a :class:`~repro.serve.router.ShardedSBF`.

    Args:
        router: the sharded fleet to execute against.
        metrics: registry to report through (defaults to the router's).
    """

    def __init__(self, router, *,
                 metrics: MetricsRegistry | None = None):
        self.router = router
        self.metrics = metrics or router.metrics

    # -- generic mixed batches --------------------------------------------
    def execute(self, ops: Sequence[tuple], *,
                timeout: float | None = None,
                deadlines: Sequence | None = None) -> list:
        """Run a batch of point operations; results in submission order.

        Each op is a tuple ``(verb, key[, count_or_threshold])`` with verb
        one of ``insert`` / ``delete`` / ``set`` / ``query`` /
        ``contains``.  Query-family ops produce their value in the result
        slot, mutations produce ``None``, and a failing op produces its
        exception *instance* (the batch continues — callers decide whether
        a slot failed with ``isinstance(result, Exception)``).

        *deadlines* is a parallel sequence of per-op
        :class:`~repro.serve.resilience.Deadline` objects (``None``
        entries mean unbounded).  Each op runs inside its own
        :func:`~repro.serve.resilience.deadline_scope`, so deadline-aware
        shard handles (replica sets, remote shards) stop retrying when
        that op's caller stops waiting; an op already expired when its
        turn comes is failed in its slot without touching the shard.
        A shard group whose lock acquisition fails (:class:`LockTimeout`)
        fails its slots instead of felling the whole batch.
        """
        results: list = [None] * len(ops)
        for idx, op in enumerate(ops):
            if not op or op[0] not in VERBS:
                raise ValueError(f"op {idx} must start with one of "
                                 f"{sorted(VERBS)}, got {op!r}")
        if deadlines is None:
            deadlines = [None] * len(ops)
        elif len(deadlines) != len(ops):
            raise ValueError(
                f"deadlines must parallel ops: {len(deadlines)} deadlines "
                f"for {len(ops)} ops")
        if self.router.migrating:
            for idx, op in enumerate(ops):
                try:
                    with deadline_scope(deadlines[idx]):
                        results[idx] = self._routed(op)
                except Exception as exc:
                    results[idx] = exc
            self.metrics.counter("batch.ops").inc(len(ops))
            self.metrics.counter("batch.migrating_fallback").inc(len(ops))
            return results
        by_shard: dict[int, list[int]] = {}
        owners = self.router.shard_of_many([op[1] for op in ops])
        for idx, owner in enumerate(owners):
            deadline = deadlines[idx]
            if deadline is not None and deadline.expired:
                # Fail it here rather than dragging its group's lock
                # timeout to zero: the expired op never reaches a shard,
                # its shard-mates keep their time budget.
                try:
                    deadline.check(ops[idx][0], unexecuted=True)
                except DeadlineExceeded as exc:
                    results[idx] = exc
                continue
            by_shard.setdefault(owner, []).append(idx)
        for shard_id in sorted(by_shard):
            group = by_shard[shard_id]
            shard = self.router.shards[shard_id]
            # The group's lock wait must fit the tightest member deadline:
            # a caller with 5ms left cannot spend 5s queueing for a lock.
            lock_timeout = timeout
            for idx in group:
                if deadlines[idx] is not None:
                    left = max(deadlines[idx].remaining(), 0.0)
                    lock_timeout = left if lock_timeout is None \
                        else min(lock_timeout, left)
            try:
                with shard.exclusive(lock_timeout) as raw:
                    for idx in group:
                        try:
                            deadline = deadlines[idx]
                            if deadline is not None:
                                deadline.check(ops[idx][0],
                                               unexecuted=True)
                            with deadline_scope(deadline):
                                results[idx] = _apply(raw, ops[idx])
                        except Exception as exc:
                            results[idx] = exc
            except (LockTimeout, DeadlineExceeded) as exc:
                for idx in group:
                    results[idx] = exc
                continue
            if hasattr(shard, "add_operations"):
                shard.add_operations(len(group))
            self.router.note_shard_ops(shard_id, len(group))
        self.metrics.counter("batch.ops").inc(len(ops))
        self.metrics.counter("batch.shard_batches").inc(len(by_shard))
        self.metrics.histogram("batch.size", (1, 4, 16, 64, 256, 1024)
                               ).observe(len(ops))
        return results

    # -- vectorised homogeneous batches -----------------------------------
    def query_many(self, keys: Sequence[object], *,
                   timeout: float | None = None, deadline=None) -> list:
        """Frequency estimates for *keys*, in order (vectorised when the
        shard handle speaks the bulk API, per-key otherwise — identical
        results either way).  A key a partial-failure handle could not
        answer gets its exception *instance* in the slot, mirroring
        :meth:`execute`.  *deadline* bounds the whole bulk call — it is
        scoped around each shard group so deadline-aware handles stop
        mid-batch, and raises
        :class:`~repro.serve.resilience.DeadlineExceeded` if it expires
        before the batch is done."""
        if deadline is not None:
            deadline.check("query_many")
        results: list = [0] * len(keys)
        if self.router.migrating:
            for slot, key in enumerate(keys):
                try:
                    results[slot] = self.router.query(key)
                except Exception as exc:
                    results[slot] = exc
            self.metrics.counter("batch.ops").inc(len(keys))
            self.metrics.counter("batch.migrating_fallback").inc(len(keys))
            return results
        for shard_id, shard, indices in self._grouped(keys):
            if deadline is not None:
                deadline.check("query_many")
            group_keys = [keys[i] for i in indices]
            with deadline_scope(deadline), shard.exclusive(timeout) as raw:
                if hasattr(raw, "query_many"):
                    outcome = raw.query_many(group_keys)
                    if isinstance(outcome, BulkResult):
                        # Partial-failure handle: failed slots carry the
                        # exception instance, answered slots the estimate.
                        estimates = outcome.values.tolist()
                        for failure in outcome.failures:
                            estimates[failure.index] = failure.error
                    else:
                        estimates = outcome.tolist()
                    for slot, estimate in zip(indices, estimates):
                        results[slot] = estimate
                    self.metrics.counter("batch.vectorized").inc(
                        len(group_keys))
                else:
                    for slot, key in zip(indices, group_keys):
                        results[slot] = raw.query(key)
            self._account(shard, shard_id, len(indices))
        self.metrics.counter("batch.ops").inc(len(keys))
        return results

    def insert_many(self, keys: Sequence[object], *,
                    timeout: float | None = None,
                    deadline=None) -> BulkResult:
        """Insert every key once through the core bulk kernels.

        Each shard's group is one ``insert_many`` call on the raw handle
        — for durable shards that is one WAL record (and one fsync) per
        group instead of one per key.  Returns a
        :class:`~repro.serve.remote.BulkResult` over the whole batch:
        per-key failures reported by partial-failure handles (remote
        shards, replica sets) are re-indexed to submission order, and a
        shard group that fails outright (lock timeout, channel give-up,
        the optional *deadline* expiring) fails its keys in their slots
        instead of felling the batch.
        """
        if deadline is not None:
            deadline.check("insert_many")
        failures: list[BulkFailure] = []
        if self.router.migrating:
            for slot, key in enumerate(keys):
                try:
                    self.router.insert(key, 1)
                except Exception as exc:
                    failures.append(
                        BulkFailure(slot, key, exc, _retryable(exc)))
            self.metrics.counter("batch.ops").inc(len(keys))
            self.metrics.counter("batch.migrating_fallback").inc(len(keys))
            return BulkResult(len(keys), failures=failures)
        for shard_id, shard, indices in self._grouped(keys):
            group_keys = [keys[i] for i in indices]
            try:
                if deadline is not None:
                    deadline.check("insert_many")
                with deadline_scope(deadline), \
                        shard.exclusive(timeout) as raw:
                    if hasattr(raw, "insert_many"):
                        outcome = raw.insert_many(group_keys)
                        self.metrics.counter("batch.vectorized").inc(
                            len(group_keys))
                    else:
                        outcome = None
                        for key in group_keys:
                            raw.insert(key, 1)
            except Exception as exc:
                failures.extend(
                    BulkFailure(slot, keys[slot], exc, _retryable(exc))
                    for slot in indices)
                continue
            if isinstance(outcome, BulkResult):
                failures.extend(
                    BulkFailure(indices[f.index], f.key, f.error,
                                f.retryable)
                    for f in outcome.failures)
            self._account(shard, shard_id, len(indices))
        self.metrics.counter("batch.ops").inc(len(keys))
        failures.sort(key=lambda f: f.index)
        return BulkResult(len(keys), failures=failures)

    # -- plumbing ----------------------------------------------------------
    def _routed(self, op: tuple):
        """Apply one op through the router's point path (the migrating
        fallback — dual routing lives there)."""
        verb, key = op[0], op[1]
        if verb == "query":
            return self.router.query(key)
        if verb == "contains":
            return self.router.contains(key, op[2] if len(op) > 2 else 1)
        if verb == "set":
            if len(op) < 3:
                raise ValueError(f"set op needs a count: {op!r}")
            self.router.set(key, op[2])
            return None
        getattr(self.router, verb)(key, op[2] if len(op) > 2 else 1)
        return None

    def _grouped(self, keys: Sequence[object]):
        by_shard: dict[int, list[int]] = {}
        for idx, owner in enumerate(self.router.shard_of_many(keys)):
            by_shard.setdefault(owner, []).append(idx)
        self.metrics.counter("batch.shard_batches").inc(len(by_shard))
        for shard_id in sorted(by_shard):
            yield shard_id, self.router.shards[shard_id], by_shard[shard_id]

    def _account(self, shard, shard_id: int, n: int) -> None:
        if hasattr(shard, "add_operations"):
            shard.add_operations(n)
        self.router.note_shard_ops(shard_id, n)


def _apply(raw, op: tuple):
    """Apply one op tuple to an unlocked handle; returns the op's value."""
    verb, key = op[0], op[1]
    if verb == "insert":
        raw.insert(key, op[2] if len(op) > 2 else 1)
        return None
    if verb == "delete":
        count = op[2] if len(op) > 2 else 1
        _check_deletable(raw, key, count)
        raw.delete(key, count)
        return None
    if verb == "set":
        if len(op) < 3:
            raise ValueError(f"set op needs a count: {op!r}")
        return _apply_set(raw, key, op[2])
    if verb == "query":
        return raw.query(key)
    if verb == "contains":
        return raw.contains(key, op[2] if len(op) > 2 else 1)
    raise ValueError(f"unknown verb {verb!r}")  # pragma: no cover


def _check_deletable(raw, key: object, count: int) -> None:
    """Mirror ConcurrentSBF's guard: an in-memory MS/RM delete below zero
    must fail cleanly *before* touching counters (DurableSBF checks this
    itself before logging)."""
    if isinstance(raw, DurableSBF) or not hasattr(raw, "method"):
        return  # DurableSBF / remote shards run this guard themselves
    if count > 0 and raw.method.name != "mi" \
            and raw.min_counter(key) < count:
        raise ValueError(
            f"deleting {count} of {key!r} would drive a counter negative")


def _apply_set(raw, key: object, count: int):
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(raw, DurableSBF) or hasattr(raw, "set"):
        raw.set(key, count)
        return None
    current = raw.query(key)
    if count > current:
        raw.insert(key, count - current)
    elif count < current:
        raw.delete(key, current - count)
    return None
