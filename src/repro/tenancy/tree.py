"""The spectral Bloofi tree: a fleet index over per-tenant filters.

A fleet holding thousands of per-tenant spectral filters needs the
multi-set query "**which sets contain key x, and how often?**" — and
scanning N filters is O(N).  Crainiceanu & Lemire's *Bloofi* answers it
in sublinear time with a B+-tree whose leaves are the filters and whose
inner nodes are bitwise ORs of their children; the spectral twist here is
that inner nodes hold **counter-wise unions** (sums), so the tree prunes
*and* carries frequency information at every level.

Structure and invariants:

- every leaf wraps one tenant's serving handle (a plain
  :class:`~repro.core.sbf.SpectralBloomFilter`, a
  :class:`~repro.persist.ConcurrentSBF`, a
  :class:`~repro.persist.DurableSBF`, or a replicated
  :class:`~repro.serve.ha.ReplicaSet`) — any method, any backend — and
  every filter in the tree shares one hash family ``(m, k, seed)``, so a
  key's ``k`` counter positions are computed **once** per query and are
  valid at every node;
- every inner node holds an ``m``-vector that is exactly the counter-wise
  union (sum) of its children's *signatures* — the Minimum-Selection
  encoding of the multiset inserted below it.  For additive leaf methods
  (MS, RM, TRM — every insert adds ``count`` to all ``k`` primary
  counters) the leaf's own counter vector *is* its signature; Minimal
  Increase leaves keep an explicit signature vector alongside, because
  their counters advance sub-additively;
- inserts and deletes apply to the leaf first, then propagate the same
  ``k``-position delta up the root path (O(k · height) scalar adds, or
  one aggregated scatter-add per ancestor for bulk batches) — so the
  union invariant holds after every operation, which
  :meth:`SpectralBloofiTree.verify` checks and the property tests
  exercise under interleaved mount/unmount/insert/delete sequences;
- queries descend only branches whose inner counters are all nonzero at
  the key's positions.  The pruning is **exact** (never drops an answer)
  by the same argument that makes the blocked-hash router transparent:
  counters are non-negative, so an inner node's minimum over the key's
  positions dominates every descendant signature's minimum, which in
  turn dominates the leaf estimate for every method (MS/RM estimates are
  bounded by the primary minimum; MI counters are pointwise below the
  signature).  Inner minimum zero therefore proves every leaf below
  answers zero — the tree's answers are bit-identical to scanning all
  leaves.

Lifecycle is live: :meth:`~SpectralBloofiTree.mount` and
:meth:`~SpectralBloofiTree.unmount` add and remove tenants without
pausing traffic, with rebalancing bounded per operation — an overflowing
node splits in two (O(fanout) child vectors summed), an underflowing
node merges into or borrows from an adjacent sibling, and a root left
with a single inner child collapses.  All leaves stay at one depth
(B+-tree style), so descent cost is uniform.

Snapshot/restore rides the existing multi-section wire manifest
(:func:`~repro.core.serialize.seal_sections`): one checksummed frame
whose sections are the leaves' v2 filter frames plus a structure header;
:func:`load_tree` rebuilds the inner unions bottom-up from the loaded
leaves, so a corrupted inner vector can never be smuggled in through a
snapshot.

Everything reports through ``tenancy.*`` metrics in the shared
:class:`~repro.serve.metrics.MetricsRegistry` — lifecycle counters,
per-query nodes-visited totals, and per-level node/occupancy gauges
(refreshed by :meth:`~SpectralBloofiTree.refresh_level_gauges`, an
O(nodes) walk kept off the hot path).

All writes to a mounted tenant must flow through the tree (or the
:class:`~repro.tenancy.directory.TenantDirectory` front) — a write
applied directly to a leaf handle would desynchronise the ancestor
unions, which :meth:`verify` detects but nothing repairs automatically.
"""

from __future__ import annotations

import threading
from typing import Iterator, Sequence

import numpy as np

from repro.core.sbf import SpectralBloomFilter
from repro.core.serialize import (
    WireFormatError,
    dump_sbf,
    family_name,
    load_sbf,
    open_sections,
    seal_sections,
)
from repro.hashing.families import make_family
from repro.hashing.vectorized import canonicalize_many, matrix_for
from repro.serve.metrics import MetricsRegistry

#: tree-manifest frame magic ("Repro Bloofi Tree v1")
TREE_MAGIC = b"RBT1"

#: leaf methods whose primary counters advance additively (insert adds
#: ``count`` at all k positions), making the leaf's own counter vector its
#: signature; Minimal Increase is the exception and keeps an explicit one.
_ADDITIVE_METHODS = frozenset({"ms", "rm"})


class UnknownTenant(ValueError):
    """The tenant id is not mounted in the tree."""


class _Node:
    """One tree node — inner (children + union vector) or leaf (tenant).

    ``children is None`` marks a leaf.  ``array`` is the inner node's
    counter-wise union of its children's signatures; on leaves,
    ``signature`` is the explicitly-tracked signature vector (``None``
    when the leaf's own counters serve as the signature — the additive
    methods).
    """

    __slots__ = ("parent", "children", "array", "n_leaves",
                 "tenant", "handle", "signature")

    def __init__(self):
        self.parent: _Node | None = None
        self.children: list[_Node] | None = None
        self.array: np.ndarray | None = None
        self.n_leaves = 0
        self.tenant: object = None
        self.handle: object = None
        self.signature: np.ndarray | None = None

    @classmethod
    def inner(cls, m: int) -> "_Node":
        node = cls()
        node.children = []
        node.array = np.zeros(m, dtype=np.int64)
        return node

    @classmethod
    def leaf(cls, tenant: object, handle: object,
             signature: np.ndarray | None) -> "_Node":
        node = cls()
        node.tenant = tenant
        node.handle = handle
        node.signature = signature
        node.n_leaves = 1
        return node

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_leaf:
            return f"_Node(leaf {self.tenant!r})"
        return f"_Node(inner, {len(self.children)} children)"


def _leaf_sbf(handle: object) -> SpectralBloomFilter | None:
    """The in-memory filter behind a leaf handle, or ``None``.

    ``ConcurrentSBF`` / ``DurableSBF`` / ``ReplicaSet`` all expose
    ``.sbf``; a plain filter is its own.  Remote-only handles have none.
    """
    if isinstance(handle, SpectralBloomFilter):
        return handle
    try:
        sbf = getattr(handle, "sbf", None)
    except AttributeError:  # ReplicaSet with no local replica
        return None
    return sbf if isinstance(sbf, SpectralBloomFilter) else None


def _counters_array(sbf: SpectralBloomFilter) -> np.ndarray:
    """The filter's primary counter vector as a fresh int64 array."""
    raw = getattr(sbf.counters, "raw", None)
    if isinstance(raw, np.ndarray):
        return raw.astype(np.int64)
    return np.fromiter(iter(sbf.counters), dtype=np.int64, count=sbf.m)


def _direct_counters(handle: object) -> np.ndarray | None:
    """Counter array for leaves the descent may read in place of
    ``handle.query``: a bare filter whose estimate is the plain counter
    minimum (ms/mi) over an array-raw backend.  The tree already holds
    the batch position matrix, so these leaves cost one gather instead
    of a full hash-and-dispatch round trip per visit.  RM consults its
    secondary filter and wrapped handles (concurrent / durable /
    replicated) own their read paths, so both stay on the handle.
    """
    if type(handle) is not SpectralBloomFilter:
        return None
    if handle.method.name not in ("ms", "mi"):
        return None
    raw = getattr(handle.counters, "raw", None)
    return raw if isinstance(raw, np.ndarray) else None


class SpectralBloofiTree:
    """A B+-tree of spectral filters answering multi-set frequency queries.

    Args:
        m: counters per filter (shared by every node and leaf).
        k: hash probes per key (shared).
        seed: determinism seed for the shared hash family.
        hash_family: family name or class (``"modmul"`` default — the
            same default as :class:`~repro.core.sbf.SpectralBloomFilter`,
            so default-constructed filters mount without ceremony).
        fanout: maximum children per inner node (>= 2); nodes split when
            they exceed it and merge/borrow below ``max(2, fanout // 2)``.
        metrics: registry for the ``tenancy.*`` surface (one is created
            if omitted).
    """

    def __init__(self, m: int, k: int, *, seed: int = 0,
                 hash_family: object = "modmul", fanout: int = 16,
                 metrics: MetricsRegistry | None = None):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.m = int(m)
        self.k = int(k)
        self.seed = int(seed)
        self.fanout = int(fanout)
        self.family = make_family(hash_family, self.m, self.k,
                                  seed=self.seed)
        self.metrics = metrics or MetricsRegistry()
        self._root = _Node.inner(self.m)
        self._leaves: dict[object, _Node] = {}
        self._lock = threading.RLock()
        self._max_level_seen = 0
        self._update_shape_gauges()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> tuple:
        """Mounted tenant ids (unordered snapshot)."""
        with self._lock:
            return tuple(self._leaves)

    @property
    def n_tenants(self) -> int:
        return len(self._leaves)

    @property
    def height(self) -> int:
        """Inner levels above the leaves (1 for a freshly built tree)."""
        with self._lock:
            return self._height()

    def _height(self) -> int:
        depth, node = 1, self._root
        while node.children and not node.children[0].is_leaf:
            depth += 1
            node = node.children[0]
        return depth

    @property
    def n_nodes(self) -> int:
        """All nodes, inner and leaf."""
        with self._lock:
            return sum(1 for _ in self._walk())

    def _walk(self) -> Iterator[tuple[_Node, int]]:
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            if not node.is_leaf:
                stack.extend((child, depth + 1) for child in node.children)

    def handle_of(self, tenant: object) -> object:
        """The serving handle mounted for *tenant*."""
        return self._leaf(tenant).handle

    def _leaf(self, tenant: object) -> _Node:
        leaf = self._leaves.get(tenant)
        if leaf is None:
            raise UnknownTenant(f"tenant {tenant!r} is not mounted")
        return leaf

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def mount(self, tenant: object, handle: object = None, *,
              method: object = "ms", backend: object = "numpy",
              method_options: dict | None = None,
              backend_options: dict | None = None,
              signature: np.ndarray | None = None) -> object:
        """Attach *tenant*'s filter to the tree; returns the leaf handle.

        With no *handle* a fresh tree-compatible
        :class:`~repro.core.sbf.SpectralBloomFilter` is created
        (*method*/*backend* and their options apply to it).  An existing
        handle — possibly pre-populated — must share the tree's
        ``(m, k, seed, family)``; its current counters are folded into
        every ancestor, so queries see the mounted content immediately.

        *signature* supplies the mount-time signature vector explicitly
        for handles whose counters the tree cannot read (remote-only
        replica sets); it is otherwise derived from the handle.

        Raises:
            ValueError: tenant already mounted, non-scalar tenant id, or
                an incompatible filter.
            TypeError: a non-empty handle whose signature cannot be
                derived and was not supplied.
        """
        if not isinstance(tenant, (str, int)) or isinstance(tenant, bool):
            raise ValueError(
                f"tenant ids must be str or int (they travel in the wire "
                f"manifest header), got {type(tenant).__name__}")
        with self._lock:
            if tenant in self._leaves:
                raise ValueError(f"tenant {tenant!r} is already mounted")
            if handle is None:
                handle = SpectralBloomFilter(
                    self.m, self.k, seed=self.seed,
                    hash_family=self.family.spawn(),
                    method=method, backend=backend,
                    method_options=method_options,
                    backend_options=backend_options)
            vector, explicit = self._mount_signature(handle, signature)
            leaf = _Node.leaf(tenant, handle,
                              vector.copy() if explicit else None)
            parent = self._mount_point()
            leaf.parent = parent
            parent.children.append(leaf)
            node = parent
            while node is not None:
                node.array += vector
                node.n_leaves += 1
                node = node.parent
            self._leaves[tenant] = leaf
            self._split_overflowing(parent)
            self.metrics.counter("tenancy.mounts").inc()
            self._update_shape_gauges()
        return handle

    def _mount_signature(self, handle: object,
                         signature: np.ndarray | None,
                         ) -> tuple[np.ndarray, bool]:
        """``(vector, explicit)`` for a handle entering the tree.

        *explicit* marks leaves whose signature the tree must track
        itself: Minimal-Increase filters (sub-additive counters) and
        handles with no readable local filter or with replica fan-out
        (whose counters may lag acknowledged writes behind hints).
        """
        sbf = _leaf_sbf(handle)
        if sbf is not None:
            if sbf.m != self.m or not self.family.is_compatible(sbf.family):
                raise ValueError(
                    f"tenant filter must share the tree's parameters and "
                    f"hash family {self.family!r}; got {sbf.family!r}")
        if signature is not None:
            vector = np.asarray(signature, dtype=np.int64)
            if vector.shape != (self.m,):
                raise ValueError(
                    f"signature must have shape ({self.m},), got "
                    f"{vector.shape}")
            if vector.size and int(vector.min()) < 0:
                raise ValueError("signature counters must be >= 0")
            return vector.copy(), True
        replicated = getattr(handle, "replicas", None) is not None
        if sbf is not None:
            vector = _counters_array(sbf)
            explicit = replicated or sbf.method.name not in _ADDITIVE_METHODS
            return vector, explicit
        if getattr(handle, "total_count", None) == 0:
            return np.zeros(self.m, dtype=np.int64), True
        raise TypeError(
            f"cannot derive a mount signature from {type(handle).__name__} "
            f"(no readable local filter); mount it empty or pass "
            f"signature=")

    def _mount_point(self) -> _Node:
        """The least-loaded leaf-parent node (keeps the tree balanced)."""
        node = self._root
        while node.children and not node.children[0].is_leaf:
            node = min(node.children, key=lambda child: child.n_leaves)
        return node

    def unmount(self, tenant: object) -> object:
        """Detach *tenant*; returns its handle (still fully usable).

        The leaf's signature is subtracted from every ancestor and the
        tree rebalances locally (merge/borrow/collapse) — other tenants
        keep serving throughout.
        """
        with self._lock:
            leaf = self._leaf(tenant)
            vector = self._vector(leaf)
            parent = leaf.parent
            parent.children.remove(leaf)
            node = parent
            while node is not None:
                node.array -= vector
                node.n_leaves -= 1
                node = node.parent
            leaf.parent = None
            del self._leaves[tenant]
            self._rebalance_underflow(parent)
            self.metrics.counter("tenancy.unmounts").inc()
            self._update_shape_gauges()
        return leaf.handle

    def _vector(self, node: _Node) -> np.ndarray:
        """A node's signature: union vector (inner), tracked signature
        (explicit leaves), or the leaf filter's own counters (additive
        leaves, read on demand — no duplicate storage)."""
        if not node.is_leaf:
            return node.array
        if node.signature is not None:
            return node.signature
        sbf = _leaf_sbf(node.handle)
        if sbf is None:  # pragma: no cover - mount() forbids this state
            raise TypeError(f"leaf {node.tenant!r} lost its local filter")
        return _counters_array(sbf)

    # -- rebalancing -------------------------------------------------------
    @property
    def _min_children(self) -> int:
        # ceil(fanout / 2): the split of an overflowing node (fanout + 1
        # children into floor/ceil halves) always satisfies it, for every
        # fanout >= 2 — the classic B-tree occupancy bound.
        return (self.fanout + 1) // 2

    def _split_overflowing(self, node: _Node | None) -> None:
        """Split nodes holding more than *fanout* children, walking up."""
        while node is not None and len(node.children) > self.fanout:
            half = len(node.children) // 2
            moved = node.children[half:]
            node.children = node.children[:half]
            sibling = _Node.inner(self.m)
            sibling.children = moved
            for child in moved:
                child.parent = sibling
                sibling.array += self._vector(child)
                sibling.n_leaves += child.n_leaves
            node.array = node.array - sibling.array
            node.n_leaves -= sibling.n_leaves
            parent = node.parent
            if parent is None:
                root = _Node.inner(self.m)
                root.children = [node, sibling]
                root.array = node.array + sibling.array
                root.n_leaves = node.n_leaves + sibling.n_leaves
                node.parent = sibling.parent = root
                self._root = root
            else:
                sibling.parent = parent
                parent.children.insert(
                    parent.children.index(node) + 1, sibling)
            self.metrics.counter("tenancy.splits").inc()
            node = parent

    def _rebalance_underflow(self, node: _Node) -> None:
        """Merge or borrow for nodes below the minimum occupancy."""
        while node is not None:
            parent = node.parent
            if parent is None:
                # Root: collapse a single-inner-child chain so height
                # tracks the population back down.
                while (len(self._root.children) == 1
                       and not self._root.children[0].is_leaf):
                    self._root = self._root.children[0]
                    self._root.parent = None
                    self.metrics.counter("tenancy.collapses").inc()
                return
            if len(node.children) >= self._min_children:
                return
            siblings = parent.children
            at = siblings.index(node)
            neighbours = [siblings[i] for i in (at - 1, at + 1)
                          if 0 <= i < len(siblings)]
            if not neighbours:
                # An only child has nobody to merge with or borrow from.
                # Prune it if it is empty; otherwise defer to the parent
                # (a single-child root collapses, handing this node the
                # root's underflow exemption).
                if not node.children:
                    siblings.remove(node)
                    node.parent = None
                node = parent
                continue
            sibling = min(neighbours, key=lambda s: len(s.children))
            if len(sibling.children) + len(node.children) <= self.fanout:
                for child in node.children:
                    child.parent = sibling
                sibling.children.extend(node.children)
                sibling.array += node.array
                sibling.n_leaves += node.n_leaves
                node.children = []
                node.parent = None
                siblings.remove(node)
                self.metrics.counter("tenancy.merges").inc()
                node = parent
            else:
                # Borrow the sibling's child adjacent to this node.
                child = sibling.children.pop(
                    -1 if siblings.index(sibling) < at else 0)
                vector = self._vector(child)
                sibling.array -= vector
                sibling.n_leaves -= child.n_leaves
                node.array += vector
                node.n_leaves += child.n_leaves
                child.parent = node
                if siblings.index(sibling) < at:
                    node.children.insert(0, child)
                else:
                    node.children.append(child)
                self.metrics.counter("tenancy.borrows").inc()
                return

    # ------------------------------------------------------------------
    # the write path: leaf first, then deltas up the root path
    # ------------------------------------------------------------------
    def insert(self, tenant: object, key: object, count: int = 1) -> None:
        """Record *count* occurrences of *key* for *tenant*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        with self._lock:
            leaf = self._leaf(tenant)
            leaf.handle.insert(key, count)
            self._apply_point(leaf, key, count)
            self.metrics.counter("tenancy.inserts").inc()

    def delete(self, tenant: object, key: object, count: int = 1) -> None:
        """Remove *count* occurrences of *key* from *tenant*.

        Refused cleanly (no partial application, ancestors untouched)
        when the leaf's counters could not absorb the decrement.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        with self._lock:
            leaf = self._leaf(tenant)
            sbf = _leaf_sbf(leaf.handle)
            if sbf is not None and sbf.min_counter(key) < count:
                raise ValueError(
                    f"deleting {count} of {key!r} would drive a counter "
                    f"of tenant {tenant!r} negative")
            leaf.handle.delete(key, count)
            self._apply_point(leaf, key, -count)
            self.metrics.counter("tenancy.deletes").inc()

    def set_count(self, tenant: object, key: object, count: int) -> None:
        """Drive *tenant*'s estimate for *key* to exactly *count*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        with self._lock:
            current = self.query_tenant(tenant, key)
            if count > current:
                self.insert(tenant, key, count - current)
            elif count < current:
                self.delete(tenant, key, current - count)

    def _apply_point(self, leaf: _Node, key: object, count: int) -> None:
        positions = self.family.indices(key)
        if leaf.signature is not None:
            signature = leaf.signature
            for position in positions:
                signature[position] += count
        node = leaf.parent
        while node is not None:
            array = node.array
            for position in positions:
                array[position] += count
            node = node.parent

    def insert_many(self, tenant: object, keys, counts=None):
        """Bulk insert through the leaf's vectorised kernels.

        One hashing pass covers the leaf *and* every ancestor: the
        ``(n, k)`` position matrix drives the leaf's bulk kernel and one
        aggregated scatter-add per ancestor.  Returns whatever the leaf
        handle's ``insert_many`` returns (``None``, or a partial-failure
        :class:`~repro.serve.remote.BulkResult` for replicated leaves —
        hinted writes are still counted in the ancestors, which stays
        one-sided while handoff drains).
        """
        with self._lock:
            leaf = self._leaf(tenant)
            keys, counts = _normalise_batch(keys, counts)
            if not len(keys):
                return None
            outcome = (leaf.handle.insert_many(keys) if counts is None
                       else leaf.handle.insert_many(keys, counts))
            self._apply_bulk(leaf, keys, counts, +1)
            self.metrics.counter("tenancy.inserts").inc(len(keys))
            return outcome

    def delete_many(self, tenant: object, keys, counts=None) -> None:
        """Bulk delete; all-or-nothing on array-shaped leaf backends
        (they pre-validate), mirroring
        :meth:`~repro.core.sbf.SpectralBloomFilter.delete_many`."""
        with self._lock:
            leaf = self._leaf(tenant)
            keys, counts = _normalise_batch(keys, counts)
            if not len(keys):
                return
            if counts is None:
                leaf.handle.delete_many(keys)
            else:
                leaf.handle.delete_many(keys, counts)
            self._apply_bulk(leaf, keys, counts, -1)
            self.metrics.counter("tenancy.deletes").inc(len(keys))

    def _apply_bulk(self, leaf: _Node, keys, counts, sign: int) -> None:
        canon = canonicalize_many(keys)
        matrix = matrix_for(self.family, canon)
        flat = matrix.ravel()
        deltas = np.repeat(
            np.full(len(keys), sign, dtype=np.int64) if counts is None
            else sign * counts, self.k)
        if leaf.signature is not None:
            np.add.at(leaf.signature, flat, deltas)
        node = leaf.parent
        while node is not None:
            np.add.at(node.array, flat, deltas)
            node = node.parent

    # ------------------------------------------------------------------
    # the read path: pruned descent
    # ------------------------------------------------------------------
    def query(self, key: object) -> dict:
        """``{tenant: estimate}`` over every tenant whose estimate is > 0.

        Descends only branches whose inner counters are nonzero at the
        key's positions; bit-identical to querying every mounted leaf and
        keeping the positive answers (the pruning-exactness argument in
        the module docstring).
        """
        with self._lock:
            positions = np.fromiter(self.family.indices(key),
                                    dtype=np.int64, count=self.k)
            answers: dict = {}
            visited = 0
            stack = [self._root]
            while stack:
                node = stack.pop()
                visited += 1
                if node.is_leaf:
                    direct = _direct_counters(node.handle)
                    estimate = (int(direct[positions].min())
                                if direct is not None
                                else node.handle.query(key))
                    if estimate > 0:
                        answers[node.tenant] = estimate
                elif node.n_leaves and int(node.array[positions].min()) > 0:
                    stack.extend(node.children)
            self.metrics.counter("tenancy.queries").inc()
            self.metrics.counter("tenancy.nodes_visited").inc(visited)
            return answers

    def query_many(self, keys: Sequence[object]) -> list[dict]:
        """Per-key ``{tenant: estimate}`` dicts, one vectorised descent.

        The whole batch shares one hashing pass; each node is examined
        once against the keys still alive at it (a single gather + row
        minimum), so a batch costs one array pass per *distinct node
        visited* rather than per key.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        results: list[dict] = [{} for _ in keys]
        if not keys:
            return results
        with self._lock:
            canon = canonicalize_many(keys)
            matrix = matrix_for(self.family, canon)
            visited = 0
            stack: list[tuple[_Node, np.ndarray]] = [
                (self._root, np.arange(len(keys)))]
            while stack:
                node, alive = stack.pop()
                visited += int(alive.size)
                if node.is_leaf:
                    self._leaf_answers(node, keys, alive, results, matrix)
                elif node.n_leaves:
                    minima = node.array[matrix[alive]].min(axis=1)
                    keep = alive[minima > 0]
                    if keep.size:
                        stack.extend((child, keep)
                                     for child in node.children)
            self.metrics.counter("tenancy.queries").inc(len(keys))
            self.metrics.counter("tenancy.nodes_visited").inc(visited)
        return results

    def _leaf_answers(self, node: _Node, keys, alive: np.ndarray,
                      results: list[dict], matrix: np.ndarray) -> None:
        direct = _direct_counters(node.handle)
        if direct is not None:
            estimates = direct[matrix[alive]].min(axis=1)
            for slot, estimate in zip(alive.tolist(), estimates.tolist()):
                if estimate > 0:
                    results[slot][node.tenant] = int(estimate)
            return
        slots = alive.tolist()
        bulk = getattr(node.handle, "query_many", None)
        if bulk is not None:
            estimates = bulk([keys[i] for i in slots])
            if isinstance(estimates, np.ndarray):
                for slot, estimate in zip(slots, estimates.tolist()):
                    if estimate > 0:
                        results[slot][node.tenant] = estimate
                return
        for slot in slots:
            estimate = node.handle.query(keys[slot])
            if estimate > 0:
                results[slot][node.tenant] = estimate

    def query_tenant(self, tenant: object, key: object) -> int:
        """Single-tenant estimate — straight to the owning leaf, no
        descent (what the directory front routes through)."""
        with self._lock:
            return self._leaf(tenant).handle.query(key)

    def query_tenant_many(self, tenant: object, keys):
        """Single-tenant bulk estimates; passes the leaf handle's result
        through untouched (ndarray, or a partial-failure ``BulkResult``
        for replicated leaves)."""
        with self._lock:
            handle = self._leaf(tenant).handle
            bulk = getattr(handle, "query_many", None)
            if bulk is not None:
                return bulk(keys)
            return np.fromiter((handle.query(key) for key in keys),
                               dtype=np.int64, count=len(keys))

    @property
    def total_count(self) -> int:
        """Total multiplicity across the fleet (root-union mass / k)."""
        with self._lock:
            return sum(self._leaf_total(leaf)
                       for leaf in self._leaves.values())

    @staticmethod
    def _leaf_total(leaf: _Node) -> int:
        total = getattr(leaf.handle, "total_count", None)
        return int(total) if total is not None else 0

    # ------------------------------------------------------------------
    # snapshot / restore (multi-section wire manifest)
    # ------------------------------------------------------------------
    def dump_tree(self) -> bytes:
        """Serialise the whole tree to one checksummed manifest frame.

        Sections are the leaves' v2 filter frames (depth-first order);
        the header carries the tree shape as nested child lists with
        leaf slots as section indices.  Inner unions are *not* shipped —
        :func:`load_tree` recomputes them from the leaves, so a snapshot
        can never carry a desynchronised union.
        """
        with self._lock:
            tenants: list = []
            sections: list[bytes] = []

            def encode(node: _Node):
                if node.is_leaf:
                    sbf = _leaf_sbf(node.handle)
                    if sbf is None:
                        raise TypeError(
                            f"tenant {node.tenant!r} has no readable local "
                            f"filter; snapshot its remote state separately")
                    tenants.append(node.tenant)
                    sections.append(dump_sbf(sbf))
                    return len(tenants) - 1
                return [encode(child) for child in node.children]

            structure = encode(self._root)
            meta = {
                "version": 1, "fanout": self.fanout,
                "m": self.m, "k": self.k, "seed": self.seed,
                "family": family_name(self.family),
                "tenants": tenants, "structure": structure,
            }
            self.metrics.counter("tenancy.snapshots").inc()
            return seal_sections(TREE_MAGIC, meta, sections)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def verify(self) -> list[str]:
        """Audit every tree invariant; returns the issues found.

        Checks, for every inner node: the union invariant (its vector
        equals the counter-wise sum of its children's signatures), leaf
        counts, child/parent linkage, occupancy bounds, and that all
        leaves sit at one depth.  Empty list means the tree is sound.
        """
        with self._lock:
            issues: list[str] = []
            leaf_depths = set()
            for node, depth in self._walk():
                if node.is_leaf:
                    leaf_depths.add(depth)
                    continue
                expected = np.zeros(self.m, dtype=np.int64)
                leaves = 0
                for child in node.children:
                    if child.parent is not node:
                        issues.append(f"child {child!r} at depth {depth} "
                                      f"has a stale parent pointer")
                    expected += self._vector(child)
                    leaves += child.n_leaves
                if not np.array_equal(node.array, expected):
                    bad = int(np.count_nonzero(node.array != expected))
                    issues.append(
                        f"inner node at depth {depth} diverges from the "
                        f"union of its children in {bad} counters")
                if node.n_leaves != leaves:
                    issues.append(
                        f"inner node at depth {depth} claims "
                        f"{node.n_leaves} leaves but holds {leaves}")
                if len(node.children) > self.fanout:
                    issues.append(
                        f"inner node at depth {depth} holds "
                        f"{len(node.children)} children > fanout "
                        f"{self.fanout}")
                if (node is not self._root
                        and len(node.children) < self._min_children):
                    issues.append(
                        f"non-root inner node at depth {depth} holds "
                        f"{len(node.children)} children < minimum "
                        f"{self._min_children}")
            if len(leaf_depths) > 1:
                issues.append(f"leaves sit at mixed depths "
                              f"{sorted(leaf_depths)}")
            if self._root.n_leaves != len(self._leaves):
                issues.append(
                    f"root counts {self._root.n_leaves} leaves but "
                    f"{len(self._leaves)} tenants are mounted")
            return issues

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _update_shape_gauges(self) -> None:
        self.metrics.gauge("tenancy.tenants").set(len(self._leaves))
        self.metrics.gauge("tenancy.height").set(self._height())

    def refresh_level_gauges(self) -> dict:
        """Refresh the per-level ``tenancy.level.<d>.*`` gauges.

        An O(nodes) walk (kept off the mount/insert hot path): per level,
        the node count and the mean child occupancy of inner nodes.
        Levels the tree has shrunk away from are zeroed.  Returns the
        ``{level: {"nodes": ..., "occupancy": ...}}`` it published.
        """
        with self._lock:
            nodes: dict[int, int] = {}
            occupancy: dict[int, list[int]] = {}
            for node, depth in self._walk():
                nodes[depth] = nodes.get(depth, 0) + 1
                if not node.is_leaf:
                    occupancy.setdefault(depth, []).append(
                        len(node.children))
            report = {}
            for level in range(max(self._max_level_seen,
                                   max(nodes)) + 1):
                level_nodes = nodes.get(level, 0)
                fills = occupancy.get(level)
                mean_fill = (sum(fills) / len(fills)) if fills else 0.0
                self.metrics.gauge(
                    f"tenancy.level.{level}.nodes").set(level_nodes)
                self.metrics.gauge(
                    f"tenancy.level.{level}.occupancy").set(mean_fill)
                report[level] = {"nodes": level_nodes,
                                 "occupancy": mean_fill}
            self._max_level_seen = max(self._max_level_seen, max(nodes))
            return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpectralBloofiTree(m={self.m}, k={self.k}, "
                f"fanout={self.fanout}, tenants={len(self._leaves)}, "
                f"height={self._height()})")


def _normalise_batch(keys, counts):
    """``(keys, counts)`` with counts ``None`` (all ones) or an int64
    array aligned with *keys*; zero-count entries dropped, negatives
    refused — the same discipline as the core bulk path."""
    if not isinstance(keys, (list, tuple, np.ndarray)):
        keys = list(keys)
    if counts is None:
        return keys, None
    if isinstance(counts, int):
        if counts < 0:
            raise ValueError(f"count must be >= 0, got {counts}")
        counts = np.full(len(keys), counts, dtype=np.int64)
    else:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (len(keys),):
            raise ValueError(f"expected {len(keys)} counts, got shape "
                             f"{counts.shape}")
    if counts.size and int(counts.min()) < 0:
        raise ValueError(f"count must be >= 0, got {int(counts.min())}")
    if counts.size and int(counts.min()) == 0:
        keep = counts > 0
        counts = counts[keep]
        if isinstance(keys, np.ndarray):
            keys = keys[keep]
        else:
            keys = [key for key, flag in zip(keys, keep.tolist()) if flag]
    return keys, counts


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def load_tree(data: bytes, *,
              metrics: MetricsRegistry | None = None,
              fanout: int | None = None) -> SpectralBloofiTree:
    """Rebuild a tree serialised by :meth:`SpectralBloofiTree.dump_tree`.

    Leaves are reconstructed from their embedded v2 filter frames and
    the tree shape from the structure header; inner unions are recomputed
    bottom-up from the loaded leaves (so they are correct by
    construction).  Restored leaves are plain in-memory filters — re-wrap
    them (durable/concurrent/replicated) and remount as needed.

    Raises:
        WireFormatError: on truncation, corruption, or a structurally
            invalid header (wrong arity, duplicate tenants, bad nesting).
    """
    meta, sections = open_sections(data, TREE_MAGIC)

    def need(condition: bool, message: str) -> None:
        if not condition:
            raise WireFormatError(message)

    need(meta.get("version") == 1,
         f"unsupported tree-manifest version {meta.get('version')!r}")
    for field in ("m", "k", "seed", "fanout"):
        value = meta.get(field)
        need(isinstance(value, int) and not isinstance(value, bool),
             f"header field {field!r} must be an integer, got {value!r}")
    need(meta["m"] >= 1 and meta["k"] >= 1 and meta["fanout"] >= 2,
         "m/k/fanout out of range")
    tenants = meta.get("tenants")
    need(isinstance(tenants, list) and len(tenants) == len(sections),
         f"'tenants' must list one id per section "
         f"({len(sections)}), got {tenants!r}")
    for tenant in tenants:
        need(isinstance(tenant, (str, int)) and not isinstance(tenant, bool),
             f"tenant ids must be str or int, got {tenant!r}")
    need(len(set(tenants)) == len(tenants), "duplicate tenant ids")
    family = meta.get("family")
    need(isinstance(family, str), f"'family' must be a string, got "
                                  f"{family!r}")
    try:
        tree = SpectralBloofiTree(
            meta["m"], meta["k"], seed=meta["seed"], hash_family=family,
            fanout=fanout if fanout is not None else meta["fanout"],
            metrics=metrics)
    except (ValueError, TypeError) as exc:
        raise WireFormatError(f"invalid tree parameters: {exc}") from None

    filters = []
    for section in sections:
        sbf = load_sbf(section)
        need(sbf.m == tree.m
             and tree.family.is_compatible(sbf.family),
             "embedded filter is incompatible with the tree header")
        filters.append(sbf)

    structure = meta.get("structure")
    need(isinstance(structure, list), f"'structure' must be a list, got "
                                      f"{structure!r}")
    used: set[int] = set()

    def build(spec, parent: _Node | None) -> _Node:
        if isinstance(spec, int) and not isinstance(spec, bool):
            need(0 <= spec < len(filters) and spec not in used,
                 f"structure references section {spec} invalidly")
            used.add(spec)
            sbf = filters[spec]
            explicit = sbf.method.name not in _ADDITIVE_METHODS
            leaf = _Node.leaf(
                tenants[spec], sbf,
                _counters_array(sbf) if explicit else None)
            leaf.parent = parent
            tree._leaves[tenants[spec]] = leaf
            return leaf
        need(isinstance(spec, list) and len(spec) <= tree.fanout,
             f"malformed structure entry {spec!r}")
        node = _Node.inner(tree.m)
        node.parent = parent
        for child_spec in spec:
            child = build(child_spec, node)
            node.children.append(child)
            node.array += tree._vector(child)
            node.n_leaves += child.n_leaves
        return node

    root = build(structure, None)
    need(not root.is_leaf, "the structure root must be an inner node")
    need(len(used) == len(filters), "structure does not cover every section")
    tree._root = root
    issues = tree.verify()
    need(not issues, f"restored tree failed verification: {issues[:3]}")
    tree._update_shape_gauges()
    return tree
