"""TenantDirectory: the tenancy tree behind the router contract.

The serving stack (:class:`~repro.serve.batch.ShardBatcher`,
:class:`~repro.serve.engine.ServingEngine`, the admission policies, the
deadline/retry-budget machinery) speaks one contract — a router with
``shards`` / ``shard_of_many`` / point verbs, whose shard handles expose
``exclusive`` sections.  :class:`TenantDirectory` implements that
contract over a :class:`~repro.tenancy.tree.SpectralBloofiTree`, so a
multi-tenant fleet plugs into the existing engine **unchanged**:

- keys on this surface are composite ``(tenant, key)`` pairs — the
  directory routes each to a per-tenant slot and strips the tenant
  before the leaf sees the key;
- every mounted tenant owns one stable slot backed by a thin
  :class:`_TenantLeaf` adapter that delegates each operation to the tree
  **by tenant id at call time** (so the tree may split, merge, and
  rebalance its nodes under live traffic without any adapter going
  stale — an unmounted tenant's slot simply starts failing with
  :class:`~repro.tenancy.tree.UnknownTenant`);
- slot 0 is the *unrouted* slot: malformed keys and unknown tenants land
  there and fail **in their result slot** (the batcher's per-op error
  discipline), never felling a whole batch;
- writes and single-tenant reads never descend the tree — they go
  straight to the owning leaf, exactly like a router hop — while the
  multi-tenant query ("which tenants hold x?") stays available as
  :meth:`TenantDirectory.query_tenants` on the directory itself.

The adapters also forward the engine's maintenance surface (``tick``,
``replicas``, ``raw``, ``checkpoint``, ``close``), so
``ServingEngine.maintain()`` probes replicated leaves and
``ServingEngine.close()`` checkpoints durable leaves through the
directory just as it would through a :class:`~repro.serve.router.
ShardedSBF`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro.persist.durable import DurableSBF
from repro.serve.metrics import MetricsRegistry
from repro.serve.remote import BulkFailure, BulkResult
from repro.tenancy.tree import SpectralBloofiTree, UnknownTenant


def split_key(composite: object) -> tuple:
    """``(tenant, key)`` from a composite directory key.

    Raises:
        UnknownTenant: the composite is not a 2-tuple — the directory
            cannot even name a tenant to blame, so the op is unroutable.
    """
    if isinstance(composite, tuple) and len(composite) == 2:
        return composite
    raise UnknownTenant(
        f"directory keys are (tenant, key) pairs, got {composite!r}")


class TenantDirectory:
    """Route single-tenant operations to the owning tree leaf.

    Args:
        tree: the fleet index to front.
        metrics: registry to report through (defaults to the tree's, so
            ``tenancy.*`` and ``directory.*`` land in one snapshot).
    """

    def __init__(self, tree: SpectralBloofiTree, *,
                 metrics: MetricsRegistry | None = None):
        self.tree = tree
        self.metrics = metrics or tree.metrics
        self._lock = threading.Lock()
        self._slots: dict[object, int] = {}
        self._shards: list[object] = [_Unrouted(self)]
        for tenant in tree.tenants:
            self._admit(tenant)
        self.metrics.gauge("directory.slots").set(len(self._shards))

    # -- lifecycle ---------------------------------------------------------
    def mount(self, tenant: object, handle: object = None,
              **mount_options) -> object:
        """Mount *tenant* in the tree and give it a routing slot.

        Passes through to :meth:`~repro.tenancy.tree.SpectralBloofiTree.
        mount`; an unmounted-then-remounted tenant gets its old slot
        back, so long-lived batchers keep routing correctly.
        """
        handle = self.tree.mount(tenant, handle, **mount_options)
        self._admit(tenant)
        return handle

    def unmount(self, tenant: object) -> object:
        """Unmount *tenant*; its slot stays allocated but starts failing
        every op with :class:`UnknownTenant` (in-slot, per the batch
        error discipline)."""
        return self.tree.unmount(tenant)

    def _admit(self, tenant: object) -> None:
        with self._lock:
            if tenant not in self._slots:
                self._slots[tenant] = len(self._shards)
                self._shards.append(_TenantLeaf(self, tenant))
        self.metrics.gauge("directory.slots").set(len(self._shards))

    # -- the router contract ----------------------------------------------
    @property
    def shards(self) -> tuple:
        """Slot handles, indexed by slot id (slot 0 is the unrouted
        sink for malformed / unknown-tenant keys)."""
        with self._lock:
            return tuple(self._shards)

    @property
    def n_shards(self) -> int:
        with self._lock:
            return len(self._shards)

    @property
    def migrating(self) -> bool:
        """Always ``False``: tree rebalancing is internal and atomic per
        operation, so batch grouping by slot is always sound."""
        return False

    def shard_of(self, composite: object) -> int:
        """The slot owning a composite key (0 when unroutable — the op
        will fail in its slot rather than fell its batch)."""
        try:
            tenant, _ = split_key(composite)
        except UnknownTenant:
            return 0
        with self._lock:
            return self._slots.get(tenant, 0)

    def shard_of_many(self, composites: Sequence[object]) -> list[int]:
        with self._lock:
            slots = self._slots
            return [slots.get(composite[0], 0)
                    if isinstance(composite, tuple) and len(composite) == 2
                    else 0
                    for composite in composites]

    def note_shard_ops(self, slot: int, n: int) -> None:
        self.metrics.counter("directory.ops").inc(n)

    # -- point verbs (the migrating-fallback / direct-call surface) -------
    def insert(self, composite: object, count: int = 1) -> None:
        tenant, key = split_key(composite)
        self.tree.insert(tenant, key, count)

    def delete(self, composite: object, count: int = 1) -> None:
        tenant, key = split_key(composite)
        self.tree.delete(tenant, key, count)

    def set(self, composite: object, count: int) -> None:
        tenant, key = split_key(composite)
        self.tree.set_count(tenant, key, count)

    def query(self, composite: object) -> int:
        tenant, key = split_key(composite)
        return self.tree.query_tenant(tenant, key)

    def contains(self, composite: object, threshold: int = 1) -> bool:
        return self.query(composite) >= threshold

    # -- the multi-tenant verbs (what the tree exists for) -----------------
    def query_tenants(self, key: object) -> dict:
        """``{tenant: estimate}`` over the whole fleet — the sublinear
        multi-set query; plain keys here, no composite."""
        return self.tree.query(key)

    def query_tenants_many(self, keys: Sequence[object]) -> list[dict]:
        return self.tree.query_many(keys)

    @property
    def total_count(self) -> int:
        return self.tree.total_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TenantDirectory({self.tree!r}, "
                f"slots={len(self._shards)})")


class _TenantLeaf:
    """One tenant's routing slot: a shard-shaped view of a tree leaf.

    Stateless beyond the tenant id — every call resolves the leaf
    through the tree at call time, so rebalancing never invalidates a
    slot.  Composite keys are stripped here; the tree (and the leaf
    handle below it) see plain keys.
    """

    __slots__ = ("_directory", "tenant")

    def __init__(self, directory: TenantDirectory, tenant: object):
        self._directory = directory
        self.tenant = tenant

    @property
    def _tree(self) -> SpectralBloofiTree:
        return self._directory.tree

    def _key(self, composite: object) -> object:
        tenant, key = split_key(composite)
        if tenant != self.tenant:
            raise UnknownTenant(
                f"key routed to tenant {self.tenant!r} names {tenant!r}")
        return key

    # -- locking: the tree serialises internally ---------------------------
    @contextmanager
    def exclusive(self, timeout: float | None = None):
        """The batcher's group-lock hook.  The tree holds its own lock
        per operation (delta propagation must be atomic tree-wide, not
        per-leaf), so the group section is a pass-through."""
        yield self

    # -- point ops (composite keys) ----------------------------------------
    def insert(self, composite: object, count: int = 1) -> None:
        self._tree.insert(self.tenant, self._key(composite), count)

    def delete(self, composite: object, count: int = 1) -> None:
        self._tree.delete(self.tenant, self._key(composite), count)

    def set(self, composite: object, count: int) -> None:
        self._tree.set_count(self.tenant, self._key(composite), count)

    def query(self, composite: object) -> int:
        return self._tree.query_tenant(self.tenant, self._key(composite))

    def contains(self, composite: object, threshold: int = 1) -> bool:
        return self.query(composite) >= threshold

    # -- bulk ops ----------------------------------------------------------
    def query_many(self, composites: Sequence[object]) -> np.ndarray:
        keys = [self._key(c) for c in composites]
        outcome = self._tree.query_tenant_many(self.tenant, keys)
        if isinstance(outcome, BulkResult):
            return outcome
        return np.asarray(outcome, dtype=np.int64)

    def insert_many(self, composites: Sequence[object]):
        keys = [self._key(c) for c in composites]
        return self._tree.insert_many(self.tenant, keys)

    def delete_many(self, composites: Sequence[object]) -> None:
        keys = [self._key(c) for c in composites]
        self._tree.delete_many(self.tenant, keys)

    # -- accounting / engine maintenance surface ---------------------------
    @property
    def handle(self) -> object:
        return self._tree.handle_of(self.tenant)

    @property
    def total_count(self) -> int:
        total = getattr(self.handle, "total_count", None)
        return int(total) if total is not None else 0

    @property
    def raw(self):
        """The durable/in-memory filter behind the leaf, for the
        engine's close-time checkpoint sweep (a bare DurableSBF leaf is
        its own raw handle)."""
        try:
            handle = self.handle
        except UnknownTenant:
            return None
        if isinstance(handle, DurableSBF):
            return handle
        return getattr(handle, "raw", None)

    @property
    def replicas(self):
        """Replica handles when the leaf is a replica set (lets
        ``ServingEngine.close()`` look through the slot), else ``None``."""
        try:
            return getattr(self.handle, "replicas", None)
        except UnknownTenant:
            return None

    def tick(self) -> None:
        """Forward the engine's maintenance tick to leaves that take one
        (replica sets probe ejected replicas here).  An unmounted
        tenant's slot has nothing to tick."""
        try:
            handle = self.handle
        except UnknownTenant:
            return
        tick = getattr(handle, "tick", None)
        if callable(tick):
            tick()

    def checkpoint(self):
        return self.handle.checkpoint()

    def close(self) -> None:
        handle = self.handle
        close = getattr(handle, "close", None)
        if callable(close):
            close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TenantLeaf({self.tenant!r})"


class _Unrouted:
    """Slot 0: where unroutable keys go to fail politely.

    Malformed composites and unknown tenants group here; every operation
    fails with :class:`UnknownTenant` *per slot* — point ops raise
    inside the batcher's per-op guard, bulk queries return a
    :class:`~repro.serve.remote.BulkResult` whose every slot failed —
    so one bad key never fells its batch-mates.
    """

    __slots__ = ("_directory",)

    def __init__(self, directory: TenantDirectory):
        self._directory = directory

    @contextmanager
    def exclusive(self, timeout: float | None = None):
        yield self

    def _refuse(self, composite: object) -> UnknownTenant:
        try:
            tenant, _ = split_key(composite)
        except UnknownTenant as exc:
            return exc
        return UnknownTenant(f"tenant {tenant!r} is not mounted")

    def insert(self, composite: object, count: int = 1) -> None:
        raise self._refuse(composite)

    delete = insert

    def set(self, composite: object, count: int) -> None:
        raise self._refuse(composite)

    def query(self, composite: object) -> int:
        raise self._refuse(composite)

    def contains(self, composite: object, threshold: int = 1) -> bool:
        raise self._refuse(composite)

    def query_many(self, composites: Sequence[object]) -> BulkResult:
        return BulkResult(
            len(composites),
            values=np.zeros(len(composites), dtype=np.int64),
            failures=[BulkFailure(i, c, self._refuse(c), False)
                      for i, c in enumerate(composites)])

    def insert_many(self, composites: Sequence[object]) -> BulkResult:
        return BulkResult(
            len(composites),
            failures=[BulkFailure(i, c, self._refuse(c), False)
                      for i, c in enumerate(composites)])

    def delete_many(self, composites: Sequence[object]) -> None:
        if composites:
            raise self._refuse(composites[0])

    @property
    def total_count(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "_Unrouted()"
