"""Multi-tenant fleet indexing: the spectral Bloofi tree.

A fleet of per-tenant spectral filters answers "which sets contain key
x, and how often" in sublinear time through
:class:`~repro.tenancy.tree.SpectralBloofiTree` — a B+-tree whose inner
nodes hold counter-wise unions of their children, pruning the descent
exactly (bit-identical to scanning every leaf).
:class:`~repro.tenancy.directory.TenantDirectory` fronts the tree with
the router contract, so the existing
:class:`~repro.serve.engine.ServingEngine` serves multi-tenant fleets
unchanged.
"""

from repro.tenancy.directory import TenantDirectory, split_key
from repro.tenancy.tree import (
    TREE_MAGIC,
    SpectralBloofiTree,
    UnknownTenant,
    load_tree,
)

__all__ = [
    "SpectralBloofiTree",
    "TenantDirectory",
    "UnknownTenant",
    "TREE_MAGIC",
    "load_tree",
    "split_key",
]
