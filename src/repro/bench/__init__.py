"""Experiment-harness utilities: the §6 metrics, table rendering, trials.

Every benchmark in ``benchmarks/`` builds on these so that the measured
quantities are *exactly* the paper's:

- mean squared additive error ``E_add = sqrt(mean((f̂ - f)^2))`` (§6.1);
- error ratio ``E_ratio`` — the fraction of queries returning a wrong
  value (its expectation is ``E_SBF``, and ``E_b`` for MS);
- false-negative ratio (Figure 8's third panel).
"""

from repro.bench.metrics import (
    additive_error,
    error_ratio,
    evaluate_filter,
    false_negative_ratio,
)
from repro.bench.runner import average_trials, build_and_measure
from repro.bench.tables import format_table, write_results

__all__ = [
    "additive_error",
    "error_ratio",
    "false_negative_ratio",
    "evaluate_filter",
    "average_trials",
    "build_and_measure",
    "format_table",
    "write_results",
]
