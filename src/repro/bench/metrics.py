"""The §6.1 error metrics.

"We measured two parameters; the first is the mean squared additive error
... The second is the error ratio, computed as the fraction of the queries
that return erroneous results."
"""

from __future__ import annotations

import math
from typing import Mapping


def additive_error(estimates: Mapping[object, int],
                   truth: Mapping[object, int]) -> float:
    """``E_add = sqrt( sum_i (f̂_i - f_i)^2 / n )`` over the truth's keys."""
    if not truth:
        raise ValueError("truth must be non-empty")
    total = 0.0
    for key, f in truth.items():
        diff = estimates[key] - f
        total += diff * diff
    return math.sqrt(total / len(truth))


def error_ratio(estimates: Mapping[object, int],
                truth: Mapping[object, int]) -> float:
    """Fraction of keys whose estimate differs from the truth."""
    if not truth:
        raise ValueError("truth must be non-empty")
    wrong = sum(1 for key, f in truth.items() if estimates[key] != f)
    return wrong / len(truth)


def false_negative_ratio(estimates: Mapping[object, int],
                         truth: Mapping[object, int]) -> float:
    """Of the erroneous estimates, the fraction that *under*-estimate.

    Figure 8's bottom panel plots exactly this for MI under deletions
    ("there are no false negatives in MS and RM").  Returns 0.0 when there
    are no errors at all.
    """
    if not truth:
        raise ValueError("truth must be non-empty")
    wrong = 0
    negative = 0
    for key, f in truth.items():
        estimate = estimates[key]
        if estimate != f:
            wrong += 1
            if estimate < f:
                negative += 1
    return negative / wrong if wrong else 0.0


def evaluate_filter(sbf, truth: Mapping[object, int]) -> dict[str, float]:
    """Query *sbf* for every key of *truth* and compute all §6.1 metrics."""
    estimates = {key: sbf.query(key) for key in truth}
    return {
        "additive_error": additive_error(estimates, truth),
        "error_ratio": error_ratio(estimates, truth),
        "false_negative_ratio": false_negative_ratio(estimates, truth),
    }
