"""Multi-trial experiment driving (the paper averages 5 independent runs).

"Each reported result is the average over 5 independent experiments with
the same parameters" (§6.1) — :func:`average_trials` reproduces that
protocol with seeds ``base_seed + trial``.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping

from repro.bench.metrics import evaluate_filter
from repro.core.sbf import SpectralBloomFilter
from repro.data.streams import insertion_stream


def bench_scale(default: float = 1.0) -> float:
    """Global size multiplier for the timing benchmarks.

    Pure Python is orders of magnitude slower than the paper's C++, so the
    timing benchmarks default to scaled-down sizes; set the environment
    variable ``REPRO_BENCH_SCALE`` (e.g. ``10``) to approach paper scale.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {raw}")
    return scale


def average_trials(run: Callable[[int], Mapping[str, float]],
                   trials: int = 5, base_seed: int = 0) -> dict[str, float]:
    """Average the metric dict returned by ``run(seed)`` over *trials*."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    totals: dict[str, float] = {}
    for trial in range(trials):
        result = run(base_seed + trial)
        for key, value in result.items():
            totals[key] = totals.get(key, 0.0) + value
    return {key: value / trials for key, value in totals.items()}


def build_and_measure(method: str, *, n: int, total: int, z: float,
                      m: int, k: int = 5, seed: int = 0,
                      method_options: Mapping | None = None,
                      ) -> dict[str, float]:
    """One §6.1 trial: Zipfian stream into a fresh filter, then metrics.

    Args:
        method: SBF method name.
        n: distinct items; total: stream length M; z: skew.
        m, k: filter parameters.
    """
    sbf = SpectralBloomFilter(m, k, method=method, seed=seed,
                              method_options=method_options)
    truth: dict[int, int] = {}
    stream = list(insertion_stream(n, total, z, seed=seed))
    for x in stream:
        truth[x] = truth.get(x, 0) + 1
    # Bulk ingest is bit-identical to the scalar loop (the kernels replay
    # the stream order exactly), just much faster.
    sbf.insert_many(stream)
    return evaluate_filter(sbf, truth)
