"""Fixed-width table rendering and result persistence for the benchmarks.

Every ``benchmarks/bench_*.py`` renders its reproduction of a paper table
or figure-series through :func:`format_table` and persists it with
:func:`write_results` under ``benchmarks/results/`` so EXPERIMENTS.md can
quote paper-vs-measured side by side.
"""

from __future__ import annotations

import os
from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or 0 < abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row of arity {len(row)} does not match headers "
                f"({len(headers)})")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def results_dir() -> str:
    """The ``benchmarks/results`` directory (created on demand).

    Overridable through the ``REPRO_RESULTS_DIR`` environment variable.
    """
    path = os.environ.get("REPRO_RESULTS_DIR")
    if path is None:
        here = os.path.dirname(os.path.abspath(__file__))
        repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
        path = os.path.join(repo, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_results(name: str, content: str) -> str:
    """Persist a rendered table under ``benchmarks/results/<name>.txt``."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return path
