"""SBF maintenance and lookup methods (paper §2.2, §3.2, §3.3).

Each method is a strategy object bound to one
:class:`~repro.core.sbf.SpectralBloomFilter`.  The filter forwards
``insert``/``delete``/``estimate`` here; methods own any auxiliary state
(Recurring Minimum's secondary SBF and optional marker Bloom filter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core import kernels


def _as_key_list(keys) -> list:
    """Batch keys as plain Python objects (numpy ints would not hash)."""
    if isinstance(keys, np.ndarray):
        return keys.tolist()
    return list(keys)


class Method(ABC):
    """Strategy interface for SBF maintenance and lookup."""

    #: short name used in reports and tables
    name: str = "abstract"
    #: whether deletions are supported without breaking one-sided errors
    supports_deletion: bool = True

    def __init__(self, sbf):
        self.sbf = sbf

    @abstractmethod
    def insert(self, key: object, count: int) -> None:
        """Record *count* occurrences of *key*."""

    @abstractmethod
    def delete(self, key: object, count: int) -> None:
        """Remove *count* occurrences of *key*."""

    @abstractmethod
    def estimate(self, key: object) -> int:
        """Frequency estimate for *key*."""

    # -- bulk operations ------------------------------------------------
    # The filter hands every batch to the method together with the
    # already-computed canonical values and primary position matrix, so
    # methods never re-hash.  The base implementations fall back to the
    # scalar loop — exact by construction — and each paper method
    # overrides them with the vectorised kernel proven equivalent in
    # :mod:`repro.core.kernels`.

    def insert_many(self, keys, counts: np.ndarray, canon: np.ndarray,
                    matrix: np.ndarray) -> None:
        """Record ``counts[j]`` occurrences of ``keys[j]`` for every j."""
        for key, count in zip(_as_key_list(keys), counts.tolist()):
            self.insert(key, int(count))

    def delete_many(self, keys, counts: np.ndarray, canon: np.ndarray,
                    matrix: np.ndarray) -> None:
        """Remove ``counts[j]`` occurrences of ``keys[j]`` for every j."""
        for key, count in zip(_as_key_list(keys), counts.tolist()):
            self.delete(key, int(count))

    def estimate_many(self, keys, canon: np.ndarray,
                      matrix: np.ndarray) -> np.ndarray:
        """Frequency estimates for a key batch, as an int64 array."""
        key_list = _as_key_list(keys)
        return np.fromiter((self.estimate(key) for key in key_list),
                           dtype=np.int64, count=len(key_list))

    def storage_bits(self) -> int:
        """Extra bits beyond the primary counter vector (default none)."""
        return 0

    def options(self) -> dict:
        """Constructor options needed to clone this method's configuration."""
        return {}

    def merge_from(self, a: "Method", b: "Method") -> None:
        """Hook called on the method of a freshly-unioned filter.

        The primary counters were already added by
        :meth:`SpectralBloomFilter.union`; methods with auxiliary state
        (Recurring Minimum) merge it here.
        """

    def integrity_issues(self) -> list[str]:
        """Method-specific invariant violations (empty list = consistent).

        Called by :meth:`SpectralBloomFilter.check_integrity` so receivers
        of a deserialised filter can audit it before trusting it; each
        method knows the relation its maintenance scheme keeps between the
        counter vector and ``total_count``.
        """
        return []


class MinimumSelection(Method):
    """The basic scheme (§2.2): increment all counters, estimate = minimum.

    Claim 1: for every x, ``m_x >= f_x`` and ``P(m_x != f_x) = E_b`` — the
    standard Bloom error.  Supports deletions by decrementing (§2.2).
    """

    name = "ms"
    supports_deletion = True

    def insert(self, key: object, count: int) -> None:
        add = self.sbf.counters.add
        for i in self.sbf.indices(key):
            add(i, count)

    def delete(self, key: object, count: int) -> None:
        add = self.sbf.counters.add
        for i in self.sbf.indices(key):
            add(i, -count)

    def estimate(self, key: object) -> int:
        return self.sbf.min_counter(key)

    def insert_many(self, keys, counts, canon, matrix) -> None:
        kernels.ms_add_kernel(self.sbf.counters, matrix, counts)

    def delete_many(self, keys, counts, canon, matrix) -> None:
        kernels.ms_add_kernel(self.sbf.counters, matrix, counts, sign=-1)

    def estimate_many(self, keys, canon, matrix) -> np.ndarray:
        return kernels.row_minima(self.sbf.counters, matrix)

    def integrity_issues(self) -> list[str]:
        # MS adds every insert/delete to all k counters, so the counter sum
        # is exactly k * N — except for join products, whose total_count is
        # defined as sum // k (see SpectralBloomFilter.multiply), hence the
        # one-sub-k tolerance.
        sbf = self.sbf
        total = sum(sbf.counters)
        low = sbf.k * sbf.total_count
        if not low <= total < low + sbf.k:
            return [f"ms: counter sum {total} inconsistent with "
                    f"k*N = {sbf.k} * {sbf.total_count}"]
        return []


class MinimalIncrease(Method):
    """Minimal Increase (§3.2; independently "conservative update" [EV02]).

    On insert of r occurrences, only counters equal to the minimum advance;
    every counter becomes ``max(old, m_x + r)``.  This performs the minimal
    number of increases that preserves ``m_x >= f_x``, cutting both error
    probability and error size (Claims 4-5: never worse than MS; ~k-fold
    error reduction for uniform data).

    Deletions are *not* supported by the scheme (§3.2: "when allowing
    deletions the Minimal Increase algorithm introduces ... false-negative
    errors").  We implement delete as a clamped decrement of all counters so
    Figure 8's "MI with deletions" experiments can quantify exactly that
    failure mode; production users should pick RM when deletes are needed.
    """

    name = "mi"
    supports_deletion = False

    def insert(self, key: object, count: int) -> None:
        counters = self.sbf.counters
        idx = self.sbf.indices(key)
        values = [counters.get(i) for i in idx]
        target = min(values) + count
        for i, value in zip(idx, values):
            if value < target:
                counters.set(i, target)

    def delete(self, key: object, count: int) -> None:
        counters = self.sbf.counters
        for i in self.sbf.indices(key):
            counters.add_clamped(i, -count)

    def estimate(self, key: object) -> int:
        return self.sbf.min_counter(key)

    def insert_many(self, keys, counts, canon, matrix) -> None:
        # Conservative update is order-dependent, so the kernel runs
        # wavefront rounds (see repro.core.kernels).  Array-shaped
        # backends get true vector speed; the succinct backends still
        # profit because each round's get_many/set_many touches every
        # coded subgroup at most once instead of once per key.
        kernels.mi_insert_kernel(self.sbf.counters, matrix, counts)

    def delete_many(self, keys, counts, canon, matrix) -> None:
        kernels.mi_delete_kernel(self.sbf.counters, matrix, counts)

    def estimate_many(self, keys, canon, matrix) -> np.ndarray:
        return kernels.row_minima(self.sbf.counters, matrix)

    def integrity_issues(self) -> list[str]:
        # An MI insert of r raises each counter by at most r, so the sum
        # never exceeds k * N.  (Clamped deletions — unsupported by the
        # scheme — can break this bound; a filter that trips it genuinely
        # lost its one-sided guarantee.)
        sbf = self.sbf
        issues = []
        if sbf.total_count < 0:
            issues.append(f"mi: total_count is negative "
                          f"({sbf.total_count})")
        total = sum(sbf.counters)
        if total > sbf.k * max(0, sbf.total_count):
            issues.append(f"mi: counter sum {total} exceeds "
                          f"k*N = {sbf.k} * {sbf.total_count}")
        return issues


class RecurringMinimum(Method):
    """Recurring Minimum (§3.3): shadow single-minimum items in a 2nd SBF.

    Observation: an item suffering a Bloom error typically has a *single*
    minimum among its k counters; items with a recurring (repeated) minimum
    are very likely accurate.  On insert, items detected with a single
    minimum are copied into a smaller secondary SBF that sees only that
    small fraction of items, hence enjoys much better parameters.  Lookups
    trust a recurring minimum, otherwise consult the secondary.

    Args:
        secondary_m: size of the secondary SBF (default ``m // 2``, the
            Table 1 setting).
        secondary_k: hash count of the secondary (default: same ``k``).
        use_marker: maintain the §3.3 refinement — a Bloom filter ``Bf`` of
            size ``m`` marking items that were moved to the secondary, so
            they keep being handled there.  Defaults to True: the marker
            makes secondary updates *symmetric* (an item only ever
            decrements secondary counters it incremented), which is what
            guarantees RM never under-estimates under deletions.  With
            ``use_marker=False`` the method follows §3.3's text criterion
            ("if it has a single minimum") instead; that version can — as
            a rare edge under delete-heavy workloads — corrupt a shadow
            downwards and produce a false negative.
    """

    name = "rm"
    supports_deletion = True

    def __init__(self, sbf, secondary_m: int | None = None,
                 secondary_k: int | None = None, use_marker: bool = True):
        super().__init__(sbf)
        from repro.core.sbf import SpectralBloomFilter
        self.secondary_m = int(secondary_m if secondary_m is not None
                               else max(1, sbf.m // 2))
        self.secondary_k = int(secondary_k if secondary_k is not None
                               else sbf.k)
        self.use_marker = bool(use_marker)
        # Decorrelate the secondary's hash functions from the primary's by
        # deriving a distinct seed; same family type keeps reproducibility.
        self.secondary = SpectralBloomFilter(
            self.secondary_m, self.secondary_k, method="ms",
            seed=sbf.seed + 0x5B0F, hash_family=type(sbf.family),
            backend=type(sbf.counters),
            backend_options=sbf.counters.options())
        if self.use_marker:
            from repro.filters.bloom import BloomFilter
            self.marker = BloomFilter(sbf.m, sbf.k, seed=sbf.seed + 0xB1F,
                                      hash_family=type(sbf.family))
        else:
            self.marker = None

    def options(self) -> dict:
        return {
            "secondary_m": self.secondary_m,
            "secondary_k": self.secondary_k,
            "use_marker": self.use_marker,
        }

    # -- helpers -------------------------------------------------------
    def _has_recurring_minimum(self, values: tuple[int, ...]) -> bool:
        """True if the minimal value occurs in two or more counters.

        With k = 1 there is a single counter, hence always a "single
        minimum"; the method then degenerates gracefully (everything is
        shadowed).
        """
        lowest = min(values)
        seen = 0
        for v in values:
            if v == lowest:
                seen += 1
                if seen == 2:
                    return True
        return False

    def _secondary_min(self, key: object) -> int:
        return self.secondary.min_counter(key)

    # -- operations ----------------------------------------------------
    def insert(self, key: object, count: int) -> None:
        sbf = self.sbf
        counters = sbf.counters
        idx = sbf.indices(key)
        values = []
        for i in idx:
            values.append(counters.add(i, count))
        if self.marker is not None:
            if key in self.marker:
                self.secondary.insert(key, count)
                return
        elif self._secondary_min(key) > 0:
            # Already shadowed: keep the shadow in lockstep so it never
            # undercounts.  (The paper's §3.3 text only touches the
            # secondary for single-minimum inserts, which can leave a stale
            # shadow behind and — rarely — a false negative; always updating
            # a present shadow is exactly what the marker-filter refinement
            # achieves and preserves the one-sided-error guarantee.)
            self.secondary.insert(key, count)
            return
        if self._has_recurring_minimum(tuple(values)):
            return
        # Single minimum: move the item into the secondary SBF with an
        # initial value equal to its (possibly contaminated) primary minimum.
        self.secondary.insert(key, min(values))
        if self.marker is not None:
            self.marker.add(key)
        self._on_moved_to_secondary(key, values)

    def _on_moved_to_secondary(self, key: object,
                               values: list[int]) -> None:
        """Hook for the Trapping refinement (§3.3.1)."""

    def delete(self, key: object, count: int) -> None:
        sbf = self.sbf
        counters = sbf.counters
        idx = sbf.indices(key)
        values = []
        for i in idx:
            values.append(counters.add(i, -count))
        in_secondary = (key in self.marker) if self.marker is not None \
            else not self._has_recurring_minimum(tuple(values))
        if in_secondary:
            # "decrease its counters in the secondary SBF, unless at least
            # one of them is 0" (§3.3).
            secondary_values = self.secondary.counter_values(key)
            if all(v >= count for v in secondary_values):
                self.secondary.delete(key, count)

    def estimate(self, key: object) -> int:
        values = self.sbf.counter_values(key)
        lowest = min(values)
        if self._has_recurring_minimum(values):
            return lowest
        if self.marker is not None and key not in self.marker:
            return lowest
        shadow = self._secondary_min(key)
        if shadow > 0:
            # Both the primary minimum and the shadow upper-bound f_x (the
            # shadow starts at the transfer-time minimum and then moves in
            # lockstep), so the tighter of the two is still one-sided.  The
            # paper returns the shadow outright; taking the min dominates
            # that choice.
            return min(shadow, lowest)
        return lowest

    # -- bulk operations ------------------------------------------------
    def insert_many(self, keys, counts, canon, matrix) -> None:
        if (self.marker is None
                or type(self)._on_moved_to_secondary
                is not RecurringMinimum._on_moved_to_secondary):
            # Without the marker the §3.3 text criterion reads the
            # secondary mid-stream, and a move hook (Trapping) needs the
            # per-key sequence — both keep the exact scalar order.
            Method.insert_many(self, keys, counts, canon, matrix)
            return
        from repro.hashing.vectorized import matrix_for
        n, k = matrix.shape
        # One fused pass applies the primary adds and recovers the values
        # each scalar add() would have returned, in stream order — the
        # inputs to the recurring-minimum test.
        observed = kernels.observed_add_kernel(self.sbf.counters, matrix,
                                               counts)
        lowest = observed.min(axis=1)
        recurring = (observed == lowest[:, None]).sum(axis=1) >= 2
        # Marker membership *at each key's turn*: batch-start bits plus
        # the earliest earlier key that covered each bit.  Only
        # non-recurring keys matter as coverers — a moved key sets its
        # bits, and a key already in the marker has them set anyway, so
        # including it never changes any bit's cover time.
        marker = self.marker
        mrows = matrix_for(marker.family, canon)
        start_set = kernels.bits_array(marker.bits, marker.m)
        first_cover = np.where(start_set, np.int64(-1), np.int64(n))
        adders = np.flatnonzero(~recurring)
        if adders.size:
            np.minimum.at(first_cover, mrows[adders].ravel(),
                          np.repeat(adders, mrows.shape[1]))
        in_marker = first_cover[mrows].max(axis=1) < np.arange(n)
        moved = ~in_marker & ~recurring
        # Secondary updates are MS adds with already-fixed values (count
        # for shadow-following keys, the observed minimum for moves), so
        # they commute and apply as one bulk pass; the scalar path never
        # reads the secondary during marker-mode inserts.
        shadowed = in_marker | moved
        if shadowed.any():
            values = np.where(in_marker, counts, lowest)[shadowed]
            smatrix = matrix_for(self.secondary.family, canon[shadowed])
            kernels.ms_add_kernel(self.secondary.counters, smatrix, values)
            self.secondary.total_count += int(values.sum())
        if moved.any():
            kernels.set_bits(marker.bits, mrows[moved].ravel())
            marker.n_added += int(moved.sum())

    def delete_many(self, keys, counts, canon, matrix) -> None:
        from repro.hashing.vectorized import matrix_for
        n, k = matrix.shape
        observed = kernels.observed_add_kernel(self.sbf.counters, matrix,
                                               counts, sign=-1)
        if self.marker is not None:
            # Deletes never change the marker, so one batch-start gather
            # answers every membership test.
            mrows = matrix_for(self.marker.family, canon)
            bits = kernels.bits_array(self.marker.bits, self.marker.m)
            in_secondary = bits[mrows].all(axis=1)
        else:
            lowest = observed.min(axis=1)
            in_secondary = (observed == lowest[:, None]).sum(axis=1) < 2
        # The "unless a shadow counter is 0" guard reads values earlier
        # deletes may have lowered, so shadow updates replay in stream
        # order — they are the rare fraction; the primary scatter above
        # carries the batch.
        secondary = self.secondary
        for j in np.flatnonzero(in_secondary).tolist():
            srow = secondary.family.indices_hashed(int(canon[j]))
            count = int(counts[j])
            values = [secondary.counters.get(i) for i in srow]
            if all(v >= count for v in values):
                for i in srow:
                    secondary.counters.add(i, -count)
                secondary.total_count -= count

    def estimate_many(self, keys, canon, matrix) -> np.ndarray:
        from repro.hashing.vectorized import matrix_for
        values = kernels.gather_rows(self.sbf.counters, matrix)
        lowest = values.min(axis=1)
        consult = (values == lowest[:, None]).sum(axis=1) < 2
        if self.marker is not None and consult.any():
            mrows = matrix_for(self.marker.family, canon)
            bits = kernels.bits_array(self.marker.bits, self.marker.m)
            consult &= bits[mrows].all(axis=1)
        out = lowest.astype(np.int64)
        if consult.any():
            smatrix = matrix_for(self.secondary.family, canon[consult])
            shadow = kernels.row_minima(self.secondary.counters, smatrix)
            primary = lowest[consult]
            out[consult] = np.where(shadow > 0,
                                    np.minimum(shadow, primary), primary)
        return out

    def storage_bits(self) -> int:
        bits = self.secondary.storage_bits()
        if self.marker is not None:
            bits += self.marker.storage_bits()
        return bits

    def merge_from(self, a: "Method", b: "Method") -> None:
        if isinstance(a, RecurringMinimum) and isinstance(b, RecurringMinimum):
            self.secondary = a.secondary.union(b.secondary)
            if self.marker is not None and a.marker and b.marker:
                self.marker = a.marker.union(b.marker)

    def integrity_issues(self) -> list[str]:
        # The RM primary is maintained exactly like MS (every operation
        # touches all k counters), so the same sum invariant applies; on
        # top of that the secondary/marker configuration must be
        # self-consistent for lookups to stay one-sided.
        sbf = self.sbf
        issues = []
        total = sum(sbf.counters)
        low = sbf.k * sbf.total_count
        if not low <= total < low + sbf.k:
            issues.append(f"rm: primary counter sum {total} inconsistent "
                          f"with k*N = {sbf.k} * {sbf.total_count}")
        if (self.secondary.m != self.secondary_m
                or self.secondary.k != self.secondary_k):
            issues.append(
                f"rm: secondary is ({self.secondary.m}, {self.secondary.k}) "
                f"but options declare ({self.secondary_m}, "
                f"{self.secondary_k})")
        else:
            issues.extend(f"rm secondary: {issue}"
                          for issue in self.secondary.check_integrity())
        if self.use_marker:
            if self.marker is None:
                issues.append("rm: use_marker=True but no marker filter")
            elif (self.marker.m, self.marker.k) != (sbf.m, sbf.k):
                issues.append(
                    f"rm: marker is ({self.marker.m}, {self.marker.k}) but "
                    f"must match the primary ({sbf.m}, {sbf.k})")
            elif self.secondary.total_count > 0 and self.marker.n_added == 0:
                issues.append("rm: secondary holds shadows but the marker "
                              "filter is empty")
        elif self.marker is not None:
            issues.append("rm: marker present although use_marker=False")
        return issues


_METHODS = {
    "ms": MinimumSelection,
    "minimum-selection": MinimumSelection,
    "mi": MinimalIncrease,
    "minimal-increase": MinimalIncrease,
    "rm": RecurringMinimum,
    "recurring-minimum": RecurringMinimum,
}


def make_method(method: object, sbf, **options) -> Method:
    """Build a method by short name or class for the given filter.

    Accepted names: ``"ms"``, ``"mi"``, ``"rm"``, ``"trm"`` (and their long
    forms).  ``"trm"`` resolves lazily to avoid an import cycle.
    """
    if isinstance(method, Method):
        raise TypeError(
            "method instances are bound to one filter; pass the class or "
            "its short name instead"
        )
    if isinstance(method, type) and issubclass(method, Method):
        return method(sbf, **options)
    if method in ("trm", "trapping", "trapping-recurring-minimum"):
        from repro.core.trapping import TrappingRecurringMinimum
        return TrappingRecurringMinimum(sbf, **options)
    try:
        cls = _METHODS[method]
    except (KeyError, TypeError):
        known = sorted(_METHODS) + ["trm"]
        raise ValueError(
            f"unknown method {method!r}; expected one of {known}"
        ) from None
    return cls(sbf, **options)
