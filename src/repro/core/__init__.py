"""The Spectral Bloom Filter — the paper's primary contribution.

Public entry points:

- :class:`SpectralBloomFilter` — the filter itself, with pluggable
  maintenance/lookup method (``"ms"``, ``"mi"``, ``"rm"``, ``"trm"``),
  hash family and counter storage backend;
- :mod:`repro.core.params` — Bloom-error math and parameter sizing;
- :class:`UnbiasedEstimator` and friends — the §3.1 probabilistic
  estimators.
"""

from repro.core.params import (
    bloom_error,
    gamma,
    optimal_k,
    optimal_m,
    recommended_parameters,
)
from repro.core.sbf import SpectralBloomFilter
from repro.core.methods import (
    Method,
    MinimumSelection,
    MinimalIncrease,
    RecurringMinimum,
    make_method,
)
from repro.core.trapping import TrappingRecurringMinimum
from repro.core.unbiased import (
    UnbiasedEstimator,
    MedianOfMeansEstimator,
    HybridEstimator,
)

__all__ = [
    "SpectralBloomFilter",
    "Method",
    "MinimumSelection",
    "MinimalIncrease",
    "RecurringMinimum",
    "TrappingRecurringMinimum",
    "make_method",
    "UnbiasedEstimator",
    "MedianOfMeansEstimator",
    "HybridEstimator",
    "bloom_error",
    "gamma",
    "optimal_k",
    "optimal_m",
    "recommended_parameters",
]
