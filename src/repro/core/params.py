"""Bloom-filter parameter math (paper §2.1).

After inserting ``n`` distinct keys into an array of ``m`` bits with ``k``
hash functions, the false-positive ("bloom error") probability is::

    E_b = (1 - (1 - 1/m)^(k*n))^k  ~=  (1 - e^(-k*n/m))^k

which is minimised at ``k = ln(2) * m/n``, giving ``E_b = 0.6185^(m/n)``.
The paper's load parameter is ``gamma = n*k/m`` (optimal ~= ln 2 ~= 0.7).
"""

from __future__ import annotations

import math


def gamma(n: int, k: int, m: int) -> float:
    """The paper's load factor ``gamma = n*k/m`` (§2.1)."""
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    return n * k / m


def bloom_error(n: int, k: int, m: int, *, exact: bool = False) -> float:
    """False-positive probability ``E_b`` for given parameters (§2.1).

    Args:
        exact: use the exact ``(1 - (1-1/m)^(kn))^k`` form instead of the
            ``(1 - e^(-kn/m))^k`` approximation the paper quotes.
    """
    if m <= 0 or k <= 0:
        raise ValueError("m and k must be positive")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if exact:
        return (1.0 - (1.0 - 1.0 / m) ** (k * n)) ** k
    return (1.0 - math.exp(-k * n / m)) ** k


def bloom_error_from_gamma(g: float, k: int) -> float:
    """``E_b`` expressed through the load factor: ``(1 - e^-gamma)^k``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return (1.0 - math.exp(-g)) ** k


def optimal_k(m: int, n: int) -> int:
    """The error-minimising number of hash functions ``k = ln2 * m/n``.

    Returns the better of floor/ceil (at least 1).
    """
    if n <= 0 or m <= 0:
        raise ValueError("m and n must be positive")
    ideal = math.log(2.0) * m / n
    lo = max(1, math.floor(ideal))
    hi = max(1, math.ceil(ideal))
    if bloom_error(n, lo, m) <= bloom_error(n, hi, m):
        return lo
    return hi


def optimal_m(n: int, error_rate: float) -> int:
    """Smallest ``m`` achieving *error_rate* with the optimal ``k``.

    Uses the classical ``m = -n ln(eps) / (ln 2)^2`` sizing.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 < error_rate < 1.0:
        raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
    return math.ceil(-n * math.log(error_rate) / (math.log(2.0) ** 2))


def recommended_parameters(n: int, error_rate: float) -> tuple[int, int]:
    """``(m, k)`` for *n* expected distinct keys at *error_rate*."""
    m = optimal_m(n, error_rate)
    return m, optimal_k(m, n)


def m_for_gamma(n: int, k: int, target_gamma: float) -> int:
    """Counter-array size giving load ``gamma = n*k/m`` (experiment sizing)."""
    if target_gamma <= 0:
        raise ValueError(f"gamma must be positive, got {target_gamma}")
    return max(1, round(n * k / target_gamma))
