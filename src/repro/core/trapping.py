"""The Trapping Recurring Minimum refinement (paper §3.3.1).

Plain Recurring Minimum suffers from *late detection*: an item x may only be
recognised as having a single minimum after all of its counters were already
contaminated, so the value transferred to the secondary SBF is inflated.
The Trapping refinement attaches a "trap" to the minimal counter of every
item moved to the secondary, together with a lookup table ``L`` mapping the
trapped counter to its owner.  When a *different* item later steps on a
trapped counter, it reveals itself as (part of) the contamination that was
baked into the owner's transferred value — so the owner's secondary count is
reduced accordingly.

Interpretation notes (Figure 2's pseudo-code is terse): we track per trap a
*correction budget* equal to ``transferred_value - 1`` (the contamination
can be at most that much, since a transferred item has true frequency >= 1).
Every time a foreign item increments the trapped counter, the owner's
secondary counters are decreased by that increment, bounded by the remaining
budget.  This repairs the classic late-detection scenario (contaminator
keeps arriving after the transfer) while bounding over-correction; the
paper's palindrome counter-example — a contaminator that never returns —
remains uncorrected, exactly as §3.3.1 concedes.

Caveat: because the true contamination share of a transferred value is
unknowable, the correction budget (``transferred_value - 1``) can exceed it
when the owner's own frequency at transfer time was above 1; a fully-spent
budget then yields a (rare) *false negative*.  Plain RM never has this
failure mode — choose it when strict one-sidedness matters more than the
smaller average error.
"""

from __future__ import annotations

from repro.core.methods import Method, RecurringMinimum


class _Trap:
    """A trap on one counter: its owner and the remaining correction."""

    __slots__ = ("owner", "budget")

    def __init__(self, owner: object, budget: int):
        self.owner = owner
        self.budget = budget


class TrappingRecurringMinimum(RecurringMinimum):
    """Recurring Minimum with per-counter traps (§3.3.1).

    Accepts the same options as :class:`RecurringMinimum`.
    """

    name = "trm"

    def __init__(self, sbf, **options):
        super().__init__(sbf, **options)
        # counter index -> live trap (the paper's trap bits plus L table).
        self._traps: dict[int, _Trap] = {}
        #: number of times a trap fired (diagnostic, used by the ablation)
        self.trap_fires = 0

    def insert(self, key: object, count: int) -> None:
        # Fire any traps this key steps on *before* the regular insert, so
        # the correction uses the contaminator's increment.
        idx = self.sbf.indices(key)
        for i in idx:
            trap = self._traps.get(i)
            if trap is not None and trap.owner != key:
                self._fire_trap(trap, count)
        super().insert(key, count)

    def _fire_trap(self, trap: _Trap, increment: int) -> None:
        """A foreign item stepped on a trapped counter: repair the owner."""
        correction = min(increment, trap.budget)
        if correction <= 0:
            return
        owner_values = self.secondary.counter_values(trap.owner)
        if min(owner_values) <= correction:
            # Never drive the shadow value to zero — a zero shadow would
            # read as "not in secondary" and fall back to the primary.
            correction = min(owner_values) - 1
            if correction <= 0:
                return
        self.secondary.delete(trap.owner, correction)
        trap.budget -= correction
        self.trap_fires += 1

    def _on_moved_to_secondary(self, key: object,
                               values: list[int]) -> None:
        """Set a trap on the item's single minimal counter (Figure 2)."""
        idx = self.sbf.indices(key)
        lowest = min(values)
        budget = lowest - 1
        if budget <= 0:
            return
        position = idx[values.index(lowest)]
        self._traps[position] = _Trap(key, budget)

    def delete(self, key: object, count: int) -> None:
        super().delete(key, count)
        # A deleted owner's trap would mis-correct a reinserted item; drop
        # any traps owned by this key.
        dead = [i for i, t in self._traps.items() if t.owner == key]
        for i in dead:
            del self._traps[i]

    # Traps fire (and are set/cleared) per key in stream order; the RM
    # bulk kernels cannot replay that, so TRM keeps the exact scalar
    # sequence for mutations.  Lookups have no trap interaction, so the
    # inherited vectorised estimate_many stays valid.
    def insert_many(self, keys, counts, canon, matrix) -> None:
        Method.insert_many(self, keys, counts, canon, matrix)

    def delete_many(self, keys, counts, canon, matrix) -> None:
        Method.delete_many(self, keys, counts, canon, matrix)

    def storage_bits(self) -> int:
        bits = super().storage_bits()
        # One trap flag per counter, plus the realised L-table entries
        # (owner pointer modelled as log2 m bits + budget as log2 N bits).
        per_entry = 2 * max(1, (self.sbf.m - 1).bit_length())
        return bits + self.sbf.m + len(self._traps) * per_entry

    def options(self) -> dict:
        return super().options()
