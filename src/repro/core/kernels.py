"""Vectorised bulk-operation kernels shared by all SBF methods.

Scalar SBF operations pay one Python call chain per key — hashing, counter
touches, method logic.  These kernels process a whole batch with a handful
of numpy array operations while remaining **bit-identical** to the scalar
path: every kernel's final counter state equals the state the equivalent
``for key in keys: sbf.insert(key)`` loop would have produced.

Why each kernel is exact:

- **MS insert/delete** (:func:`ms_add_kernel`): plain adds commute, so the
  batch collapses to one aggregated scatter — sum the deltas per distinct
  counter, apply once.  A delete batch that would drive any counter
  negative raises before array-shaped backends mutate anything (the
  scalar loop would also have raised, because same-signed deltas make the
  running value monotone: it dips below zero iff the final value does).
- **MI insert** (:func:`mi_insert_kernel`): conservative update is *not*
  order-free (a key's target depends on the current minimum, which
  interfering keys move), so the kernel runs *wavefront scheduling*: an
  entry (row j, counter c) may apply once every earlier row's entry on
  ``c`` has applied, and a row applies once all its entries may.  Each
  round processes every currently-ready row at once; two rows ready in
  the same round are provably counter-disjoint (if rows ``j < j'`` share
  ``c``, then ``rank(j', c) > rank(j, c)`` and readiness pins
  ``done[c]`` to both ranks — impossible), so a round's gather /
  row-minima / scatter is equivalent to applying its rows sequentially,
  and ordering rounds preserves the stream order between every
  conflicting pair.  The smallest pending row is always ready, so the
  loop terminates in at most ``max per-counter multiplicity`` rounds —
  tens of numpy passes for a duplicate-heavy stream, against the
  thousands of conflict-free segments the previous formulation cut the
  same stream into.  (:func:`conflict_free_segments` is retained: it
  still documents and tests the segmentation bound, and remains the
  ground truth the scheduling tests compare against.)
- **MI delete** (:func:`mi_delete_kernel`): the clamped decrement
  ``v <- max(0, v - c)`` composes to ``max(0, v - sum(c))`` for any
  same-signed sequence (once clamped to zero it stays there), so the
  batch is one aggregated gather/clamp/scatter.
- **Observed values** (:func:`sequential_observed`,
  :func:`observed_add_kernel`): Recurring Minimum needs the value each
  ``counters.add`` *returned* in stream order, not just the final state.
  For pure adds that value is ``start + inclusive running sum of the
  deltas landing on the same counter``, recovered with one stable sort
  and a grouped cumulative sum.  :func:`sequential_observed` is the
  reference formulation (explicit per-group offsets);
  :func:`observed_add_kernel` is the production kernel — it fuses the
  pre-gather, the aggregated scatter-add, and the grouped running sum
  around a *single* value-sort of the position stream, carrying the
  group-start offsets with one monotone ``maximum.accumulate`` instead
  of materialising per-group offset/length vectors (the
  ``repeat``/``diff`` pair over millions of tiny groups was the RM bulk
  path's dominant cost).

Backends participate through the ``get_many``/``add_many``/``set_many``
hooks, so the same kernels drive the numpy backend (true vector speed)
and the succinct backends (loop under the hood, still one hash pass).
"""

from __future__ import annotations

import numpy as np


def _grouped_order(indices: np.ndarray,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Group a position stream by value, submission order within groups.

    Returns ``(sorted_values, order)`` where ``order`` holds the original
    entry index of each sorted slot — the same pair a stable argsort
    produces, but computed by packing ``(value << b) | entry`` into one
    int64 and *value*-sorting it, which skips argsort's permutation
    machinery and runs ~10x faster.  Falls back to stable argsort when
    the packed key would not fit.
    """
    size = indices.size
    bits = max(1, int(size - 1).bit_length())
    if size and int(indices.max()) < (1 << (62 - bits)):
        packed = ((indices.astype(np.int64) << np.int64(bits))
                  | np.arange(size, dtype=np.int64))
        packed.sort()
        return packed >> np.int64(bits), packed & np.int64((1 << bits) - 1)
    order = np.argsort(indices, kind="stable")
    return indices[order], order


def aggregate_deltas(indices: np.ndarray, deltas: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Sum *deltas* per distinct index; returns (unique_indices, sums).

    Uses a stable sort plus ``np.add.reduceat`` — exact int64 arithmetic
    for any inputs (the dense ``bincount`` shortcut in
    :func:`ms_add_kernel` needs a magnitude bound; this path does not).
    """
    si, order = _grouped_order(indices)
    sd = deltas[order]
    starts = np.flatnonzero(np.r_[True, si[1:] != si[:-1]])
    return si[starts], np.add.reduceat(sd, starts)


def gather_rows(counters, matrix: np.ndarray) -> np.ndarray:
    """Counter values at every position of the ``(n, k)`` matrix."""
    n, k = matrix.shape
    return counters.get_many(matrix.ravel()).reshape(n, k)


def row_minima(counters, matrix: np.ndarray) -> np.ndarray:
    """Per-row minimum counter value — the vectorised ``m_x`` (§2.2)."""
    return gather_rows(counters, matrix).min(axis=1)


def ms_add_kernel(counters, matrix: np.ndarray, counts: np.ndarray,
                  sign: int = 1) -> None:
    """Aggregated Minimum-Selection scatter: add ``sign*count`` everywhere.

    Exact for any same-signed batch (adds commute; see module docstring
    for the negative-delta error equivalence).  Large batches accumulate
    through a dense ``bincount`` — O(m + nk) with no sort; the weighted
    variant goes through float64, which is exact for integer partial sums
    below 2^53, guarded by the total-mass check.
    """
    n, k = matrix.shape
    flat = matrix.ravel()
    m = len(counters)
    total = int(counts.sum())
    if flat.size >= (m >> 4) and total < (1 << 52):
        if bool((counts == 1).all()):
            dense = np.bincount(flat, minlength=m)
        else:
            weights = np.repeat(counts.astype(np.float64), k)
            dense = np.bincount(flat, weights=weights, minlength=m)
        uniq = np.flatnonzero(dense)
        sums = dense[uniq].astype(np.int64) * sign
    else:
        deltas = np.repeat(counts.astype(np.int64) * sign, k)
        uniq, sums = aggregate_deltas(flat, deltas)
    counters.add_many(uniq, sums)


def conflict_free_segments(matrix: np.ndarray) -> np.ndarray:
    """Boundaries of maximal counter-disjoint runs of the row stream.

    Returns ``bounds`` with segments ``[bounds[i], bounds[i+1])``; within
    each segment no two *distinct* rows share a counter (duplicate
    positions inside one row are allowed — the scalar path writes them
    identically).
    """
    n, k = matrix.shape
    flat = matrix.ravel()
    sf, order = _grouped_order(flat)
    # Each adjacent equal-counter pair in the grouped stream is a
    # conflict: the later row (``rj``) must sit in a segment after the
    # earlier one (``ri``), contributing a boundary requirement ``lp[rj]
    # >= ri + 1``.  A duplicate position *within* one row would read as
    # a self-conflict; clamping the contribution to ``rj - 1 + 1 = rj``
    # keeps it valid (the row just starts its own segment — finer than
    # necessary, never wrong) without a dedup pass.
    conflict = sf[1:] == sf[:-1]
    rj = order[1:][conflict] // k
    ri = order[:-1][conflict] // k
    contrib = np.minimum(ri, rj - 1) + 1
    # Per-row maximum contribution via one more packed value-sort (group
    # last = group max), then the running maximum over rows.  Rows fit
    # in 31 bits and so do contributions (<= n), so the pack is exact.
    if not rj.size:
        return np.array([0, n])
    packed = (rj << np.int64(31)) | contrib
    packed.sort()
    ends = np.flatnonzero(np.r_[packed[1:] >> np.int64(31)
                                != packed[:-1] >> np.int64(31), True])
    s = np.zeros(n, dtype=np.int64)
    s[packed[ends] >> np.int64(31)] = packed[ends] & np.int64((1 << 31) - 1)
    s = np.maximum.accumulate(s)
    starts = np.flatnonzero(np.r_[True, s[1:] != s[:-1]])
    return np.r_[starts, n]


def mi_schedule(matrix: np.ndarray,
                counts: np.ndarray | None = None,
                ) -> tuple[np.ndarray, np.ndarray, int]:
    """Wavefront dependency data for a Minimal-Increase row stream.

    An entry ``(row j, counter c)`` depends on the latest *earlier* row
    touching ``c`` (duplicate positions inside one row count once — the
    scalar path reads and writes them identically, so only the first
    occurrence is a dependency).  Returned as Kahn's-algorithm inputs:

    - ``succ`` — shaped like *matrix*; ``succ[j, l]`` is the next row
      after ``j`` touching the same counter (``-1`` when none, and on
      every deduplicated repeat of a counter within row ``j``);
    - ``indeg`` — per row, how many of its distinct counters were
      touched by an earlier row (its in-degree in the dependency DAG);
    - ``max_mass`` — with *counts* given, the largest per-counter total
      count mass of the batch (0 otherwise): an MI update never lifts a
      counter above ``value + count``, so ``current max + max_mass``
      bounds every counter the batch can produce, and the backend can be
      widened once without over-shooting the dtype ladder.

    One value-sort of the position stream produces all three: stable
    grouping orders each counter's entries by row, so a group lists the
    counter's dependency chain in order and each kept entry's successor
    is simply the next kept entry of its group.
    """
    n, k = matrix.shape
    if n == 0:
        empty = np.empty((0, k), dtype=np.int32)
        return empty, np.zeros(0, dtype=np.int64), 0
    sf, order = _grouped_order(matrix.ravel())
    rows_sorted = (order // np.int64(k)).astype(np.int32)
    is_start = np.r_[True, sf[1:] != sf[:-1]]
    # Same-row duplicates are adjacent inside a group (stable grouping
    # orders entries by original index, i.e. by row); keep the first.
    keep = is_start.copy()
    keep[1:] |= rows_sorted[1:] != rows_sorted[:-1]
    rsel = rows_sorted[keep]
    # Group starts are always kept, so consecutive kept entries sit in
    # the same group exactly when the second one is not a group start.
    chained = ~is_start[keep][1:]
    succ_sel = np.full(rsel.size, -1, dtype=np.int32)
    succ_sel[:-1][chained] = rsel[1:][chained]
    succ = np.full(n * k, -1, dtype=np.int32)
    succ[order[keep]] = succ_sel
    indeg = np.bincount(rsel[1:][chained], minlength=n)
    max_mass = 0
    if counts is not None and n:
        cum = np.cumsum(counts[rows_sorted])
        ends = np.r_[np.flatnonzero(is_start[1:]), n * k - 1]
        group_end = cum[ends]
        group_end[1:] -= group_end[:-1]
        max_mass = int(group_end.max())
    return succ.reshape(n, k), indeg, max_mass


def mi_insert_kernel(counters, matrix: np.ndarray,
                     counts: np.ndarray) -> None:
    """Minimal-Increase insert by wavefront (level) scheduling.

    Each round gathers every *ready* row's values (rows whose dependency
    in-degree has dropped to zero — see :func:`mi_schedule`), computes
    the conservative targets ``min + count`` and scatters only the
    counters below target — the exact scalar update for those rows.
    A round's rows are provably counter-disjoint (if rows ``j < j'``
    share a counter, ``j'`` sits strictly deeper in that counter's
    dependency chain, so it becomes ready strictly after ``j`` runs), so
    the batched gather/scatter is equivalent to applying them one at a
    time, and round order preserves the stream order between every
    conflicting pair — bit-identical to the scalar loop.  Processing a
    row releases each of its chain successors exactly once, so the
    scheduling work is one pass over the entries in total, not one scan
    per round.
    """
    n, k = matrix.shape
    if n == 0:
        return
    counts64 = counts.astype(np.int64)
    raw = None
    if hasattr(counters, "ensure_capacity"):
        succ, indeg, max_mass = mi_schedule(matrix, counts64)
        # Widen once up front — a counter never exceeds its start value
        # plus the count mass landing on it (targets are min + count ≤
        # own value + count), so per-round scatters cannot reallocate
        # mid-kernel and the raw array can be written directly, skipping
        # the get_many/set_many copies.  The per-counter mass bound
        # keeps narrow dtypes narrow where the whole-batch total would
        # have forced a wide (cache-hostile) ladder step.
        counters.ensure_capacity(int(counters.raw.max(initial=0)) + max_mass)
        raw = counters.raw
    else:
        succ, indeg, _ = mi_schedule(matrix)
    ready = np.flatnonzero(indeg == 0)
    while ready.size:
        rows = matrix[ready]
        if raw is not None:
            values = raw[rows]
            targets = values.min(axis=1).astype(np.int64) + counts64[ready]
            mask = values < targets[:, None]
            if mask.any():
                raw[rows[mask]] = np.broadcast_to(
                    targets[:, None], values.shape)[mask].astype(raw.dtype)
        else:
            flat = rows.ravel()
            values = counters.get_many(flat).reshape(ready.size, k)
            targets = values.min(axis=1) + counts64[ready]
            mask = values < targets[:, None]
            if mask.any():
                counters.set_many(
                    flat[mask.ravel()],
                    np.broadcast_to(targets[:, None], values.shape)[mask])
        released = succ[ready].ravel()
        released = released[released >= 0]
        if not released.size:
            break
        candidates, hits = np.unique(released, return_counts=True)
        indeg[candidates] -= hits
        ready = candidates[indeg[candidates] == 0]


def mi_delete_kernel(counters, matrix: np.ndarray,
                     counts: np.ndarray) -> None:
    """Minimal-Increase clamped delete: ``v <- max(0, v - sum)`` at once."""
    n, k = matrix.shape
    deltas = np.repeat(counts.astype(np.int64), k)
    uniq, sums = aggregate_deltas(matrix.ravel(), deltas)
    current = counters.get_many(uniq)
    counters.set_many(uniq, np.maximum(current - sums, 0))


def sequential_observed(flat: np.ndarray, deltas: np.ndarray,
                        start: np.ndarray, n: int, k: int) -> np.ndarray:
    """Per-entry post-add values, as sequential ``counters.add`` returns.

    *flat* is the row-major ``(n*k,)`` position stream, *deltas* the
    per-entry increments (row-major, signed), *start* the counter values
    gathered **before** any of the adds.  Returns an ``(n, k)`` matrix
    whose entry ``[j, l]`` equals what ``counters.add(flat[j*k+l],
    deltas[j*k+l])`` would have returned in stream order.
    """
    if flat.size == 0:
        return np.zeros((n, k), dtype=np.int64)
    sf, order = _grouped_order(flat)
    sd = deltas[order]
    cum = np.cumsum(sd)
    starts = np.flatnonzero(np.r_[True, sf[1:] != sf[:-1]])
    # Inclusive running sum within each equal-counter group.
    offsets = np.where(starts > 0, cum[starts - 1], 0)
    lengths = np.diff(np.r_[starts, sf.size])
    inclusive = cum - np.repeat(offsets, lengths)
    observed = np.empty(n * k, dtype=np.int64)
    observed[order] = start[order] + inclusive
    return observed.reshape(n, k)


def observed_add_kernel(counters, matrix: np.ndarray, counts: np.ndarray,
                        sign: int = 1) -> np.ndarray:
    """Apply the MS scatter-add *and* return the per-entry observed values.

    One call replaces the Recurring-Minimum bulk preamble — ``start =
    get_many(flat)``; :func:`ms_add_kernel`; :func:`sequential_observed`
    — with a single value-sort of the position stream:

    - the inclusive per-group running sum yields the observed deltas
      (group-start offsets carried by one monotone
      ``maximum.accumulate`` / ``minimum.accumulate``: same-signed
      deltas make the exclusive cumulative sum monotone, so the latest
      group start dominates every earlier one and the zero filler;
      mixed signs fall back to a group-id gather);
    - each group's *last* inclusive sum is simultaneously the aggregated
      per-counter delta, so the primary add needs no second
      aggregation pass (and no dense bincount over ``m``);
    - the batch-start counter values are gathered once per *distinct*
      counter and broadcast back through the group ids, instead of once
      per entry.

    Returns the ``(n, k)`` observed matrix — entry ``[j, l]`` equals what
    ``counters.add(matrix[j, l], sign * counts[j])`` would have returned
    in stream order.  Exactly the values :func:`sequential_observed`
    computes (the property tests pin this down), with the counter state
    advanced the same way :func:`ms_add_kernel` advances it — including
    raising before any mutation when a same-signed batch would drive a
    counter negative.
    """
    n, k = matrix.shape
    if n == 0:
        return np.zeros((0, k), dtype=np.int64)
    sf, order = _grouped_order(matrix.ravel())
    # counts[order // k] beats materialising the k-repeated delta stream
    # and then permuting it: one divide replaces repeat + gather.
    sd = (counts.astype(np.int64) * sign)[order // k]
    cum = np.cumsum(sd)
    is_start = np.r_[True, sf[1:] != sf[:-1]]
    excl = cum - sd
    if sign >= 0 and bool(sd.min(initial=0) >= 0):
        base = np.maximum.accumulate(np.where(is_start, excl, 0))
        gid = None
    elif sign < 0 and bool(sd.max(initial=0) <= 0):
        base = np.minimum.accumulate(np.where(is_start, excl, 0))
        gid = None
    else:
        gid = np.cumsum(is_start) - 1
        base = excl[is_start][gid]
    inclusive = cum - base
    is_end = np.r_[is_start[1:], True]
    uniq = sf[is_end]
    start_vals = counters.get_many(uniq)
    counters.add_many(uniq, inclusive[is_end])
    if gid is None:
        gid = np.cumsum(is_start) - 1
    observed = np.empty(n * k, dtype=np.int64)
    observed[order] = start_vals[gid] + inclusive
    return observed.reshape(n, k)


def set_bits(bitvector, positions: np.ndarray) -> None:
    """Set every bit position in *positions* (duplicates fine) at once.

    The scalar equivalent — ``set_bit`` per position — is the hot loop of
    a bulk Recurring Minimum insert when most keys move to the secondary
    (millions of marker bits).  Build the new bits as a boolean array,
    pack, and OR into the existing words.
    """
    words = bitvector._words
    if not words:
        for position in np.unique(positions).tolist():
            bitvector.set_bit(position)
        return
    fresh = np.zeros(len(words) * 64, dtype=bool)
    fresh[positions] = True
    packed = np.packbits(fresh, bitorder="little").view(np.uint64)
    current = np.asarray(words, dtype=np.uint64)
    words[:] = (current | packed).tolist()


def bits_array(bitvector, nbits: int) -> np.ndarray:
    """A BitVector's first *nbits* bits as a boolean numpy array."""
    words = np.asarray(bitvector._words, dtype=np.uint64)
    if words.size == 0:
        return np.zeros(nbits, dtype=bool)
    unpacked = np.unpackbits(words.view(np.uint8), bitorder="little")
    return unpacked[:nbits].astype(bool)
