"""Vectorised bulk-operation kernels shared by all SBF methods.

Scalar SBF operations pay one Python call chain per key — hashing, counter
touches, method logic.  These kernels process a whole batch with a handful
of numpy array operations while remaining **bit-identical** to the scalar
path: every kernel's final counter state equals the state the equivalent
``for key in keys: sbf.insert(key)`` loop would have produced.

Why each kernel is exact:

- **MS insert/delete** (:func:`ms_add_kernel`): plain adds commute, so the
  batch collapses to one aggregated scatter — sum the deltas per distinct
  counter, apply once.  A delete batch that would drive any counter
  negative raises before array-shaped backends mutate anything (the
  scalar loop would also have raised, because same-signed deltas make the
  running value monotone: it dips below zero iff the final value does).
- **MI insert** (:func:`mi_insert_kernel`): conservative update is *not*
  order-free (a key's target depends on the current minimum, which
  interfering keys move), so the stream is cut into *conflict-free
  segments* — maximal runs in which no two keys share a counter.  Inside
  a segment every key sees exactly the counter state left by the previous
  segment, so all its rows can gather, take row-minima and scatter
  ``max(value, min+count)`` together.  Segment boundaries come from
  ``lp[j]`` — the last earlier row sharing a counter with row ``j`` — via
  the running maximum ``s = cummax(lp + 1)``: within a run of constant
  ``s`` every ``lp[j] < s[j] <= run start``, which is precisely the
  conflict-free condition.  (``lp[j] < j`` always, since ``lp`` is an
  earlier row, so ``s[a] <= a``.)  Two occurrences of the *same* key
  conflict with themselves and land in different segments, preserving the
  scalar semantics of repeated inserts.
- **MI delete** (:func:`mi_delete_kernel`): the clamped decrement
  ``v <- max(0, v - c)`` composes to ``max(0, v - sum(c))`` for any
  same-signed sequence (once clamped to zero it stays there), so the
  batch is one aggregated gather/clamp/scatter.
- **Observed values** (:func:`sequential_observed`): Recurring Minimum
  needs the value each ``counters.add`` *returned* in stream order, not
  just the final state.  For pure adds that value is ``start + inclusive
  running sum of the deltas landing on the same counter``, recovered with
  one stable sort and a grouped cumulative sum.

Backends participate through the ``get_many``/``add_many``/``set_many``
hooks, so the same kernels drive the numpy backend (true vector speed)
and the succinct backends (loop under the hood, still one hash pass).
"""

from __future__ import annotations

import numpy as np


def _grouped_order(indices: np.ndarray,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Group a position stream by value, submission order within groups.

    Returns ``(sorted_values, order)`` where ``order`` holds the original
    entry index of each sorted slot — the same pair a stable argsort
    produces, but computed by packing ``(value << b) | entry`` into one
    int64 and *value*-sorting it, which skips argsort's permutation
    machinery and runs ~10x faster.  Falls back to stable argsort when
    the packed key would not fit.
    """
    size = indices.size
    bits = max(1, int(size - 1).bit_length())
    if size and int(indices.max()) < (1 << (62 - bits)):
        packed = ((indices.astype(np.int64) << np.int64(bits))
                  | np.arange(size, dtype=np.int64))
        packed.sort()
        return packed >> np.int64(bits), packed & np.int64((1 << bits) - 1)
    order = np.argsort(indices, kind="stable")
    return indices[order], order


def aggregate_deltas(indices: np.ndarray, deltas: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Sum *deltas* per distinct index; returns (unique_indices, sums).

    Uses a stable sort plus ``np.add.reduceat`` — exact int64 arithmetic
    for any inputs (the dense ``bincount`` shortcut in
    :func:`ms_add_kernel` needs a magnitude bound; this path does not).
    """
    si, order = _grouped_order(indices)
    sd = deltas[order]
    starts = np.flatnonzero(np.r_[True, si[1:] != si[:-1]])
    return si[starts], np.add.reduceat(sd, starts)


def gather_rows(counters, matrix: np.ndarray) -> np.ndarray:
    """Counter values at every position of the ``(n, k)`` matrix."""
    n, k = matrix.shape
    return counters.get_many(matrix.ravel()).reshape(n, k)


def row_minima(counters, matrix: np.ndarray) -> np.ndarray:
    """Per-row minimum counter value — the vectorised ``m_x`` (§2.2)."""
    return gather_rows(counters, matrix).min(axis=1)


def ms_add_kernel(counters, matrix: np.ndarray, counts: np.ndarray,
                  sign: int = 1) -> None:
    """Aggregated Minimum-Selection scatter: add ``sign*count`` everywhere.

    Exact for any same-signed batch (adds commute; see module docstring
    for the negative-delta error equivalence).  Large batches accumulate
    through a dense ``bincount`` — O(m + nk) with no sort; the weighted
    variant goes through float64, which is exact for integer partial sums
    below 2^53, guarded by the total-mass check.
    """
    n, k = matrix.shape
    flat = matrix.ravel()
    m = len(counters)
    total = int(counts.sum())
    if flat.size >= (m >> 4) and total < (1 << 52):
        if bool((counts == 1).all()):
            dense = np.bincount(flat, minlength=m)
        else:
            weights = np.repeat(counts.astype(np.float64), k)
            dense = np.bincount(flat, weights=weights, minlength=m)
        uniq = np.flatnonzero(dense)
        sums = dense[uniq].astype(np.int64) * sign
    else:
        deltas = np.repeat(counts.astype(np.int64) * sign, k)
        uniq, sums = aggregate_deltas(flat, deltas)
    counters.add_many(uniq, sums)


def conflict_free_segments(matrix: np.ndarray) -> np.ndarray:
    """Boundaries of maximal counter-disjoint runs of the row stream.

    Returns ``bounds`` with segments ``[bounds[i], bounds[i+1])``; within
    each segment no two *distinct* rows share a counter (duplicate
    positions inside one row are allowed — the scalar path writes them
    identically).
    """
    n, k = matrix.shape
    flat = matrix.ravel()
    sf, order = _grouped_order(flat)
    # Each adjacent equal-counter pair in the grouped stream is a
    # conflict: the later row (``rj``) must sit in a segment after the
    # earlier one (``ri``), contributing a boundary requirement ``lp[rj]
    # >= ri + 1``.  A duplicate position *within* one row would read as
    # a self-conflict; clamping the contribution to ``rj - 1 + 1 = rj``
    # keeps it valid (the row just starts its own segment — finer than
    # necessary, never wrong) without a dedup pass.
    conflict = sf[1:] == sf[:-1]
    rj = order[1:][conflict] // k
    ri = order[:-1][conflict] // k
    contrib = np.minimum(ri, rj - 1) + 1
    # Per-row maximum contribution via one more packed value-sort (group
    # last = group max), then the running maximum over rows.  Rows fit
    # in 31 bits and so do contributions (<= n), so the pack is exact.
    if not rj.size:
        return np.array([0, n])
    packed = (rj << np.int64(31)) | contrib
    packed.sort()
    ends = np.flatnonzero(np.r_[packed[1:] >> np.int64(31)
                                != packed[:-1] >> np.int64(31), True])
    s = np.zeros(n, dtype=np.int64)
    s[packed[ends] >> np.int64(31)] = packed[ends] & np.int64((1 << 31) - 1)
    s = np.maximum.accumulate(s)
    starts = np.flatnonzero(np.r_[True, s[1:] != s[:-1]])
    return np.r_[starts, n]


def mi_insert_kernel(counters, matrix: np.ndarray,
                     counts: np.ndarray) -> None:
    """Minimal-Increase insert, segment by conflict-free segment.

    Each segment gathers its rows' values, computes the conservative
    targets ``min + count`` and scatters only the counters below target —
    the exact scalar update, batched.
    """
    n, k = matrix.shape
    raw = None
    if hasattr(counters, "ensure_capacity"):
        # Widen once up front: no counter can exceed the current maximum
        # plus the whole batch's mass, so per-segment scatters never
        # reallocate mid-kernel — and the raw array can be written
        # directly, skipping the get_many/set_many copies per segment.
        counters.ensure_capacity(int(counters.raw.max())
                                 + int(counts.sum()))
        raw = counters.raw
    bounds = conflict_free_segments(matrix)
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        seg = matrix[a:b]
        if raw is not None:
            values = raw[seg]
            targets = values.min(axis=1).astype(np.int64) + counts[a:b]
            mask = values < targets[:, None]
            if mask.any():
                raw[seg[mask]] = np.broadcast_to(
                    targets[:, None], values.shape)[mask]
            continue
        flat = seg.ravel()
        values = counters.get_many(flat).reshape(b - a, k)
        targets = values.min(axis=1) + counts[a:b]
        mask = values < targets[:, None]
        if not mask.any():
            continue
        scattered = np.broadcast_to(targets[:, None], values.shape)[mask]
        counters.set_many(flat[mask.ravel()], scattered)


def mi_delete_kernel(counters, matrix: np.ndarray,
                     counts: np.ndarray) -> None:
    """Minimal-Increase clamped delete: ``v <- max(0, v - sum)`` at once."""
    n, k = matrix.shape
    deltas = np.repeat(counts.astype(np.int64), k)
    uniq, sums = aggregate_deltas(matrix.ravel(), deltas)
    current = counters.get_many(uniq)
    counters.set_many(uniq, np.maximum(current - sums, 0))


def sequential_observed(flat: np.ndarray, deltas: np.ndarray,
                        start: np.ndarray, n: int, k: int) -> np.ndarray:
    """Per-entry post-add values, as sequential ``counters.add`` returns.

    *flat* is the row-major ``(n*k,)`` position stream, *deltas* the
    per-entry increments (row-major, signed), *start* the counter values
    gathered **before** any of the adds.  Returns an ``(n, k)`` matrix
    whose entry ``[j, l]`` equals what ``counters.add(flat[j*k+l],
    deltas[j*k+l])`` would have returned in stream order.
    """
    sf, order = _grouped_order(flat)
    sd = deltas[order]
    cum = np.cumsum(sd)
    starts = np.flatnonzero(np.r_[True, sf[1:] != sf[:-1]])
    # Inclusive running sum within each equal-counter group.
    offsets = np.where(starts > 0, cum[starts - 1], 0)
    lengths = np.diff(np.r_[starts, sf.size])
    inclusive = cum - np.repeat(offsets, lengths)
    observed = np.empty(n * k, dtype=np.int64)
    observed[order] = start[order] + inclusive
    return observed.reshape(n, k)


def set_bits(bitvector, positions: np.ndarray) -> None:
    """Set every bit position in *positions* (duplicates fine) at once.

    The scalar equivalent — ``set_bit`` per position — is the hot loop of
    a bulk Recurring Minimum insert when most keys move to the secondary
    (millions of marker bits).  Build the new bits as a boolean array,
    pack, and OR into the existing words.
    """
    words = bitvector._words
    if not words:
        for position in np.unique(positions).tolist():
            bitvector.set_bit(position)
        return
    fresh = np.zeros(len(words) * 64, dtype=bool)
    fresh[positions] = True
    packed = np.packbits(fresh, bitorder="little").view(np.uint64)
    current = np.asarray(words, dtype=np.uint64)
    words[:] = (current | packed).tolist()


def bits_array(bitvector, nbits: int) -> np.ndarray:
    """A BitVector's first *nbits* bits as a boolean numpy array."""
    words = np.asarray(bitvector._words, dtype=np.uint64)
    if words.size == 0:
        return np.zeros(nbits, dtype=bool)
    unpacked = np.unpackbits(words.view(np.uint8), bitorder="little")
    return unpacked[:nbits].astype(bool)
