"""Wire formats for shipping filters between sites (§4.7.1, §5.3).

Bloomjoins and Summary-Cache-style protocols send filters as *messages*;
§4.7.1 designs the String-Array Index so it can be transmitted as one
contiguous memory block.  This module provides that capability one level
up: byte serialisation for :class:`BloomFilter` and
:class:`SpectralBloomFilter` (MS/MI methods; RM ships its secondary and
marker along), with the hash-family configuration embedded so the receiver
reconstructs a *compatible* filter.

Wire format v2 (the only version written, and the only one accepted)::

    frame := magic(4) | header_len:u32le | header_json | payload | crc32:u32le

The magic encodes the version (``RBF2`` / ``RSB2``); the CRC32 trailer
covers every preceding byte, so a truncated or bit-flipped frame is always
*detected* — loaders raise :class:`WireFormatError` (a ``ValueError``)
instead of decoding a corrupted blob into a silently wrong filter.  Every
header field is bounds- and type-checked before any structure is built.

Only the seed-constructible families round-trip (all built-ins); a custom
family instance must be re-supplied at load time.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.core.methods import RecurringMinimum
from repro.core.sbf import SpectralBloomFilter
from repro.filters.bloom import BloomFilter
from repro.hashing import (
    BlockedHashFamily,
    DoubleHashingFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
    TabulationFamily,
)
from repro.succinct.bitvector import BitVector, BitReader, BitWriter
from repro.succinct.elias import EliasCodec

#: current wire-format version (encoded in the frame magic)
WIRE_VERSION = 2

_MAGIC_BLOOM = b"RBF2"
_MAGIC_SBF = b"RSB2"
# Version-1 magics (no checksum); recognised only to give a clear error.
_MAGIC_BLOOM_V1 = b"RBF1"
_MAGIC_SBF_V1 = b"RSB1"

_FAMILY_NAMES = {
    ModuloMultiplyFamily: "modmul",
    MultiplyShiftFamily: "multiply-shift",
    TabulationFamily: "tabulation",
    DoubleHashingFamily: "double",
    BlockedHashFamily: "blocked",
}
_KNOWN_FAMILIES = frozenset(_FAMILY_NAMES.values())
_KNOWN_METHODS = frozenset({"ms", "mi", "rm"})


class WireFormatError(ValueError):
    """A wire frame is truncated, corrupted, or structurally invalid.

    Raised by every load path in this module — corruption is always
    *detected*, never silently decoded into a wrong filter.
    """


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


def _seal(magic: bytes, meta: dict, payload: bytes) -> bytes:
    """Assemble a v2 frame: magic + header + payload + CRC32 trailer."""
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    frame = magic + struct.pack("<I", len(blob)) + blob + payload
    return frame + struct.pack("<I", zlib.crc32(frame) & 0xFFFFFFFF)


def _read_header(data: bytes, magic: bytes,
                 legacy_magic: bytes) -> tuple[dict, bytes]:
    """Validate a v2 frame end to end; return (header dict, payload bytes).

    Checks, in order: type and minimum length, magic (with a dedicated
    message for version-1 frames), declared header length against the
    actual frame size, the CRC32 trailer, and that the header parses to a
    JSON object.  Any failure raises :class:`WireFormatError`.
    """
    _check(isinstance(data, (bytes, bytearray, memoryview)),
           f"wire frame must be bytes, got {type(data).__name__}")
    data = bytes(data)
    kind = magic.decode("ascii")
    _check(len(data) >= 4, f"frame too short ({len(data)} bytes) to hold a "
                           f"{kind} magic")
    if data[:4] == legacy_magic:
        raise WireFormatError(
            f"version-1 {legacy_magic.decode()} frame (no checksum) is no "
            f"longer supported; re-serialise with wire version {WIRE_VERSION}")
    _check(data[:4] == magic, f"not a {kind} frame")
    _check(len(data) >= 12,
           f"truncated {kind} frame: {len(data)} bytes cannot hold the "
           f"header length and checksum")
    (length,) = struct.unpack("<I", data[4:8])
    _check(8 + length + 4 <= len(data),
           f"truncated {kind} frame: header declares {length} bytes but "
           f"only {len(data) - 12} are available")
    (stored_crc,) = struct.unpack("<I", data[-4:])
    actual_crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    _check(stored_crc == actual_crc,
           f"checksum mismatch on {kind} frame "
           f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})")
    try:
        meta = json.loads(data[8:8 + length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"corrupt {kind} header: {exc}") from None
    _check(isinstance(meta, dict), f"{kind} header must be a JSON object")
    return meta, data[8 + length:-4]


def _meta_int(meta: dict, key: str, *, minimum: int | None = None) -> int:
    """Fetch an integer header field with presence/type/bounds validation."""
    _check(key in meta, f"header is missing required field {key!r}")
    value = meta[key]
    _check(isinstance(value, int) and not isinstance(value, bool),
           f"header field {key!r} must be an integer, got {value!r}")
    if minimum is not None:
        _check(value >= minimum,
               f"header field {key!r} must be >= {minimum}, got {value}")
    return value


def _meta_family(meta: dict) -> str:
    _check("family" in meta, "header is missing required field 'family'")
    family = meta["family"]
    _check(isinstance(family, str) and family in _KNOWN_FAMILIES,
           f"unknown hash family {family!r}; expected one of "
           f"{sorted(_KNOWN_FAMILIES)}")
    return family


def seal_frame(magic: bytes, meta: dict, payload: bytes = b"") -> bytes:
    """Public frame builder for subsystems layered on the wire format.

    Produces the same ``magic | header_len | header_json | payload | crc32``
    shape as the filter frames, so persistence checkpoints and app-level
    snapshots inherit v2's torn/corrupt detection for free.  *magic* must be
    exactly 4 bytes and not collide with the filter magics.
    """
    if len(magic) != 4:
        raise ValueError(f"frame magic must be 4 bytes, got {magic!r}")
    if magic in (_MAGIC_BLOOM, _MAGIC_SBF, _MAGIC_BLOOM_V1, _MAGIC_SBF_V1):
        raise ValueError(f"magic {magic!r} is reserved for filter frames")
    return _seal(magic, meta, payload)


def open_frame(data: bytes, magic: bytes) -> tuple[dict, bytes]:
    """Validate a frame sealed by :func:`seal_frame`; return (meta, payload).

    Raises:
        WireFormatError: on any truncation, corruption, or magic mismatch.
    """
    return _read_header(data, magic, b"\x00\x00\x00\x00")


def seal_sections(magic: bytes, meta: dict,
                  sections: list[bytes]) -> bytes:
    """Seal a frame whose payload is a list of variable-length sections.

    The section lengths are recorded in the header (field ``"sections"``),
    so :func:`open_sections` can split the payload back without any
    in-band delimiters.  Used by composite frames that embed other frames
    — e.g. the serving layer's shard manifest, whose sections are
    themselves :func:`dump_sbf` frames.  *meta* must not already carry a
    ``"sections"`` field.
    """
    if "sections" in meta:
        raise ValueError("meta must not define 'sections'; it is reserved "
                         "for the section-length table")
    meta = dict(meta, sections=[len(s) for s in sections])
    return seal_frame(magic, meta, b"".join(bytes(s) for s in sections))


def open_sections(data: bytes, magic: bytes) -> tuple[dict, list[bytes]]:
    """Open a frame sealed by :func:`seal_sections`; return (meta, sections).

    Raises:
        WireFormatError: on any truncation, corruption, magic mismatch, or
            a section table inconsistent with the payload size.
    """
    meta, payload = open_frame(data, magic)
    _check("sections" in meta, "header is missing required field 'sections'")
    table = meta["sections"]
    _check(isinstance(table, list), f"'sections' must be a list, got "
                                    f"{table!r}")
    for length in table:
        _check(isinstance(length, int) and not isinstance(length, bool)
               and length >= 0,
               f"section lengths must be non-negative integers, "
               f"got {length!r}")
    _check(sum(table) == len(payload),
           f"section lengths {table} sum to {sum(table)} but the payload "
           f"is {len(payload)} bytes")
    sections, cursor = [], 0
    for length in table:
        sections.append(payload[cursor:cursor + length])
        cursor += length
    return meta, sections


def _family_name(family) -> str:
    try:
        return _FAMILY_NAMES[type(family)]
    except KeyError:
        raise ValueError(
            f"cannot serialise custom hash family {type(family).__name__}; "
            f"reconstruct the filter with an explicit family instead"
        ) from None


def family_name(family) -> str:
    """The wire name of a built-in hash family instance.

    The inverse of the ``hash_family=`` string accepted by filter
    constructors; composite frames (shard manifests, the tenancy tree)
    use it to record the shared family in their headers.

    Raises:
        ValueError: for custom family classes, which have no wire name.
    """
    return _family_name(family)


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
def dump_bloom(bf: BloomFilter) -> bytes:
    """Serialise a Bloom filter to a checksummed v2 frame."""
    meta = {"m": bf.m, "k": bf.k, "seed": bf.seed,
            "family": _family_name(bf.family), "n_added": bf.n_added}
    payload = bytearray((bf.m + 7) // 8)
    for i in range(len(payload)):
        payload[i] = bf.bits.read(8 * i, 8)
    return _seal(_MAGIC_BLOOM, meta, bytes(payload))


def load_bloom(data: bytes) -> BloomFilter:
    """Reconstruct a Bloom filter serialised by :func:`dump_bloom`.

    Raises:
        WireFormatError: on any truncation, corruption, or invalid field.
    """
    meta, payload = _read_header(data, _MAGIC_BLOOM, _MAGIC_BLOOM_V1)
    m = _meta_int(meta, "m", minimum=1)
    k = _meta_int(meta, "k", minimum=1)
    seed = _meta_int(meta, "seed")
    n_added = _meta_int(meta, "n_added", minimum=0)
    family = _meta_family(meta)
    expected = (m + 7) // 8
    _check(len(payload) == expected,
           f"Bloom payload is {len(payload)} bytes, expected {expected} "
           f"for m={m}")
    try:
        bf = BloomFilter(m, k, seed=seed, hash_family=family)
    except (ValueError, TypeError) as exc:
        raise WireFormatError(f"invalid Bloom parameters: {exc}") from None
    for i in range(expected):
        bf.bits.write(8 * i, 8, payload[i])
    bf.n_added = n_added
    return bf


# ----------------------------------------------------------------------
# Spectral Bloom filter
# ----------------------------------------------------------------------
def _dump_counters(sbf: SpectralBloomFilter) -> bytes:
    codec = EliasCodec()
    bits = BitVector()
    writer = BitWriter(bits)
    for value in sbf.counters:
        pattern, nbits = codec.encode(value)
        writer.write_bits(pattern, nbits)
    payload = bytearray((writer.pos + 7) // 8)
    for i in range(len(payload)):
        payload[i] = bits.read(8 * i, 8)
    return bytes(payload)


def _load_counters(sbf: SpectralBloomFilter, payload: bytes) -> None:
    codec = EliasCodec()
    bits = BitVector(len(payload) * 8)
    for i, byte in enumerate(payload):
        bits.write(8 * i, 8, byte)
    reader = BitReader(bits)
    try:
        for i in range(sbf.m):
            sbf.counters.set(i, codec.decode(reader))
    except (ValueError, IndexError, OverflowError) as exc:
        raise WireFormatError(
            f"corrupt counter stream at counter {i}: {exc}") from None


def dump_sbf(sbf: SpectralBloomFilter) -> bytes:
    """Serialise an SBF to a checksummed v2 frame.

    The payload is the Elias-coded counter vector; Recurring Minimum
    filters embed their secondary SBF and marker filter recursively (each
    as its own checksummed frame), so the receiver gets a fully-functional
    filter.
    """
    meta = {
        "m": sbf.m, "k": sbf.k, "seed": sbf.seed,
        "family": _family_name(sbf.family),
        "method": sbf.method.name if sbf.method.name != "trm" else "rm",
        "method_options": sbf.method.options(),
        "total_count": sbf.total_count,
    }
    body = _dump_counters(sbf)
    sections = [body]
    if isinstance(sbf.method, RecurringMinimum):
        secondary = dump_sbf(sbf.method.secondary)
        sections.append(secondary)
        if sbf.method.marker is not None:
            sections.append(dump_bloom(sbf.method.marker))
    meta["sections"] = [len(s) for s in sections]
    return _seal(_MAGIC_SBF, meta, b"".join(sections))


def _meta_sections(meta: dict, payload: bytes) -> list[int]:
    """Validate the section-length table against the actual payload."""
    _check("sections" in meta, "header is missing required field 'sections'")
    sections = meta["sections"]
    _check(isinstance(sections, list) and 1 <= len(sections) <= 3,
           f"'sections' must be a list of 1-3 lengths, got {sections!r}")
    for length in sections:
        _check(isinstance(length, int) and not isinstance(length, bool)
               and length >= 0,
               f"section lengths must be non-negative integers, "
               f"got {length!r}")
    _check(sum(sections) == len(payload),
           f"section lengths {sections} sum to {sum(sections)} but the "
           f"payload is {len(payload)} bytes")
    return sections


def load_sbf(data: bytes) -> SpectralBloomFilter:
    """Reconstruct an SBF serialised by :func:`dump_sbf`.

    Note: Trapping RM filters are shipped as plain RM (live traps are a
    transient optimisation, not part of the represented multiset).

    Raises:
        WireFormatError: on any truncation, corruption, or invalid field —
            including malformed section tables and parameter fields.
    """
    meta, payload = _read_header(data, _MAGIC_SBF, _MAGIC_SBF_V1)
    m = _meta_int(meta, "m", minimum=1)
    k = _meta_int(meta, "k", minimum=1)
    seed = _meta_int(meta, "seed")
    total_count = _meta_int(meta, "total_count", minimum=0)
    family = _meta_family(meta)
    _check("method" in meta, "header is missing required field 'method'")
    method = meta["method"]
    _check(isinstance(method, str) and method in _KNOWN_METHODS,
           f"unknown method {method!r}; expected one of "
           f"{sorted(_KNOWN_METHODS)}")
    options = meta.get("method_options", {})
    _check(isinstance(options, dict)
           and all(isinstance(key, str) for key in options),
           f"'method_options' must be a string-keyed object, got {options!r}")
    sections = _meta_sections(meta, payload)
    try:
        sbf = SpectralBloomFilter(m, k, seed=seed, hash_family=family,
                                  method=method, method_options=options)
    except (ValueError, TypeError) as exc:
        raise WireFormatError(f"invalid SBF parameters: {exc}") from None
    if isinstance(sbf.method, RecurringMinimum):
        expected_sections = 2 if sbf.method.marker is None else 3
    else:
        expected_sections = 1
    _check(len(sections) == expected_sections,
           f"method {method!r} (options {options!r}) requires "
           f"{expected_sections} section(s), header declares "
           f"{len(sections)}")
    _load_counters(sbf, payload[:sections[0]])
    sbf.total_count = total_count
    cursor = sections[0]
    if isinstance(sbf.method, RecurringMinimum):
        sbf.method.secondary = load_sbf(payload[cursor:cursor + sections[1]])
        cursor += sections[1]
        if sbf.method.marker is not None:
            sbf.method.marker = load_bloom(
                payload[cursor:cursor + sections[2]])
    return sbf
