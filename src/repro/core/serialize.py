"""Wire formats for shipping filters between sites (§4.7.1, §5.3).

Bloomjoins and Summary-Cache-style protocols send filters as *messages*;
§4.7.1 designs the String-Array Index so it can be transmitted as one
contiguous memory block.  This module provides that capability one level
up: byte serialisation for :class:`BloomFilter` and
:class:`SpectralBloomFilter` (MS/MI methods; RM ships its secondary and
marker along), with the hash-family configuration embedded so the receiver
reconstructs a *compatible* filter.

Only the seed-constructible families round-trip (all built-ins); a custom
family instance must be re-supplied at load time.
"""

from __future__ import annotations

import json
import struct

from repro.core.methods import RecurringMinimum
from repro.core.sbf import SpectralBloomFilter
from repro.filters.bloom import BloomFilter
from repro.hashing import (
    BlockedHashFamily,
    DoubleHashingFamily,
    ModuloMultiplyFamily,
    MultiplyShiftFamily,
    TabulationFamily,
)
from repro.succinct.bitvector import BitVector, BitReader, BitWriter
from repro.succinct.elias import EliasCodec

_MAGIC_BLOOM = b"RBF1"
_MAGIC_SBF = b"RSB1"

_FAMILY_NAMES = {
    ModuloMultiplyFamily: "modmul",
    MultiplyShiftFamily: "multiply-shift",
    TabulationFamily: "tabulation",
    DoubleHashingFamily: "double",
    BlockedHashFamily: "blocked",
}


def _header(magic: bytes, meta: dict) -> bytes:
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    return magic + struct.pack("<I", len(blob)) + blob


def _read_header(data: bytes, magic: bytes) -> tuple[dict, bytes]:
    if len(data) < 8 or data[:4] != magic:
        raise ValueError(f"not a {magic.decode()} blob")
    (length,) = struct.unpack("<I", data[4:8])
    meta = json.loads(data[8:8 + length].decode("utf-8"))
    return meta, data[8 + length:]


def _family_name(family) -> str:
    try:
        return _FAMILY_NAMES[type(family)]
    except KeyError:
        raise ValueError(
            f"cannot serialise custom hash family {type(family).__name__}; "
            f"reconstruct the filter with an explicit family instead"
        ) from None


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
def dump_bloom(bf: BloomFilter) -> bytes:
    """Serialise a Bloom filter to bytes (bit vector + parameters)."""
    meta = {"m": bf.m, "k": bf.k, "seed": bf.seed,
            "family": _family_name(bf.family), "n_added": bf.n_added}
    payload = bytearray((bf.m + 7) // 8)
    for i in range(len(payload)):
        payload[i] = bf.bits.read(8 * i, 8)
    return _header(_MAGIC_BLOOM, meta) + bytes(payload)


def load_bloom(data: bytes) -> BloomFilter:
    """Reconstruct a Bloom filter serialised by :func:`dump_bloom`."""
    meta, payload = _read_header(data, _MAGIC_BLOOM)
    bf = BloomFilter(meta["m"], meta["k"], seed=meta["seed"],
                     hash_family=meta["family"])
    expected = (meta["m"] + 7) // 8
    if len(payload) < expected:
        raise ValueError("truncated Bloom filter blob")
    for i in range(expected):
        bf.bits.write(8 * i, 8, payload[i])
    bf.n_added = meta["n_added"]
    return bf


# ----------------------------------------------------------------------
# Spectral Bloom filter
# ----------------------------------------------------------------------
def _dump_counters(sbf: SpectralBloomFilter) -> bytes:
    codec = EliasCodec()
    bits = BitVector()
    writer = BitWriter(bits)
    for value in sbf.counters:
        pattern, nbits = codec.encode(value)
        writer.write_bits(pattern, nbits)
    payload = bytearray((writer.pos + 7) // 8)
    for i in range(len(payload)):
        payload[i] = bits.read(8 * i, 8)
    return bytes(payload)


def _load_counters(sbf: SpectralBloomFilter, payload: bytes) -> None:
    codec = EliasCodec()
    bits = BitVector(len(payload) * 8)
    for i, byte in enumerate(payload):
        bits.write(8 * i, 8, byte)
    reader = BitReader(bits)
    for i in range(sbf.m):
        sbf.counters.set(i, codec.decode(reader))


def dump_sbf(sbf: SpectralBloomFilter) -> bytes:
    """Serialise an SBF: Elias-coded counters + parameters + method state.

    Recurring Minimum filters embed their secondary SBF and marker filter
    recursively, so the receiver gets a fully-functional filter.
    """
    meta = {
        "m": sbf.m, "k": sbf.k, "seed": sbf.seed,
        "family": _family_name(sbf.family),
        "method": sbf.method.name if sbf.method.name != "trm" else "rm",
        "method_options": sbf.method.options(),
        "total_count": sbf.total_count,
    }
    body = _dump_counters(sbf)
    sections = [body]
    if isinstance(sbf.method, RecurringMinimum):
        secondary = dump_sbf(sbf.method.secondary)
        sections.append(secondary)
        if sbf.method.marker is not None:
            sections.append(dump_bloom(sbf.method.marker))
    meta["sections"] = [len(s) for s in sections]
    return _header(_MAGIC_SBF, meta) + b"".join(sections)


def load_sbf(data: bytes) -> SpectralBloomFilter:
    """Reconstruct an SBF serialised by :func:`dump_sbf`.

    Note: Trapping RM filters are shipped as plain RM (live traps are a
    transient optimisation, not part of the represented multiset).
    """
    meta, payload = _read_header(data, _MAGIC_SBF)
    sbf = SpectralBloomFilter(meta["m"], meta["k"], seed=meta["seed"],
                              hash_family=meta["family"],
                              method=meta["method"],
                              method_options=meta["method_options"])
    offsets = meta["sections"]
    body = payload[:offsets[0]]
    _load_counters(sbf, body)
    sbf.total_count = meta["total_count"]
    cursor = offsets[0]
    if isinstance(sbf.method, RecurringMinimum) and len(offsets) > 1:
        sbf.method.secondary = load_sbf(payload[cursor:cursor + offsets[1]])
        cursor += offsets[1]
        if sbf.method.marker is not None and len(offsets) > 2:
            sbf.method.marker = load_bloom(
                payload[cursor:cursor + offsets[2]])
    return sbf
