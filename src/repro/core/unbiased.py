"""Probabilistic (unbiased) frequency estimators (paper §3.1).

Lemma 3: with ``N`` the total multiplicity in the filter and ``v̄_x`` the
mean of x's k counters,

    f̄_x = (v̄_x − kN/m) / (1 − k/m)

is an unbiased estimator of ``f_x``.  The paper is frank that this is "a
good example of a case in which unbiased does not imply successful": the
variance is large, and the correction converts one-sided errors into false
negatives.  It remains useful for *aggregate* queries and as the fallback
arm of the RM-gated :class:`HybridEstimator` (the combination §3.1 sketches).

§3.1.1 additionally analyses a median-of-means variance boost
(:class:`MedianOfMeansEstimator`): split the k counters into k2 groups of
k1, average inside groups, take the median of the group means [AMS99].
"""

from __future__ import annotations

import statistics

from repro.core.sbf import SpectralBloomFilter


class UnbiasedEstimator:
    """Lemma 3's unbiased estimator over a bound filter.

    Estimates are floats and may be negative (a false-negative signal in a
    thresholded query); callers that need a non-negative integer should use
    :meth:`estimate_clamped`.
    """

    def __init__(self, sbf: SpectralBloomFilter):
        if sbf.k >= sbf.m:
            raise ValueError("the estimator needs k < m")
        self.sbf = sbf

    def estimate(self, key: object) -> float:
        """``f̄_x = (v̄_x - kN/m) / (1 - k/m)``."""
        sbf = self.sbf
        values = sbf.counter_values(key)
        mean = sum(values) / len(values)
        correction = sbf.k * sbf.total_count / sbf.m
        return (mean - correction) / (1.0 - sbf.k / sbf.m)

    def estimate_clamped(self, key: object) -> int:
        """Rounded, non-negative version of :meth:`estimate`."""
        return max(0, round(self.estimate(key)))

    def aggregate_count(self, keys) -> float:
        """Sum of estimates over *keys* — the aggregate use-case of §3.1.

        Because the estimator is unbiased, individual errors average out as
        the group grows; this is where §3.1 expects it to shine.
        """
        return sum(self.estimate(key) for key in keys)


class MedianOfMeansEstimator:
    """§3.1.1's variance-boosted estimator: median of k2 group means.

    Args:
        sbf: the filter (its k counters are split into the groups).
        groups: the number of groups k2 (must divide into at least one
            counter per group).  The paper's analysis wants
            ``k2 = 24 ln(1/eps)`` for failure probability eps — usually
            impractically large, which is exactly the point §3.1.1 makes.
    """

    def __init__(self, sbf: SpectralBloomFilter, groups: int = 3):
        if groups < 1:
            raise ValueError(f"groups must be >= 1, got {groups}")
        if groups > sbf.k:
            raise ValueError(
                f"cannot form {groups} groups from k={sbf.k} counters")
        self.sbf = sbf
        self.groups = groups
        self._base = UnbiasedEstimator(sbf)

    def estimate(self, key: object) -> float:
        sbf = self.sbf
        values = sbf.counter_values(key)
        correction = sbf.k * sbf.total_count / sbf.m
        scale = 1.0 - sbf.k / sbf.m
        # Split the k counters round-robin into `groups` buckets.
        buckets: list[list[int]] = [[] for _ in range(self.groups)]
        for j, v in enumerate(values):
            buckets[j % self.groups].append(v)
        means = [(sum(b) / len(b) - correction) / scale for b in buckets]
        return statistics.median(means)

    def estimate_clamped(self, key: object) -> int:
        """Rounded, non-negative version of :meth:`estimate`."""
        return max(0, round(self.estimate(key)))


class HybridEstimator:
    """The §3.1 combination: trust a recurring minimum, else go unbiased.

    "The Recurring Minimum method allows us to recognize potential
    problematic cases ... in which cases we might activate the unbiased
    estimator to produce an estimate.  In all other cases we do not use the
    estimator, and thus refrain from generating false-negative errors."
    """

    def __init__(self, sbf: SpectralBloomFilter):
        self.sbf = sbf
        self._unbiased = UnbiasedEstimator(sbf)

    def estimate(self, key: object) -> float:
        values = self.sbf.counter_values(key)
        lowest = min(values)
        if sum(1 for v in values if v == lowest) >= 2:
            return float(lowest)
        # Single minimum -> suspected Bloom error; the unbiased correction
        # cannot exceed the minimum (one-sided guarantee is kept).
        return min(float(lowest),
                   max(0.0, self._unbiased.estimate(key)))

    def estimate_clamped(self, key: object) -> int:
        """Rounded, non-negative version of :meth:`estimate`."""
        return max(0, round(self.estimate(key)))
